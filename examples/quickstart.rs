//! Quickstart: find the GPU offload threshold for square SGEMM on each of
//! the paper's three systems.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpu_blob::bench::problem::{GemmProblem, Problem};
use gpu_blob::bench::runner::{run_sweep, SweepConfig};
use gpu_blob::sim::{presets, Offload, Precision};

fn main() {
    // The paper's configuration for one experiment: square SGEMM swept over
    // every size in [1, 4096], 8 iterations (moderate data re-use).
    let problem = Problem::Gemm(GemmProblem::Square);
    let cfg = SweepConfig::new(1, 4096, 8);

    println!("Square SGEMM, 8 iterations, Transfer-Once:\n");
    for system in presets::evaluation_systems() {
        let sweep = run_sweep(&system, problem, Precision::F32, &cfg);
        match sweep.threshold(Offload::TransferOnce) {
            Some(t) => {
                let (m, n, k) = t.dims();
                // how much the GPU wins by at a representative large size
                let big = sweep.records.last().unwrap();
                let gpu = big.gpu_sample(Offload::TransferOnce).unwrap();
                println!(
                    "{:<12} offload threshold {{{m}, {n}, {k}}}; at 4096^3 the GPU is {:.1}x faster",
                    system.name,
                    big.cpu_seconds / gpu.seconds
                );
            }
            None => println!(
                "{:<12} no offload threshold — keep this problem on the CPU",
                system.name
            ),
        }
    }

    println!();
    println!("Same question for square SGEMV (bandwidth-bound, the \"never offload\" kernel):\n");
    let gemv = Problem::Gemv(gpu_blob::bench::problem::GemvProblem::Square);
    for system in presets::evaluation_systems() {
        for offload in Offload::ALL {
            let sweep = run_sweep(&system, gemv, Precision::F32, &cfg);
            let cell = match sweep.threshold(offload) {
                Some(t) => {
                    let (m, n, _) = t.dims();
                    format!("{{{m}, {n}}}")
                }
                None => "—".to_string(),
            };
            println!("{:<12} {:<8} {}", system.name, offload.label(), cell);
        }
    }
    println!("\n(On a GH200, even GEMV offloads from ~256x256 when data is re-used —");
    println!(" the paper's headline result. Transfer-Always never pays for GEMV.)");
}
