//! Calibrate a performance model of *this machine* from real measurements
//! — the empirical-benchmark philosophy the paper argues for (§II: unlike
//! analytical selectors, an empirical tool "can more easily measure the
//! performance of new architectures").
//!
//! Measures this repo's DGEMM at several sizes with the `HostCpu` backend,
//! fits the `t(w) = w/rate + c` envelope by least squares, builds a
//! `SystemModel`-compatible CPU library from the fit, and validates the
//! model's predictions against fresh measurements.
//!
//! ```text
//! cargo run --release --example calibrate_host
//! ```

use gpu_blob::bench::backend::{Backend, HostCpu};
use gpu_blob::sim::{fit_envelope, library_from_envelope, BlasCall, CpuModel, Precision, Sample};

fn main() {
    let host = HostCpu::default();
    println!("calibrating: {}\n", host.name());

    // measure a spread of sizes (seconds per single call)
    let sizes = [64usize, 96, 128, 192, 256, 320, 384];
    let mut samples = Vec::new();
    println!(
        "{:>6} {:>14} {:>12} {:>10}",
        "size", "FLOPs", "seconds", "GFLOP/s"
    );
    for &s in &sizes {
        let call = BlasCall::gemm(Precision::F64, s, s, s);
        // median-ish: take the best of 3 to shed scheduler noise
        let t = (0..3)
            .map(|_| host.cpu_seconds(&call, 1))
            .fold(f64::INFINITY, f64::min);
        let work = call.paper_flops();
        println!("{s:>6} {work:>14.3e} {t:>12.3e} {:>10.2}", work / t / 1e9);
        samples.push(Sample { work, seconds: t });
    }

    let env = fit_envelope(&samples).expect("enough well-spread samples");
    println!(
        "\nfitted envelope: rate {:.2} GFLOP/s, fixed cost {:.1} us, r^2 {:.4}",
        env.rate / 1e9,
        env.fixed_cost * 1e6,
        env.r_squared
    );
    assert!(
        env.r_squared > 0.9,
        "the affine envelope should fit GEMM well"
    );

    // wrap the fit in a SystemModel-compatible CPU description
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1) as u32;
    let cpu = CpuModel {
        name: "this-host",
        cores: threads,
        freq_ghz: 3.0,                   // nominal; the fit overrides the rate
        fp64_flops_per_cycle_core: 16.0, // nominal
        fp32_ratio: 2.0,
        dram_gbs: 50.0,
        single_core_gbs: 15.0,
        llc_bytes: 16e6,
        llc_gbs: 400.0,
    };
    let lib = library_from_envelope("fitted-host-blas", &env, &cpu, Precision::F64);
    println!(
        "library envelope: eff_max {:.3}, overhead {:.1} us",
        lib.gemm_eff_max, lib.call_overhead_us
    );

    // validate on sizes the fit never saw
    println!("\nvalidation on held-out sizes:");
    let mut worst: f64 = 0.0;
    for &s in &[160usize, 288, 352] {
        let call = BlasCall::gemm(Precision::F64, s, s, s);
        let measured = (0..3)
            .map(|_| host.cpu_seconds(&call, 1))
            .fold(f64::INFINITY, f64::min);
        let predicted = env.predict(call.paper_flops());
        let err = (predicted / measured - 1.0).abs();
        worst = worst.max(err);
        println!(
            "  {s:>4}^3: measured {:>10.3e} s | predicted {:>10.3e} s | err {:>5.1}%",
            measured,
            predicted,
            err * 100.0
        );
    }
    println!(
        "\nworst held-out error: {:.1}% — {}",
        worst * 100.0,
        if worst < 0.5 {
            "the fitted model generalises; it can now stand in for this machine in offload what-ifs"
        } else {
            "noisy machine: rerun on an idle system for a tighter fit"
        }
    );
}
