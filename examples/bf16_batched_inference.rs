//! Half-precision + batched GEMM — a walkthrough of the two future-work
//! extensions the paper motivates with AI workloads (§V): transformer-style
//! inference runs *batches* of small matrix products at *reduced
//! precision*, exactly the regime where launch overhead and precision both
//! change the offload decision.
//!
//! The example runs a miniature attention-head workload three ways —
//! f64, f32, and software BF16 — using the repo's generic kernels, checks
//! the BF16 error stays within its 2⁻⁷ precision budget, then asks the
//! modelled systems how batching moves the offload threshold.
//!
//! ```text
//! cargo run --release --example bf16_batched_inference
//! ```

use gpu_blob::blas::scalar::Scalar;
use gpu_blob::blas::{gemm_batched, gemm_batched_parallel, BatchedGemmDesc, Bf16};
use gpu_blob::sim::{presets, Offload, Precision};

/// One attention head's scores: Q·Kᵀ for `heads` heads of `seq × dim`.
fn run_heads<T: Scalar>(heads: usize, seq: usize, dim: usize, q: &[T], kt: &[T]) -> Vec<T> {
    let desc = BatchedGemmDesc::tight(seq, seq, dim);
    let mut scores = vec![T::ZERO; desc.stride_c * heads];
    gemm_batched_parallel(4, &desc, heads, T::ONE, q, kt, T::ZERO, &mut scores)
        .expect("tight batched layout");
    scores
}

fn main() {
    let (heads, seq, dim) = (8usize, 32usize, 64usize);
    println!("attention scores: {heads} heads of Q·K^T, {seq}x{seq}x{dim} each\n");

    // identical logical inputs at three precisions
    let q64: Vec<f64> = (0..seq * dim * heads)
        .map(|i| (((i * 37) % 97) as f64 / 97.0 - 0.5) * 0.2)
        .collect();
    let k64: Vec<f64> = (0..dim * seq * heads)
        .map(|i| (((i * 61) % 89) as f64 / 89.0 - 0.5) * 0.2)
        .collect();
    let q32: Vec<f32> = q64.iter().map(|&v| v as f32).collect();
    let k32: Vec<f32> = k64.iter().map(|&v| v as f32).collect();
    let qb: Vec<Bf16> = q64.iter().map(|&v| Bf16::from_f64(v)).collect();
    let kb: Vec<Bf16> = k64.iter().map(|&v| Bf16::from_f64(v)).collect();

    let s64 = run_heads(heads, seq, dim, &q64, &k64);
    let s32 = run_heads(heads, seq, dim, &q32, &k32);
    let sb = run_heads(heads, seq, dim, &qb, &kb);

    // serial batched path must agree with the parallel one
    let desc = BatchedGemmDesc::tight(seq, seq, dim);
    let mut serial = vec![0.0f64; desc.stride_c * heads];
    gemm_batched(&desc, heads, 1.0, &q64, &k64, 0.0, &mut serial).expect("tight batched layout");
    assert_eq!(serial, s64, "serial and parallel batched GEMM agree");

    // normalise by the largest score: individual scores cross zero, so
    // element-wise relative error is the wrong yardstick
    let scale = s64.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    let err = |approx: Vec<f64>| {
        s64.iter()
            .zip(approx)
            .map(|(&w, g)| (w - g).abs() / scale)
            .fold(0.0f64, f64::max)
    };
    let e32 = err(s32.iter().map(|&v| v as f64).collect());
    let eb = err(sb.iter().map(|v| v.to_f64()).collect());
    println!("max normalised error vs f64:   f32 {e32:.2e}   bf16 {eb:.2e}");
    assert!(e32 < 1e-5, "f32 stays tight");
    assert!(eb < 0.05, "bf16 stays within its 2^-7 budget over k={dim}");

    // where should this batch run? the batched model answers per system
    println!("\nbatched offload thresholds (per-instance square size, Transfer-Once, 8 iters):");
    for sys in presets::evaluation_systems() {
        let t1 = sys.batched_gemm_threshold(Precision::F32, 1, 8, Offload::TransferOnce, 1024);
        let t64 = sys.batched_gemm_threshold(Precision::F32, 64, 8, Offload::TransferOnce, 1024);
        println!(
            "  {:<12} batch 1: {:<5} batch 64: {:<5}",
            sys.name,
            t1.map(|v| v.to_string()).unwrap_or_else(|| "—".into()),
            t64.map(|v| v.to_string()).unwrap_or_else(|| "—".into()),
        );
    }
    println!("\nbatching amortises launch overhead: small per-head GEMMs that would");
    println!("stay on the CPU individually offload comfortably as a batch.");
}
