//! Offload advisor — the paper's intended use of the offload threshold
//! (§III-D): relate *your application's* BLAS shape, data-reuse pattern and
//! transfer behaviour to the benchmark's measurements and decide whether a
//! GPU port is worth the effort, before writing any GPU code.
//!
//! The example characterises three archetypal applications and asks each
//! modelled system where their dominant BLAS call should run.
//!
//! ```text
//! cargo run --release --example offload_advisor
//! ```

use gpu_blob::bench::{advise, Backend};
use gpu_blob::sim::{presets, BlasCall, Offload, Precision, SystemModel};

/// An application's dominant BLAS call pattern.
struct AppProfile {
    name: &'static str,
    call: BlasCall,
    /// How many consecutive times the kernel runs on the same operands.
    iterations: u32,
    /// Which transfer pattern the application structure implies.
    offload: Offload,
    why: &'static str,
}

fn advise_app(sys: &SystemModel, app: &AppProfile) {
    // the harness's public advisor API (blob_core::advise) does the
    // assessment; this example only formats it
    let advice = advise(sys as &dyn Backend, &app.call, app.iterations, app.offload);
    let (m, n, k) = app.call.kernel.dims();
    println!(
        "  {:<12} {} {}x{}x{} x{:<4} {:<7} CPU {:>9} GPU {:>9}  {:>5.2}x  {}",
        sys.name,
        app.call.routine(),
        m,
        n,
        k,
        app.iterations,
        app.offload.label(),
        fmt_t(advice.cpu_seconds),
        fmt_t(advice.gpu_seconds.expect("evaluation systems model a GPU")),
        advice.speedup.unwrap(),
        advice.summary()
    );
}

fn fmt_t(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

fn main() {
    let apps = [
        AppProfile {
            name: "Transformer FFN layer (inference batch)",
            // y = W x for a batch: GEMM 4096x512x4096, weights resident
            call: BlasCall::gemm(Precision::F32, 4096, 512, 4096),
            iterations: 128,
            offload: Offload::TransferOnce,
            why: "weights stay on the device across requests: Transfer-Once",
        },
        AppProfile {
            name: "Implicit CFD solver (matvec in CG loop)",
            // dense preconditioner block applied every CG iteration
            call: BlasCall::gemv(Precision::F64, 3000, 3000),
            iterations: 64,
            offload: Offload::TransferOnce,
            why: "the operator is reused across all CG iterations",
        },
        AppProfile {
            name: "Coupled multi-physics step (BLAS between host phases)",
            // a mid-size DGEMM whose inputs are rewritten by host code
            // between calls: data must move every time
            call: BlasCall::gemm(Precision::F64, 1024, 1024, 1024),
            iterations: 32,
            offload: Offload::TransferAlways,
            why: "host compute rewrites the operands between BLAS calls",
        },
        AppProfile {
            name: "Statistics kernel (tall-skinny normal equations)",
            call: BlasCall::gemm(Precision::F64, 256, 256, 4096),
            iterations: 1,
            offload: Offload::TransferOnce,
            why: "one-shot X^T X on freshly loaded data",
        },
    ];

    let systems = presets::evaluation_systems();
    for app in &apps {
        println!("{} ({})", app.name, app.why);
        for sys in &systems {
            advise_app(sys, app);
        }
        println!();
    }

    println!("Rule of thumb reproduced from the paper: the decision depends on the");
    println!("system (SoC vs PCIe), the library, the shape, and the re-use pattern —");
    println!("not on \"GEMM goes to the GPU, GEMV stays on the CPU\".");
}
