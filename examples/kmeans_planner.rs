//! K-means placement planner — a worked domain scenario from the paper's
//! motivation (§III-C cites k-means clustering as a real producer of
//! non-square GEMMs).
//!
//! Lloyd's algorithm computes, every iteration, the point-to-centroid
//! distance matrix; its dominant cost is the cross-term `X · C^T`, a GEMM of
//! shape `n_points x n_clusters x n_features` — typically *extremely*
//! non-square (millions of points, tens of clusters, hundreds of features).
//! The point matrix is reused across all iterations (Transfer-Once), while
//! the small centroid matrix changes each round.
//!
//! This example plans where to run that GEMM for several dataset shapes on
//! each modelled system, and cross-checks one configuration numerically
//! with the repo's own BLAS.
//!
//! ```text
//! cargo run --release --example kmeans_planner
//! ```

use gpu_blob::blas::{gemm_parallel, gemm_ref, Matrix};
use gpu_blob::sim::{presets, BlasCall, Offload, Precision};

struct Dataset {
    name: &'static str,
    points: usize,
    features: usize,
    clusters: usize,
    lloyd_iterations: u32,
}

fn main() {
    let datasets = [
        Dataset {
            name: "image palette (small)",
            points: 4096,
            features: 3,
            clusters: 16,
            lloyd_iterations: 32,
        },
        Dataset {
            name: "document embeddings",
            points: 4096,
            features: 768,
            clusters: 64,
            lloyd_iterations: 64,
        },
        Dataset {
            name: "sensor telemetry",
            points: 4096,
            features: 64,
            clusters: 8,
            lloyd_iterations: 128,
        },
    ];

    for ds in &datasets {
        // distance cross-term: X (points x features) · C^T (features x clusters)
        let call = BlasCall::gemm(Precision::F32, ds.points, ds.clusters, ds.features);
        let ai = call.arithmetic_intensity();
        println!(
            "{} — GEMM {}x{}x{} per Lloyd iteration, {} iterations, AI {:.1} flops/byte",
            ds.name, ds.points, ds.clusters, ds.features, ds.lloyd_iterations, ai
        );
        for sys in presets::evaluation_systems() {
            let cpu = sys.cpu_seconds(&call, ds.lloyd_iterations);
            let gpu = sys
                .gpu_seconds(&call, ds.lloyd_iterations, Offload::TransferOnce)
                .unwrap();
            let choice = if gpu < cpu { "GPU" } else { "CPU" };
            println!(
                "  {:<12} CPU {:>9.3} ms | GPU {:>9.3} ms -> run the distance GEMM on the {}",
                sys.name,
                cpu * 1e3,
                gpu * 1e3,
                choice
            );
        }
        println!();
    }

    // Numerical cross-check of the distance computation with our own BLAS:
    // full squared distances d(i,j) = |x_i|^2 - 2 x_i.c_j + |c_j|^2.
    let (n, d, k) = (256, 16, 8);
    let x = Matrix::<f32>::from_fn(n, d, |i, j| ((i * 7 + j * 13) % 17) as f32 / 17.0);
    let c = Matrix::<f32>::from_fn(k, d, |i, j| ((i * 5 + j * 3) % 11) as f32 / 11.0);

    // cross term via GEMM: G (n x k) = X (n x d) · C^T (d x k). The kernels
    // take no transposition flag, so materialise C^T explicitly.
    let ct = Matrix::<f32>::from_fn(d, k, |i, j| c[(j, i)]);
    let mut g = Matrix::<f32>::zeros(n, k);
    gemm_parallel(
        4,
        n,
        k,
        d,
        1.0,
        x.as_slice(),
        x.ld(),
        ct.as_slice(),
        ct.ld(),
        0.0,
        g.as_mut_slice(),
        n,
    )
    .unwrap();
    let mut g_ref = Matrix::<f32>::zeros(n, k);
    gemm_ref(
        n,
        k,
        d,
        1.0,
        x.as_slice(),
        x.ld(),
        ct.as_slice(),
        ct.ld(),
        0.0,
        g_ref.as_mut_slice(),
        n,
    )
    .unwrap();
    assert!(
        g.approx_eq(&g_ref, 1e-5),
        "parallel and reference GEMM agree"
    );

    // assemble distances and do one assignment step
    let xn: Vec<f32> = (0..n)
        .map(|i| (0..d).map(|j| x[(i, j)] * x[(i, j)]).sum())
        .collect();
    let cn: Vec<f32> = (0..k)
        .map(|i| (0..d).map(|j| c[(i, j)] * c[(i, j)]).sum())
        .collect();
    let mut assignment = vec![0usize; n];
    for i in 0..n {
        let mut best = f32::INFINITY;
        for j in 0..k {
            let dist = xn[i] - 2.0 * g[(i, j)] + cn[j];
            if dist < best {
                best = dist;
                assignment[i] = j;
            }
        }
        assert!(best >= -1e-4, "squared distances are non-negative");
    }
    let used: std::collections::HashSet<_> = assignment.iter().collect();
    println!(
        "cross-check: one Lloyd assignment step on {n} points, {k} clusters -> {} clusters used, distances validated with the repo's own GEMM",
        used.len()
    );
}
