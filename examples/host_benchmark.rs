//! Host benchmark: run GPU-BLOB's measurement loop against the *real* BLAS
//! kernels in this repository on the machine you are sitting at — no
//! simulation involved. This is the artifact's CPU-only build mode
//! (GPU-BLOB "can also be built with either a CPU or a GPU library
//! exclusively", §III).
//!
//! Prints the measured GFLOP/s curve for square GEMM/GEMV and validates the
//! parallel kernels against the reference implementation at a sample size.
//!
//! ```text
//! cargo run --release --example host_benchmark
//! ```

use gpu_blob::analysis::{ascii_chart, Series};
use gpu_blob::bench::backend::{Backend, HostCpu};
use gpu_blob::bench::problem::{GemmProblem, GemvProblem, Problem};
use gpu_blob::bench::runner::{run_sweep, SweepConfig};
use gpu_blob::bench::validate_call;
use gpu_blob::sim::{BlasCall, Precision};

fn main() {
    let host = HostCpu::default();
    println!("backend: {}\n", host.name());

    // Square GEMM, modest range so the example runs in seconds.
    let cfg = SweepConfig::new(16, 384, 3).with_step(16);
    let gemm = run_sweep(
        &host,
        Problem::Gemm(GemmProblem::Square),
        Precision::F64,
        &cfg,
    );
    let series = [Series::from_usize("DGEMM (measured)", &gemm.cpu_series())];
    println!(
        "{}",
        ascii_chart("Host DGEMM GFLOP/s vs size", &series, 80, 14)
    );
    let peak = gemm
        .records
        .iter()
        .map(|r| r.cpu_gflops)
        .fold(0.0f64, f64::max);
    println!("best measured DGEMM rate: {peak:.2} GFLOP/s\n");

    let gemv = run_sweep(
        &host,
        Problem::Gemv(GemvProblem::Square),
        Precision::F64,
        &cfg,
    );
    let series = [Series::from_usize("DGEMV (measured)", &gemv.cpu_series())];
    println!(
        "{}",
        ascii_chart("Host DGEMV GFLOP/s vs size", &series, 80, 14)
    );

    // The artifact's checksum validation, against this machine's results.
    for call in [
        BlasCall::gemm(Precision::F64, 192, 192, 192),
        BlasCall::gemv(Precision::F64, 1024, 1024),
        BlasCall::gemm(Precision::F32, 100, 200, 50).with_scalars(2.0, 1.0),
    ] {
        let rep = validate_call(&call, 2024);
        println!(
            "validate {} {:?}: rel err {:.2e} -> {}",
            call.routine(),
            call.kernel.dims(),
            rep.rel_err,
            if rep.ok { "OK" } else { "FAIL" }
        );
        assert!(rep.ok);
    }
    println!("\nno GPU on this host: offload thresholds require the modelled systems");
    println!("(try: cargo run --release --example quickstart)");
}
