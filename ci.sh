#!/usr/bin/env bash
# The full offline CI gate for gpu-blob. Run from the repository root:
#
#   ./ci.sh
#
# Toolchain: stable Rust (developed against rustc/cargo 1.95, rustfmt 1.9).
# No nightly features, no network access, and no dependencies outside the
# workspace are required — every stage below must pass from a cold clone
# with `--offline`.
#
# Stages:
#   1. cargo fmt --check        formatting is canonical rustfmt
#   2. cargo run -p blob-check  the workspace's own static analysis: the
#                               lexical rules (unsafe/unwrap/float-eq/docs/
#                               contract-guard) plus the AST-level analyses
#                               (panic-reachability, lock-order,
#                               atomic-ordering) and the parse-coverage
#                               self-gate (every .rs file must parse)
#   3. cargo build --release    everything compiles optimised, warnings-free
#   4. analysis time budget     the release blob-check re-run must finish
#                               the full workspace inside 5 s (--max-ms),
#                               so the deep analyses never become the slow
#                               stage people skip
#   5. cargo build --benches    the microbench targets stay compilable
#   6. cargo test -q            the full workspace test suite
#   7. perf gate                perf_gate compares small-GEMM hot-path
#                               latency against the committed trajectory in
#                               BENCH_blas.json and fails on a > 20%
#                               regression (writes results/BENCH_blas.json)
#   8. fault overhead gate      fault_gate proves a disabled fault point
#                               costs < 1% of the most overhead-sensitive
#                               gated kernel shape (results/fault_gate.csv)
#   9. trace overhead gate      trace_gate proves a disabled trace span
#                               costs < 1% of the same kernel shape
#                               (results/trace_gate.csv)
#  10. server smoke             gpu-blob serve end-to-end: /healthz, /advise,
#                               a /threshold cache hit verified via /metrics,
#                               and a clean /shutdown (serve_smoke e2e test)
#  11. chaos suite              seeded fault plans against the live server
#                               (panic containment, worker replacement, load
#                               shedding, retry) and the kill-and-resume
#                               sweep (byte-identical CSV after SIGKILL)
#  12. server load gate         serve_load must sustain >= 1000 req/s on
#                               loopback (writes results/serve_load.csv)
#  13. dispatch gate            dispatch_gate proves the online dispatcher
#                               strictly beats both static policies on
#                               mixed small/large traces across seeds
#                               (writes results/dispatch_gate.csv)

set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> blob-check"
cargo run -q -p blob-check --offline

echo "==> cargo build --release"
cargo build --release --workspace --offline

echo "==> blob-check time budget (full workspace, deep analyses, < 5 s)"
cargo run -q --release -p blob-check --offline -- --max-ms 5000

echo "==> cargo build --benches"
cargo build --benches --workspace --offline

echo "==> cargo test"
cargo test -q --workspace --offline

echo "==> perf gate (small-GEMM latency vs BENCH_blas.json)"
cargo run -q --release -p blob-bench --bin perf_gate --offline

echo "==> fault overhead gate (disabled fault points < 1% of gemm_par4_64)"
cargo run -q --release -p blob-bench --bin fault_gate --offline

echo "==> trace overhead gate (disabled trace spans < 1% of gemm_par4_64)"
cargo run -q --release -p blob-bench --bin trace_gate --offline

echo "==> server smoke (healthz, advise, threshold cache hit, shutdown)"
cargo test -q -p blob-cli --test serve_smoke --offline

echo "==> chaos suite (seeded fault plans, self-healing, kill-and-resume)"
cargo test -q -p blob-core --test fault_plan --offline
cargo test -q -p blob-serve --test chaos --offline
cargo test -q -p blob-cli --test chaos_resume --offline

echo "==> server load gate (>= 1000 req/s loopback)"
cargo run -q --release -p blob-bench --bin serve_load --offline -- \
    --clients 4 --requests 2000 --min-rps 1000

echo "==> dispatch gate (auto beats both static policies on mixed traces)"
cargo run -q --release -p blob-bench --bin dispatch_gate --offline

echo "ci: all stages passed"
