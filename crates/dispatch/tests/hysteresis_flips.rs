//! Satellite acceptance tests for the hysteresis band: a trace that sits
//! right at the CPU/GPU crossover must not flap routes call to call, and
//! dispatch runs must be deterministic for a fixed seed.

use blob_dispatch::{
    mixed_trace, run_trace, DispatchBackend, Dispatcher, Hysteresis, MixedTraceSpec, Policy, Route,
    TraceCall,
};
use blob_sim::firsttouch::FirstTouchModel;
use blob_sim::{presets, BlasCall, Precision};

/// A backend engineered to sit at the crossover: with the default 6 µs
/// offload overhead, the GPU route prices within ±10 % of the CPU route,
/// and realized CPU times alternate above/below the prior depending on
/// which of two same-bucket shapes is executing — so the EWMA (and with
/// it the predicted speedup) wobbles around 1.0 on every call.
struct Crossover;

impl DispatchBackend for Crossover {
    fn name(&self) -> String {
        "crossover".into()
    }
    fn prior_cpu_seconds(&self, _: &BlasCall) -> f64 {
        10e-6
    }
    fn prior_gpu_kernel_seconds(&self, _: &BlasCall) -> Option<f64> {
        Some(4e-6) // + 6 µs default overhead ⇒ ~10 µs GPU route
    }
    fn realize_cpu_seconds(&self, call: &BlasCall) -> f64 {
        let (m, _, _) = call.kernel.dims();
        // 200³ runs fast, 250³ runs slow — same ⌊log2⌋ = 7 bucket.
        if m == 200 {
            9e-6
        } else {
            11e-6
        }
    }
    fn realize_gpu_kernel_seconds(&self, call: &BlasCall) -> Option<f64> {
        self.prior_gpu_kernel_seconds(call)
    }
    fn first_touch(&self) -> Option<FirstTouchModel> {
        Some(FirstTouchModel {
            page_bytes: 2.0 * 1024.0 * 1024.0,
            fault_us: 0.0,
            migration_gbs: 1e6, // transfers ~free: keep pricing pinned at 1.0
            writeback_gbs: 1e6,
            per_iter_penalty: 0.0,
        })
    }
}

fn crossover_trace(calls: usize) -> Vec<TraceCall> {
    (0..calls)
        .map(|i| {
            let dim = if i % 2 == 0 { 200 } else { 250 };
            TraceCall {
                site: "hot.loop".to_string(),
                call: BlasCall::gemm(Precision::F32, dim, dim, dim),
            }
        })
        .collect()
}

#[test]
fn at_most_one_flip_per_hundred_calls_at_the_crossover() {
    let trace = crossover_trace(100);
    let result = run_trace(&Crossover, &trace, Policy::Auto, Hysteresis::default());
    assert!(
        result.stats.flips <= 1,
        "crossover trace flapped {} times in {} calls",
        result.stats.flips,
        trace.len()
    );
    // and the route it settled on is held to the end of the trace
    let settled = result.records.last().expect("records").decision.route;
    let tail_flips = result.records[10..]
        .iter()
        .filter(|r| r.decision.route != settled)
        .count();
    assert_eq!(tail_flips, 0, "route still wandering after warm-up");
}

#[test]
fn a_degenerate_band_without_the_borderline_hold_would_flap() {
    // Control experiment: drive the same wobbling speedup sequence
    // through a bare comparison (enter == exit == 1.0, verdict ignored)
    // and count how often it switches sides. This is the flapping the
    // band + Borderline hold exist to suppress.
    let band = Hysteresis::new(1.0, 1.0).expect("degenerate band");
    let mut route = Route::Cpu;
    let mut flips = 0;
    for i in 0..100 {
        let speedup = if i % 2 == 0 { 1.04 } else { 0.96 };
        // feed a non-borderline verdict so nothing holds the route
        let next = band.decide(speedup, blob_core::advisor::Verdict::Marginal, Some(route));
        if next != route {
            flips += 1;
        }
        route = next;
    }
    assert!(
        flips > 40,
        "bare comparison should flap nearly every call, got {flips}"
    );
}

#[test]
fn fixed_seed_dispatch_runs_are_bit_deterministic() {
    let sys = presets::isambard_ai().with_noise(17, 0.08);
    let spec = MixedTraceSpec {
        seed: 99,
        calls: 80,
        gemv_every: 7,
        ..MixedTraceSpec::default()
    };
    let trace_a = mixed_trace(&spec);
    let trace_b = mixed_trace(&spec);
    assert_eq!(trace_a, trace_b);
    let a = run_trace(&sys, &trace_a, Policy::Auto, Hysteresis::default());
    let b = run_trace(&sys, &trace_b, Policy::Auto, Hysteresis::default());
    assert_eq!(a, b, "same seed must reproduce every decision bit-exactly");
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(
            ra.decision.realized.to_bits(),
            rb.decision.realized.to_bits()
        );
    }
}

#[test]
fn borderline_verdict_is_what_the_dispatcher_consumes_at_the_crossover() {
    // On the crossover backend most steady-state decisions should land in
    // the advisor's explicit Borderline band — the satellite contract is
    // that the dispatcher consumes that verdict rather than re-deriving
    // its own notion of "near the threshold".
    let trace = crossover_trace(40);
    let mut d = Dispatcher::new(Hysteresis::default());
    let mut borderline = 0;
    for tc in &trace {
        let dec = d.dispatch(&Crossover, &tc.site, &tc.call);
        if dec.verdict == blob_core::advisor::Verdict::Borderline {
            borderline += 1;
        }
    }
    assert!(
        borderline > 20,
        "expected mostly Borderline verdicts at the crossover, got {borderline}/40"
    );
}
