//! The timing surface a dispatcher routes against.
//!
//! [`DispatchBackend`] separates *priors* (what the static model expects
//! a route to cost, used for planning) from *realized* times (what the
//! route actually cost once taken, fed back into the online estimator).
//! For the calibrated [`SystemModel`]s the realized times are themselves
//! modelled — with the system's deterministic measurement noise applied,
//! when configured — while the priors are always noise-free, so the
//! estimator has something genuine to learn.

use blob_sim::firsttouch::{FirstTouchModel, DEFAULT_FAULT_US, DEFAULT_PAGE_BYTES};
use blob_sim::{BlasCall, SystemModel};

/// Default device-memory budget for residency tracking when the backend
/// does not model capacity explicitly (matches the smaller HBM parts in
/// the paper's Table II: tens of GB).
pub const DEFAULT_DEVICE_CAPACITY_BYTES: f64 = 32e9;

/// Default fixed per-call cost of *routing* a call to the GPU beyond the
/// device-side launch already priced in the kernel time: dispatch
/// bookkeeping, kernel submission, and the blocking synchronization a
/// drop-in BLAS front must do before returning control to the caller.
/// The automatic-offload literature (arXiv 2404.13195) measures this
/// per-call overhead in the microseconds even on NVLink-C2C — it is what
/// keeps tiny calls on the CPU no matter how fast the device is.
pub const DEFAULT_SYNC_OVERHEAD_US: f64 = 6.0;

/// A timing source the dispatch plane can route against.
pub trait DispatchBackend {
    /// Human-readable backend name (system name for models).
    fn name(&self) -> String;

    /// Static-model prior for one CPU execution of `call`, seconds.
    fn prior_cpu_seconds(&self, call: &BlasCall) -> f64;

    /// Static-model prior for one device-side GPU kernel execution of
    /// `call` (no data movement), or `None` for CPU-only backends.
    fn prior_gpu_kernel_seconds(&self, call: &BlasCall) -> Option<f64>;

    /// Realized seconds for one CPU execution of `call`.
    fn realize_cpu_seconds(&self, call: &BlasCall) -> f64;

    /// Realized device-side kernel seconds for one GPU execution of
    /// `call`, or `None` for CPU-only backends.
    fn realize_gpu_kernel_seconds(&self, call: &BlasCall) -> Option<f64>;

    /// First-touch page-migration behaviour for the GPU route, or `None`
    /// for CPU-only backends.
    fn first_touch(&self) -> Option<FirstTouchModel>;

    /// Device-memory budget for residency tracking, bytes.
    fn device_capacity_bytes(&self) -> f64 {
        DEFAULT_DEVICE_CAPACITY_BYTES
    }

    /// Fixed per-call seconds charged on every GPU-routed call, warm or
    /// cold (see [`DEFAULT_SYNC_OVERHEAD_US`]). Deterministic and
    /// route-constant, so it is added outside the estimator blend.
    fn offload_overhead_seconds(&self) -> f64 {
        DEFAULT_SYNC_OVERHEAD_US * 1e-6
    }
}

impl DispatchBackend for SystemModel {
    fn name(&self) -> String {
        self.name.to_string()
    }

    fn prior_cpu_seconds(&self, call: &BlasCall) -> f64 {
        match self.noise {
            None => self.cpu_seconds(call, 1),
            Some(_) => {
                let mut clean = self.clone();
                clean.noise = None;
                clean.cpu_seconds(call, 1)
            }
        }
    }

    fn prior_gpu_kernel_seconds(&self, call: &BlasCall) -> Option<f64> {
        match self.noise {
            None => self.gpu_kernel_seconds(call),
            Some(_) => {
                let mut clean = self.clone();
                clean.noise = None;
                clean.gpu_kernel_seconds(call)
            }
        }
    }

    fn realize_cpu_seconds(&self, call: &BlasCall) -> f64 {
        self.cpu_seconds(call, 1)
    }

    fn realize_gpu_kernel_seconds(&self, call: &BlasCall) -> Option<f64> {
        self.gpu_kernel_seconds(call)
    }

    fn offload_overhead_seconds(&self) -> f64 {
        // Submission + blocking sync cross the link both ways, on top of
        // the runtime's own dispatch bookkeeping.
        let link_us = self.link.as_ref().map_or(0.0, |l| 2.0 * l.latency_us);
        (link_us + DEFAULT_SYNC_OVERHEAD_US) * 1e-6
    }

    fn first_touch(&self) -> Option<FirstTouchModel> {
        if !self.has_gpu() {
            return None;
        }
        // USM systems get the calibrated first-touch derivation; systems
        // without USM still move pages over the link, so price migration
        // at the link's DMA bandwidths instead.
        self.first_touch_model().or_else(|| {
            self.link.as_ref().map(|link| FirstTouchModel {
                page_bytes: DEFAULT_PAGE_BYTES,
                fault_us: DEFAULT_FAULT_US,
                migration_gbs: link.h2d_gbs,
                writeback_gbs: link.d2h_gbs,
                per_iter_penalty: 0.0,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blob_sim::{presets, Precision};

    #[test]
    fn priors_strip_noise_realized_keeps_it() {
        let noisy = presets::isambard_ai().with_noise(11, 0.1);
        let clean = presets::isambard_ai();
        let call = BlasCall::gemm(Precision::F32, 300, 300, 300);
        assert_eq!(
            noisy.prior_cpu_seconds(&call),
            clean.cpu_seconds(&call, 1),
            "prior must be the noise-free model"
        );
        assert_ne!(
            noisy.realize_cpu_seconds(&call),
            noisy.prior_cpu_seconds(&call),
            "realized must carry the configured noise"
        );
        assert_eq!(
            noisy.prior_gpu_kernel_seconds(&call),
            clean.gpu_kernel_seconds(&call)
        );
    }

    #[test]
    fn cpu_only_backend_has_no_gpu_surface() {
        let sys = presets::isambard_ai_armpl();
        let call = BlasCall::gemm(Precision::F32, 64, 64, 64);
        assert!(sys.prior_gpu_kernel_seconds(&call).is_none());
        assert!(sys.realize_gpu_kernel_seconds(&call).is_none());
        assert!(sys.first_touch().is_none());
    }

    #[test]
    fn gpu_backend_always_has_a_first_touch_model() {
        for sys in blob_sim::presets::evaluation_systems() {
            if sys.has_gpu() {
                assert!(sys.first_touch().is_some(), "{}", sys.name);
            }
        }
    }
}
