//! The dispatch front: price both routes, decide, execute, learn.
//!
//! [`Dispatcher::dispatch`] is the cblas-style interception point: one
//! call comes in with its call-site name, both routes are priced —
//! compute from the [`Estimator`][crate::estimator::Estimator]'s blend
//! of static prior and observed history, data movement from the
//! first-touch [`Residency`] state — the [`Hysteresis`] band picks the
//! route, the call is "executed" on that route (realized times from the
//! backend, residency mutated), and the realized compute time is fed
//! back into the history table.
//!
//! Every decision opens a `dispatch.decide` trace span and passes the
//! `dispatch.decide` fault point; an injected fault degrades the
//! decision to the static advisor prior (no estimator, no hysteresis)
//! but never fails the call. The routed execution opens a
//! `dispatch.route` span annotated with the route and moved bytes.

use crate::backend::DispatchBackend;
use crate::estimator::{site_hash, Estimator, ShapeBucket};
use crate::hysteresis::Hysteresis;
use blob_core::advisor::Verdict;
use blob_core::{fault, trace};
use blob_sim::firsttouch::Residency;
use blob_sim::BlasCall;
use std::collections::HashMap;

/// Where one call executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Route {
    /// The host BLAS.
    Cpu,
    /// The (modelled) device BLAS.
    Gpu,
}

impl Route {
    /// Stable wire/CSV identifier.
    pub fn id(&self) -> &'static str {
        match self {
            Route::Cpu => "cpu",
            Route::Gpu => "gpu",
        }
    }

    /// Parses a wire identifier.
    pub fn from_id(id: &str) -> Option<Self> {
        match id {
            "cpu" => Some(Route::Cpu),
            "gpu" => Some(Route::Gpu),
            _ => None,
        }
    }
}

/// The routing policy a trace runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// The online dispatcher decides per call.
    Auto,
    /// Every call runs on the CPU (static baseline).
    AlwaysCpu,
    /// Every call runs on the modelled GPU (static baseline).
    AlwaysGpu,
}

impl Policy {
    /// Stable wire/CSV identifier.
    pub fn id(&self) -> &'static str {
        match self {
            Policy::Auto => "auto",
            Policy::AlwaysCpu => "always-cpu",
            Policy::AlwaysGpu => "always-gpu",
        }
    }

    /// Parses a wire identifier.
    pub fn from_id(id: &str) -> Option<Self> {
        match id {
            "auto" => Some(Policy::Auto),
            "always-cpu" => Some(Policy::AlwaysCpu),
            "always-gpu" => Some(Policy::AlwaysGpu),
            _ => None,
        }
    }

    /// All policies, in comparison order.
    pub const ALL: [Policy; 3] = [Policy::Auto, Policy::AlwaysCpu, Policy::AlwaysGpu];
}

/// The outcome of dispatching one call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Where the call executed.
    pub route: Route,
    /// The advisor classification of the predicted speedup.
    pub verdict: Verdict,
    /// Predicted seconds had the call run on the CPU (compute blend +
    /// write-back of device-resident operands).
    pub predicted_cpu: f64,
    /// Predicted seconds had the call run on the GPU (kernel blend +
    /// first-touch migration of cold pages, amortised over the site's
    /// visit count — migration is a one-time toll a reused site expects
    /// to recoup), `None` without a GPU.
    pub predicted_gpu: Option<f64>,
    /// Realized seconds on the chosen route, data movement included.
    pub realized: f64,
    /// The realized compute-only component fed to the estimator (CPU
    /// execution, or fault-taxed GPU kernel) — what a checkpoint replay
    /// must re-feed to reproduce this dispatcher state.
    pub observed: f64,
    /// True when this (site, bucket) changed route relative to its
    /// previous call.
    pub flipped: bool,
    /// True when the `dispatch.decide` fault point fired and the
    /// decision fell back to the static advisor prior.
    pub fault_fallback: bool,
}

/// Aggregate counters over a dispatcher's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DispatchStats {
    /// Calls dispatched.
    pub calls: u64,
    /// Calls routed to the CPU.
    pub cpu_calls: u64,
    /// Calls routed to the GPU.
    pub gpu_calls: u64,
    /// Route changes on a (site, bucket) with history.
    pub flips: u64,
    /// Decisions degraded to the static prior by an injected fault.
    pub fault_fallbacks: u64,
    /// Sum of realized seconds.
    pub realized_seconds: f64,
    /// Sum of predicted seconds on the routes actually taken.
    pub predicted_seconds: f64,
}

/// Classifies a predicted speedup with the advisor's bands (the
/// dispatcher's ratio is advisor speedup: predicted CPU over GPU).
pub fn verdict_for_speedup(speedup: f64) -> Verdict {
    match speedup {
        s if s >= 2.0 => Verdict::Offload,
        s if s > 1.05 => Verdict::Marginal,
        s if s > 0.95 => Verdict::Borderline,
        _ => Verdict::StayOnCpu,
    }
}

/// The online dispatch front. One dispatcher owns the full decision
/// state for a stream of calls: history table, device residency, and
/// per-(site, bucket) current routes.
#[derive(Debug, Clone)]
pub struct Dispatcher {
    estimator: Estimator,
    hysteresis: Hysteresis,
    residency: Option<Residency>,
    last_route: HashMap<(u64, ShapeBucket), Route>,
    visits: HashMap<(u64, ShapeBucket), u64>,
    stats: DispatchStats,
}

impl Dispatcher {
    /// A fresh dispatcher (empty history, nothing device-resident).
    pub fn new(hysteresis: Hysteresis) -> Self {
        Self {
            estimator: Estimator::new(),
            hysteresis,
            residency: None,
            last_route: HashMap::new(),
            visits: HashMap::new(),
            stats: DispatchStats::default(),
        }
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> DispatchStats {
        self.stats
    }

    /// Read access to the history table (serve/debug surfaces).
    pub fn estimator(&self) -> &Estimator {
        &self.estimator
    }

    /// Drops history, residency, and route memory.
    pub fn reset(&mut self) {
        self.estimator = Estimator::new();
        self.residency = None;
        self.last_route.clear();
        self.visits.clear();
        self.stats = DispatchStats::default();
    }

    /// Records one more visit of `(site, bucket)` and returns the total
    /// including this one (so a first sighting returns 1).
    fn note_visit(&mut self, skey: u64, bucket: ShapeBucket) -> u64 {
        let v = self.visits.entry((skey, bucket)).or_insert(0);
        *v += 1;
        *v
    }

    /// Dispatches one call under [`Policy::Auto`].
    pub fn dispatch(
        &mut self,
        backend: &dyn DispatchBackend,
        site: &str,
        call: &BlasCall,
    ) -> Decision {
        self.dispatch_with_policy(backend, site, call, Policy::Auto)
    }

    /// Dispatches one call under an explicit policy. The static policies
    /// use identical pricing and residency accounting — only the route
    /// choice is forced — so their totals are directly comparable.
    pub fn dispatch_with_policy(
        &mut self,
        backend: &dyn DispatchBackend,
        site: &str,
        call: &BlasCall,
        policy: Policy,
    ) -> Decision {
        let skey = site_hash(site);
        let bucket = ShapeBucket::of(call);
        let (m, n, k) = call.kernel.dims();
        let visits = self.note_visit(skey, bucket);

        // --- decide ---------------------------------------------------
        let span = trace::span(trace::names::DISPATCH_DECIDE, trace::cats::DISPATCH);
        span.annotate("m", m as u64);
        span.annotate("n", n as u64);
        span.annotate("k", k as u64);

        let prior_cpu = backend.prior_cpu_seconds(call);
        let gpu_surface = backend
            .prior_gpu_kernel_seconds(call)
            .zip(backend.first_touch());

        let operands = operand_keys(skey, call);
        let (decision_route, verdict, predicted_cpu, predicted_gpu, fault_fallback) =
            match &gpu_surface {
                None => (Route::Cpu, Verdict::NoGpu, prior_cpu, None, false),
                Some((prior_kernel, ft)) => {
                    let residency = self
                        .residency
                        .get_or_insert_with(|| Residency::new(backend.device_capacity_bytes()));
                    let cold: f64 = operands
                        .iter()
                        .map(|&(key, bytes)| residency.peek_cold(key, bytes))
                        .sum();
                    let resident: f64 = operands
                        .iter()
                        .map(|&(key, _)| residency.peek_resident(key))
                        .sum();
                    // An injected decision fault degrades to the static
                    // advisor prior: no estimator blend, no hysteresis.
                    let fault_fallback = fault::point(fault::sites::DISPATCH_DECIDE).is_err();
                    let (cpu_compute, gpu_kernel) = if fault_fallback {
                        (prior_cpu, ft.taxed_kernel_seconds(*prior_kernel))
                    } else {
                        (
                            self.estimator.predict(skey, bucket, Route::Cpu, prior_cpu),
                            self.estimator.predict(
                                skey,
                                bucket,
                                Route::Gpu,
                                ft.taxed_kernel_seconds(*prior_kernel),
                            ),
                        )
                    };
                    let predicted_cpu = cpu_compute + ft.writeback_seconds(resident);
                    // Migration is a one-time toll: a site seen `visits`
                    // times can expect to reuse the pages it pays to
                    // migrate, so the *predicted* cost amortises over the
                    // observed reuse (the realized cost below does not —
                    // cold pages are paid for in full when actually
                    // routed). Without this, a site whose calls keep
                    // landing on the CPU re-charges the full migration on
                    // every peek and can never discover that one paid
                    // migration would make the GPU route cheaper forever
                    // after. A first sighting (visits == 1) still prices
                    // the full toll. The fault path above stays at the
                    // static prior, un-amortised.
                    let migration = if fault_fallback {
                        ft.to_device_seconds(cold)
                    } else {
                        ft.to_device_seconds(cold) / visits as f64
                    };
                    let predicted_gpu = gpu_kernel + migration + backend.offload_overhead_seconds();
                    let speedup = predicted_cpu / predicted_gpu;
                    let verdict = verdict_for_speedup(speedup);
                    let route = if fault_fallback {
                        if speedup > 1.0 {
                            Route::Gpu
                        } else {
                            Route::Cpu
                        }
                    } else {
                        self.hysteresis.decide(
                            speedup,
                            verdict,
                            self.last_route.get(&(skey, bucket)).copied(),
                        )
                    };
                    (
                        route,
                        verdict,
                        predicted_cpu,
                        Some(predicted_gpu),
                        fault_fallback,
                    )
                }
            };
        let route = match (policy, gpu_surface.is_some()) {
            (Policy::Auto, _) | (_, false) => decision_route,
            (Policy::AlwaysCpu, true) => Route::Cpu,
            (Policy::AlwaysGpu, true) => Route::Gpu,
        };
        drop(span);

        // --- execute --------------------------------------------------
        let span = trace::span(trace::names::DISPATCH_ROUTE, trace::cats::DISPATCH);
        span.annotate("gpu", matches!(route, Route::Gpu) as u64);
        let (realized, observed) = match (route, &gpu_surface) {
            (Route::Gpu, Some((_, ft))) => {
                let residency = self
                    .residency
                    .get_or_insert_with(|| Residency::new(backend.device_capacity_bytes()));
                let cold: f64 = operands
                    .iter()
                    .map(|&(key, bytes)| residency.touch_device(key, bytes))
                    .sum();
                span.annotate("cold_bytes", cold as u64);
                // The GPU surface exists, so the backend must realize a
                // kernel time; fall back to the prior only if a custom
                // backend is inconsistent about it.
                let kernel = backend
                    .realize_gpu_kernel_seconds(call)
                    .unwrap_or_else(|| backend.prior_cpu_seconds(call));
                let taxed = ft.taxed_kernel_seconds(kernel);
                (
                    backend.offload_overhead_seconds() + ft.to_device_seconds(cold) + taxed,
                    taxed,
                )
            }
            (Route::Cpu, Some((_, ft))) => {
                let residency = self
                    .residency
                    .get_or_insert_with(|| Residency::new(backend.device_capacity_bytes()));
                let back: f64 = operands
                    .iter()
                    .map(|&(key, _)| residency.touch_host(key))
                    .sum();
                span.annotate("writeback_bytes", back as u64);
                let compute = backend.realize_cpu_seconds(call);
                (ft.writeback_seconds(back) + compute, compute)
            }
            (_, None) => {
                let compute = backend.realize_cpu_seconds(call);
                (compute, compute)
            }
        };
        drop(span);

        // --- learn ----------------------------------------------------
        self.estimator.observe(skey, bucket, route, observed);
        let flipped = self.note_route(skey, bucket, route);
        self.stats.calls += 1;
        match route {
            Route::Cpu => self.stats.cpu_calls += 1,
            Route::Gpu => self.stats.gpu_calls += 1,
        }
        self.stats.realized_seconds += realized;
        self.stats.predicted_seconds += match route {
            Route::Cpu => predicted_cpu,
            Route::Gpu => predicted_gpu.unwrap_or(predicted_cpu),
        };
        if fault_fallback {
            self.stats.fault_fallbacks += 1;
        }

        Decision {
            route,
            verdict,
            predicted_cpu,
            predicted_gpu,
            realized,
            observed,
            flipped,
            fault_fallback,
        }
    }

    /// Rebuilds the state effects of one already-executed call from a
    /// checkpoint record: residency mutation, history observation, and
    /// route memory — without timing anything. After replaying a saved
    /// prefix, continuing the trace produces bit-identical decisions to
    /// an uninterrupted run.
    pub fn replay(
        &mut self,
        backend: &dyn DispatchBackend,
        site: &str,
        call: &BlasCall,
        route: Route,
        observed: f64,
        realized: f64,
        predicted: f64,
    ) {
        let skey = site_hash(site);
        let bucket = ShapeBucket::of(call);
        self.note_visit(skey, bucket);
        let operands = operand_keys(skey, call);
        if backend.first_touch().is_some() {
            let residency = self
                .residency
                .get_or_insert_with(|| Residency::new(backend.device_capacity_bytes()));
            match route {
                Route::Gpu => {
                    for &(key, bytes) in &operands {
                        residency.touch_device(key, bytes);
                    }
                }
                Route::Cpu => {
                    for &(key, _) in &operands {
                        residency.touch_host(key);
                    }
                }
            }
        }
        self.estimator.observe(skey, bucket, route, observed);
        self.note_route(skey, bucket, route);
        self.stats.calls += 1;
        match route {
            Route::Cpu => self.stats.cpu_calls += 1,
            Route::Gpu => self.stats.gpu_calls += 1,
        }
        self.stats.realized_seconds += realized;
        self.stats.predicted_seconds += predicted;
    }

    /// Feeds an externally-observed host kernel execution (from the
    /// `blob_blas::dispatchhook` seam) into the CPU history for `site`.
    pub fn absorb(&mut self, site: &str, sample: &blob_blas::dispatchhook::Sample) {
        let Some(call) = sample_call(sample) else {
            return;
        };
        self.estimator.observe(
            site_hash(site),
            ShapeBucket::of(&call),
            Route::Cpu,
            sample.seconds,
        );
    }

    /// Records the route taken; returns whether it flipped.
    fn note_route(&mut self, skey: u64, bucket: ShapeBucket, route: Route) -> bool {
        let flipped = match self.last_route.insert((skey, bucket), route) {
            Some(prev) => prev != route,
            None => false,
        };
        if flipped {
            self.stats.flips += 1;
        }
        flipped
    }
}

/// `(buffer key, bytes)` for each operand of a call at a site. Keys mix
/// the site hash, the operand slot, and the exact dimensions, so the
/// same shape at the same site re-touches the same modelled buffers
/// (that is what makes warmth real) while different sites never alias.
fn operand_keys(site: u64, call: &BlasCall) -> [(u64, f64); 3] {
    let es = call.elem_bytes() as f64;
    let (m, n, k) = call.kernel.dims();
    let mix = |slot: u64, a: usize, b: usize| -> u64 {
        site.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(slot.wrapping_mul(0xff51_afd7_ed55_8ccd))
            .wrapping_add((a as u64).wrapping_mul(0xc4ce_b9fe_1a85_ec53))
            .wrapping_add(
                (b as u64)
                    .rotate_left(32)
                    .wrapping_mul(0x94d0_49bb_1331_11eb),
            )
    };
    match call.kernel {
        blob_sim::Kernel::Gemm { m, n, k } => [
            (mix(1, m, k), (m * k) as f64 * es),
            (mix(2, k, n), (k * n) as f64 * es),
            (mix(3, m, n), (m * n) as f64 * es),
        ],
        blob_sim::Kernel::Gemv { .. } => [
            (mix(1, m, n), (m * n) as f64 * es),
            (mix(2, n, 1), n as f64 * es),
            (mix(3, m, 1), (m * k) as f64 * es),
        ],
    }
}

/// Reconstructs a [`BlasCall`] from a hook sample (None when the element
/// size maps to no modelled precision).
fn sample_call(sample: &blob_blas::dispatchhook::Sample) -> Option<BlasCall> {
    use blob_blas::dispatchhook::ObservedKind;
    let precision = match sample.elem_bytes {
        4 => blob_sim::Precision::F32,
        8 => blob_sim::Precision::F64,
        _ => return None,
    };
    if sample.m == 0 || sample.n == 0 || sample.k == 0 {
        return None;
    }
    Some(match sample.kind {
        ObservedKind::Gemm => BlasCall::gemm(precision, sample.m, sample.n, sample.k),
        ObservedKind::Gemv => BlasCall::gemv(precision, sample.m, sample.n),
    })
}

/// Collects `blob_blas::dispatchhook` samples so a dispatcher can fold
/// real host kernel executions into its history between decisions.
///
/// The hook is process-global while a collector's closure is installed;
/// [`SampleCollector::install`] arms it and returns a guard-free handle
/// (tests serialise on their own locks, the CLI installs exactly one).
#[derive(Debug, Clone, Default)]
pub struct SampleCollector {
    inner: std::sync::Arc<std::sync::Mutex<Vec<blob_blas::dispatchhook::Sample>>>,
}

impl SampleCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs this collector as the process-global kernel observer and
    /// arms the observation points.
    pub fn install(&self) {
        let sink = self.inner.clone();
        blob_blas::dispatchhook::set_observer(move |sample| {
            sink.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(sample);
        });
        blob_blas::dispatchhook::set_active(true);
    }

    /// Disarms the process-global observation points.
    pub fn deactivate() {
        blob_blas::dispatchhook::set_active(false);
    }

    /// Takes everything collected so far.
    pub fn drain(&self) -> Vec<blob_blas::dispatchhook::Sample> {
        std::mem::take(
            &mut self
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blob_sim::firsttouch::FirstTouchModel;
    use blob_sim::{presets, Precision};

    /// A backend with fixed CPU/GPU times, for exercising routing edges.
    struct Fixed {
        cpu: f64,
        gpu_kernel: Option<f64>,
    }

    impl DispatchBackend for Fixed {
        fn name(&self) -> String {
            "fixed".into()
        }
        fn prior_cpu_seconds(&self, _: &BlasCall) -> f64 {
            self.cpu
        }
        fn prior_gpu_kernel_seconds(&self, _: &BlasCall) -> Option<f64> {
            self.gpu_kernel
        }
        fn realize_cpu_seconds(&self, call: &BlasCall) -> f64 {
            self.prior_cpu_seconds(call)
        }
        fn realize_gpu_kernel_seconds(&self, call: &BlasCall) -> Option<f64> {
            self.prior_gpu_kernel_seconds(call)
        }
        fn first_touch(&self) -> Option<FirstTouchModel> {
            self.gpu_kernel.map(|_| FirstTouchModel {
                page_bytes: 2.0 * 1024.0 * 1024.0,
                fault_us: 2.0,
                migration_gbs: 100.0,
                writeback_gbs: 100.0,
                per_iter_penalty: 0.0,
            })
        }
    }

    #[test]
    fn small_calls_stay_on_cpu_large_calls_offload() {
        let sys = presets::isambard_ai();
        let mut d = Dispatcher::new(Hysteresis::default());
        let small = BlasCall::gemm(Precision::F32, 64, 64, 64);
        let large = BlasCall::gemm(Precision::F32, 1024, 1024, 1024);
        assert_eq!(d.dispatch(&sys, "s", &small).route, Route::Cpu);
        assert_eq!(d.dispatch(&sys, "l", &large).route, Route::Gpu);
        let stats = d.stats();
        assert_eq!((stats.calls, stats.cpu_calls, stats.gpu_calls), (2, 1, 1));
    }

    #[test]
    fn warm_repeats_get_cheaper_on_the_gpu_route() {
        let sys = presets::isambard_ai();
        let mut d = Dispatcher::new(Hysteresis::default());
        let large = BlasCall::gemm(Precision::F64, 1024, 1024, 1024);
        let first = d.dispatch(&sys, "l", &large);
        let second = d.dispatch(&sys, "l", &large);
        assert_eq!(first.route, Route::Gpu);
        assert_eq!(second.route, Route::Gpu);
        assert!(
            second.realized < first.realized,
            "warm pages skip migration: {} !< {}",
            second.realized,
            first.realized
        );
    }

    #[test]
    fn cpu_only_backend_routes_cpu_with_no_gpu_verdict() {
        let b = Fixed {
            cpu: 1e-3,
            gpu_kernel: None,
        };
        let mut d = Dispatcher::new(Hysteresis::default());
        let call = BlasCall::gemm(Precision::F32, 64, 64, 64);
        let dec = d.dispatch(&b, "s", &call);
        assert_eq!(dec.route, Route::Cpu);
        assert_eq!(dec.verdict, Verdict::NoGpu);
        assert!(dec.predicted_gpu.is_none());
        // forced-GPU policy cannot conjure a device
        let dec = d.dispatch_with_policy(&b, "s", &call, Policy::AlwaysGpu);
        assert_eq!(dec.route, Route::Cpu);
    }

    #[test]
    fn static_policies_force_the_route() {
        let sys = presets::isambard_ai();
        let mut d = Dispatcher::new(Hysteresis::default());
        let small = BlasCall::gemm(Precision::F32, 48, 48, 48);
        let dec = d.dispatch_with_policy(&sys, "s", &small, Policy::AlwaysGpu);
        assert_eq!(dec.route, Route::Gpu, "forced onto the losing route");
        let large = BlasCall::gemm(Precision::F32, 1024, 1024, 1024);
        let dec = d.dispatch_with_policy(&sys, "l", &large, Policy::AlwaysCpu);
        assert_eq!(dec.route, Route::Cpu);
    }

    #[test]
    fn estimator_learns_and_overrides_a_wrong_prior() {
        // Prior says CPU is 4x slower than the GPU kernel, but realized
        // CPU times come in 10x *faster* than the prior: the estimator
        // must learn this and flip routing back to the CPU.
        struct Lying;
        impl DispatchBackend for Lying {
            fn name(&self) -> String {
                "lying".into()
            }
            fn prior_cpu_seconds(&self, _: &BlasCall) -> f64 {
                4e-3
            }
            fn prior_gpu_kernel_seconds(&self, _: &BlasCall) -> Option<f64> {
                Some(1e-3)
            }
            fn realize_cpu_seconds(&self, _: &BlasCall) -> f64 {
                4e-4 // reality: CPU is fast
            }
            fn realize_gpu_kernel_seconds(&self, _: &BlasCall) -> Option<f64> {
                Some(1e-3)
            }
            fn first_touch(&self) -> Option<FirstTouchModel> {
                Some(FirstTouchModel {
                    page_bytes: 2.0 * 1024.0 * 1024.0,
                    fault_us: 0.0,
                    migration_gbs: 1e6, // transfers ~free: isolate compute
                    writeback_gbs: 1e6,
                    per_iter_penalty: 0.0,
                })
            }
        }
        let mut d = Dispatcher::new(Hysteresis::default());
        let call = BlasCall::gemm(Precision::F32, 256, 256, 256);
        let first = d.dispatch(&Lying, "site", &call);
        assert_eq!(first.route, Route::Gpu, "prior sends it to the GPU");
        // ... but the CPU history never accumulates while GPU-routed; to
        // learn CPU reality the dispatcher needs CPU executions. Force a
        // few (an application phase change, or the AlwaysCpu baseline):
        for _ in 0..32 {
            d.dispatch_with_policy(&Lying, "site", &call, Policy::AlwaysCpu);
        }
        let after = d.dispatch(&Lying, "site", &call);
        assert_eq!(
            after.route,
            Route::Cpu,
            "blended CPU estimate {} must now beat the GPU kernel",
            after.predicted_cpu
        );
    }

    #[test]
    fn absorbed_hook_samples_populate_the_history() {
        use blob_blas::dispatchhook::{ObservedKind, Sample};
        let mut d = Dispatcher::new(Hysteresis::default());
        d.absorb(
            "app.hot",
            &Sample {
                kind: ObservedKind::Gemm,
                m: 128,
                n: 128,
                k: 128,
                elem_bytes: 4,
                seconds: 3e-4,
            },
        );
        assert_eq!(d.estimator().cells(), 1);
        // unknown element size is ignored, not mis-bucketed
        d.absorb(
            "app.hot",
            &Sample {
                kind: ObservedKind::Gemm,
                m: 128,
                n: 128,
                k: 128,
                elem_bytes: 2,
                seconds: 3e-4,
            },
        );
        assert_eq!(d.estimator().cells(), 1);
    }

    #[test]
    fn reset_forgets_everything() {
        let sys = presets::isambard_ai();
        let mut d = Dispatcher::new(Hysteresis::default());
        d.dispatch(&sys, "s", &BlasCall::gemm(Precision::F32, 512, 512, 512));
        assert!(d.stats().calls > 0);
        d.reset();
        assert_eq!(d.stats(), DispatchStats::default());
        assert_eq!(d.estimator().cells(), 0);
    }

    #[test]
    fn decide_and_route_spans_are_recorded() {
        let _guard = trace::TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        trace::clear();
        trace::enable();
        let sys = presets::isambard_ai();
        let mut d = Dispatcher::new(Hysteresis::default());
        d.dispatch(&sys, "s", &BlasCall::gemm(Precision::F32, 512, 512, 512));
        trace::disable();
        let spans = trace::take();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&trace::names::DISPATCH_DECIDE), "{names:?}");
        assert!(names.contains(&trace::names::DISPATCH_ROUTE), "{names:?}");
        assert!(spans
            .iter()
            .all(|s| s.name != trace::names::DISPATCH_DECIDE || s.cat == trace::cats::DISPATCH));
    }

    #[test]
    fn decision_fault_degrades_to_the_static_prior() {
        let _guard = fault::CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let plan = fault::Plan::parse("dispatch.decide:error@1").expect("valid plan");
        fault::install(&plan);
        let sys = presets::isambard_ai();
        let mut d = Dispatcher::new(Hysteresis::default());
        let small = BlasCall::gemm(Precision::F32, 64, 64, 64);
        let large = BlasCall::gemm(Precision::F32, 1024, 1024, 1024);
        let a = d.dispatch(&sys, "s", &small);
        let b = d.dispatch(&sys, "l", &large);
        fault::clear();
        assert!(a.fault_fallback && b.fault_fallback);
        // the static prior still routes sanely — degraded, not broken
        assert_eq!(a.route, Route::Cpu);
        assert_eq!(b.route, Route::Gpu);
        assert_eq!(d.stats().fault_fallbacks, 2);
    }
}
