//! Whole-trace execution under a routing policy, and its encodings.
//!
//! [`run_trace`] drives one [`Dispatcher`] over a trace; `compare_policies`
//! runs the same trace under `auto`, `always-cpu`, and `always-gpu` with a
//! fresh dispatcher (and fresh device residency) each, which is the
//! experiment the `dispatch_gate` bench and the CLI `dispatch` mode both
//! report: the online dispatcher must beat both static policies on a mixed
//! trace. [`dispatch_csv`] and [`dispatch_json`] carry the chosen route and
//! the predicted/realized seconds for every call.

use crate::backend::DispatchBackend;
use crate::dispatcher::{Decision, DispatchStats, Dispatcher, Policy};
use crate::hysteresis::Hysteresis;
use crate::workload::TraceCall;
use blob_core::wire::{call_json, Json};

/// One dispatched call and its outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CallRecord {
    /// Position in the trace.
    pub index: usize,
    /// Call-site name.
    pub site: String,
    /// The call.
    pub call: blob_sim::BlasCall,
    /// What the dispatcher decided and what it cost.
    pub decision: Decision,
}

/// A whole trace executed under one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The policy the trace ran under.
    pub policy: Policy,
    /// Backend (system) name.
    pub backend_name: String,
    /// Per-call outcomes, in trace order.
    pub records: Vec<CallRecord>,
    /// Aggregate counters.
    pub stats: DispatchStats,
}

/// Runs `trace` through a fresh dispatcher under `policy`.
pub fn run_trace(
    backend: &dyn DispatchBackend,
    trace: &[TraceCall],
    policy: Policy,
    hysteresis: Hysteresis,
) -> RunResult {
    let mut dispatcher = Dispatcher::new(hysteresis);
    let records = trace
        .iter()
        .enumerate()
        .map(|(index, tc)| CallRecord {
            index,
            site: tc.site.clone(),
            call: tc.call,
            decision: dispatcher.dispatch_with_policy(backend, &tc.site, &tc.call, policy),
        })
        .collect();
    RunResult {
        policy,
        backend_name: backend.name(),
        records,
        stats: dispatcher.stats(),
    }
}

/// Runs the same trace under every [`Policy`], each with a fresh
/// dispatcher and fresh residency, in [`Policy::ALL`] order
/// (`auto`, `always-cpu`, `always-gpu`).
pub fn compare_policies(
    backend: &dyn DispatchBackend,
    trace: &[TraceCall],
    hysteresis: Hysteresis,
) -> Vec<RunResult> {
    Policy::ALL
        .iter()
        .map(|&policy| run_trace(backend, trace, policy, hysteresis))
        .collect()
}

/// CSV header for [`dispatch_csv`].
pub const CSV_HEADER: &str = "index,site,routine,m,n,k,route,verdict,\
predicted_cpu_s,predicted_gpu_s,realized_s,flip,fault_fallback";

/// Renders one run as CSV: one row per call with the chosen route and
/// the realized-vs-predicted seconds.
pub fn dispatch_csv(result: &RunResult) -> String {
    let mut out = String::with_capacity(64 * (result.records.len() + 2));
    out.push_str(&format!(
        "# system={} policy={}\n",
        result.backend_name,
        result.policy.id()
    ));
    out.push_str(CSV_HEADER);
    out.push('\n');
    for r in &result.records {
        let d = &r.decision;
        let (m, n, k) = r.call.kernel.dims();
        let pg = d.predicted_gpu.map_or(String::new(), |g| format!("{g:.9}"));
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{:.9},{},{:.9},{},{}\n",
            r.index,
            r.site,
            r.call.routine(),
            m,
            n,
            k,
            d.route.id(),
            d.verdict.id(),
            d.predicted_cpu,
            pg,
            d.realized,
            u8::from(d.flipped),
            u8::from(d.fault_fallback),
        ));
    }
    out
}

/// Encodes one call record (route included) for `--json` and the
/// `/v1/dispatch` response.
pub fn record_json(r: &CallRecord) -> Json {
    Json::obj()
        .field("index", r.index)
        .field("site", r.site.as_str())
        .field("call", call_json(&r.call))
        .field("route", r.decision.route.id())
        .field("verdict", r.decision.verdict.id())
        .field("predicted_cpu_seconds", r.decision.predicted_cpu)
        .field("predicted_gpu_seconds", r.decision.predicted_gpu)
        .field("realized_seconds", r.decision.realized)
        .field("flip", r.decision.flipped)
        .field("fault_fallback", r.decision.fault_fallback)
        .build()
}

/// Encodes aggregate counters.
pub fn stats_json(stats: &DispatchStats) -> Json {
    Json::obj()
        .field("calls", stats.calls)
        .field("cpu_calls", stats.cpu_calls)
        .field("gpu_calls", stats.gpu_calls)
        .field("flips", stats.flips)
        .field("fault_fallbacks", stats.fault_fallbacks)
        .field("realized_seconds", stats.realized_seconds)
        .field("predicted_seconds", stats.predicted_seconds)
        .build()
}

/// Encodes one whole run, per-call routes included.
pub fn dispatch_json(result: &RunResult) -> Json {
    Json::obj()
        .field("system", result.backend_name.as_str())
        .field("policy", result.policy.id())
        .field("stats", stats_json(&result.stats))
        .field(
            "calls",
            Json::Arr(result.records.iter().map(record_json).collect()),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{mixed_trace, MixedTraceSpec};
    use blob_sim::presets;

    fn small_spec() -> MixedTraceSpec {
        MixedTraceSpec {
            calls: 60,
            ..MixedTraceSpec::default()
        }
    }

    #[test]
    fn auto_beats_both_static_policies_on_a_mixed_trace() {
        let sys = presets::isambard_ai();
        let trace = mixed_trace(&small_spec());
        let results = compare_policies(&sys, &trace, Hysteresis::default());
        assert_eq!(results.len(), 3);
        let auto = &results[0];
        let cpu = &results[1];
        let gpu = &results[2];
        assert_eq!(auto.policy, Policy::Auto);
        assert!(
            auto.stats.realized_seconds < cpu.stats.realized_seconds,
            "auto {} !< always-cpu {}",
            auto.stats.realized_seconds,
            cpu.stats.realized_seconds
        );
        assert!(
            auto.stats.realized_seconds < gpu.stats.realized_seconds,
            "auto {} !< always-gpu {}",
            auto.stats.realized_seconds,
            gpu.stats.realized_seconds
        );
    }

    #[test]
    fn runs_are_deterministic_for_a_fixed_seed() {
        let sys = presets::isambard_ai();
        let trace = mixed_trace(&small_spec());
        let a = run_trace(&sys, &trace, Policy::Auto, Hysteresis::default());
        let b = run_trace(&sys, &trace, Policy::Auto, Hysteresis::default());
        assert_eq!(a, b, "same seed, same trace, same decisions");
        assert_eq!(dispatch_csv(&a), dispatch_csv(&b));
    }

    #[test]
    fn csv_has_header_and_one_row_per_call() {
        let sys = presets::isambard_ai();
        let trace = mixed_trace(&MixedTraceSpec {
            calls: 10,
            gemv_every: 5,
            ..MixedTraceSpec::default()
        });
        let result = run_trace(&sys, &trace, Policy::Auto, Hysteresis::default());
        let csv = dispatch_csv(&result);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2 + trace.len());
        assert!(lines[0].starts_with("# system=Isambard-AI"));
        assert_eq!(lines[1], CSV_HEADER);
        assert!(lines[2].contains(",cpu,") || lines[2].contains(",gpu,"));
    }

    #[test]
    fn json_carries_route_per_call_and_stats() {
        let sys = presets::isambard_ai();
        let trace = mixed_trace(&MixedTraceSpec {
            calls: 6,
            ..MixedTraceSpec::default()
        });
        let result = run_trace(&sys, &trace, Policy::Auto, Hysteresis::default());
        let doc = dispatch_json(&result);
        let encoded = doc.encode();
        let parsed = Json::parse(&encoded).expect("round-trips");
        let calls = parsed.get("calls").and_then(Json::as_arr).expect("calls");
        assert_eq!(calls.len(), 6);
        for c in calls {
            let route = c.get("route").and_then(Json::as_str).expect("route");
            assert!(route == "cpu" || route == "gpu");
            assert!(c.get("realized_seconds").and_then(Json::as_f64).is_some());
        }
        assert!(parsed.get("stats").and_then(|s| s.get("calls")).is_some());
    }

    #[test]
    fn cpu_only_system_runs_whole_trace_on_cpu() {
        let sys = presets::isambard_ai_armpl();
        let trace = mixed_trace(&small_spec());
        let result = run_trace(&sys, &trace, Policy::Auto, Hysteresis::default());
        assert_eq!(result.stats.gpu_calls, 0);
        assert_eq!(result.stats.cpu_calls, trace.len() as u64);
    }
}
