//! The per-call-site history table and online time estimator.
//!
//! Each (call site, shape bucket, route) triple owns one EWMA cell of
//! realized execution times. Prediction blends the static model prior
//! with the cell as pseudo-count Bayesian shrinkage: with no history the
//! prediction *is* the prior, and as observations accumulate the
//! estimate moves to the exponentially-weighted observed mean. Shapes
//! are bucketed by `⌊log2⌋` per dimension (the 2404.13195 dispatch layer
//! uses the same trick) so one cell generalises over a neighbourhood of
//! sizes without conflating the small and large regimes.

use crate::dispatcher::Route;
use blob_sim::{BlasCall, KernelKind, Precision};
use std::collections::HashMap;

/// EWMA smoothing factor: one observation moves the mean 25 % of the way.
pub const EWMA_ALPHA: f64 = 0.25;

/// How many observations the static prior is worth in the blend.
pub const PRIOR_WEIGHT: f64 = 4.0;

/// Cap on the effective observation count, so very long runs can still
/// adapt if the regime shifts (the prior never fully vanishes either).
pub const WEIGHT_CAP: f64 = 64.0;

/// FNV-1a hash of a call-site name — the stable 64-bit key the history
/// table and residency tracker both use.
pub fn site_hash(site: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A `⌊log2⌋`-per-dimension shape bucket: the generalisation unit of the
/// history table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShapeBucket {
    /// Kernel family.
    pub kind: KernelKind,
    /// Element precision.
    pub precision: Precision,
    /// `⌊log2 m⌋`.
    pub log2_m: u8,
    /// `⌊log2 n⌋`.
    pub log2_n: u8,
    /// `⌊log2 k⌋` (0 for GEMV).
    pub log2_k: u8,
}

impl ShapeBucket {
    /// The bucket a call falls into.
    pub fn of(call: &BlasCall) -> Self {
        let (m, n, k) = call.kernel.dims();
        Self {
            kind: call.kernel.kind(),
            precision: call.precision,
            log2_m: m.max(1).ilog2() as u8,
            log2_n: n.max(1).ilog2() as u8,
            log2_k: k.max(1).ilog2() as u8,
        }
    }
}

/// One EWMA cell: the observed mean and its (capped) effective count.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cell {
    mean: f64,
    weight: f64,
}

/// The online estimator: a history table of EWMA cells, one per
/// (site, bucket, route).
#[derive(Debug, Clone, Default)]
pub struct Estimator {
    table: HashMap<(u64, ShapeBucket, Route), Cell>,
}

impl Estimator {
    /// An empty history table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of populated (site, bucket, route) cells.
    pub fn cells(&self) -> usize {
        self.table.len()
    }

    /// Effective observation count in one cell (0 when empty).
    pub fn weight(&self, site: u64, bucket: ShapeBucket, route: Route) -> f64 {
        self.table
            .get(&(site, bucket, route))
            .map_or(0.0, |c| c.weight)
    }

    /// Predicted seconds for `route`: the static `prior` shrunk towards
    /// the observed EWMA mean by effective observation count.
    pub fn predict(&self, site: u64, bucket: ShapeBucket, route: Route, prior: f64) -> f64 {
        match self.table.get(&(site, bucket, route)) {
            None => prior,
            Some(c) => (PRIOR_WEIGHT * prior + c.weight * c.mean) / (PRIOR_WEIGHT + c.weight),
        }
    }

    /// Feeds one realized time into the history table.
    pub fn observe(&mut self, site: u64, bucket: ShapeBucket, route: Route, seconds: f64) {
        if !seconds.is_finite() || seconds < 0.0 {
            return;
        }
        let cell = self.table.entry((site, bucket, route)).or_insert(Cell {
            mean: seconds,
            weight: 0.0,
        });
        cell.mean = EWMA_ALPHA * seconds + (1.0 - EWMA_ALPHA) * cell.mean;
        cell.weight = (cell.weight + 1.0).min(WEIGHT_CAP);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket() -> ShapeBucket {
        ShapeBucket::of(&BlasCall::gemm(Precision::F32, 100, 100, 100))
    }

    #[test]
    fn site_hash_is_stable_and_distinct() {
        assert_eq!(site_hash("solver.a"), site_hash("solver.a"));
        assert_ne!(site_hash("solver.a"), site_hash("solver.b"));
        assert_ne!(site_hash(""), site_hash("x"));
    }

    #[test]
    fn buckets_group_log2_neighbourhoods() {
        let a = ShapeBucket::of(&BlasCall::gemm(Precision::F32, 65, 65, 65));
        let b = ShapeBucket::of(&BlasCall::gemm(Precision::F32, 127, 127, 127));
        let c = ShapeBucket::of(&BlasCall::gemm(Precision::F32, 128, 128, 128));
        assert_eq!(a, b, "65..127 share the log2=6 bucket");
        assert_ne!(b, c, "128 starts the log2=7 bucket");
        let v = ShapeBucket::of(&BlasCall::gemv(Precision::F32, 65, 65));
        assert_ne!(a, v, "kernel kind separates buckets");
        let d = ShapeBucket::of(&BlasCall::gemm(Precision::F64, 65, 65, 65));
        assert_ne!(a, d, "precision separates buckets");
    }

    #[test]
    fn empty_cell_predicts_the_prior() {
        let e = Estimator::new();
        assert_eq!(e.predict(1, bucket(), Route::Cpu, 0.5), 0.5);
    }

    #[test]
    fn observations_pull_the_prediction_towards_the_mean() {
        let mut e = Estimator::new();
        let s = site_hash("solver");
        let b = bucket();
        // prior says 1.0 s, reality says 2.0 s
        for _ in 0..32 {
            e.observe(s, b, Route::Cpu, 2.0);
        }
        let p = e.predict(s, b, Route::Cpu, 1.0);
        assert!(
            p > 1.7,
            "after 32 observations the blend is mostly data: {p}"
        );
        assert!(p < 2.0, "the prior never fully vanishes: {p}");
        // a different site is unaffected
        assert_eq!(e.predict(site_hash("other"), b, Route::Cpu, 1.0), 1.0);
        // and the other route is unaffected
        assert_eq!(e.predict(s, b, Route::Gpu, 1.0), 1.0);
    }

    #[test]
    fn weight_caps_so_the_estimator_can_still_adapt() {
        let mut e = Estimator::new();
        let s = site_hash("s");
        let b = bucket();
        for _ in 0..1000 {
            e.observe(s, b, Route::Gpu, 1.0);
        }
        assert_eq!(e.weight(s, b, Route::Gpu), WEIGHT_CAP);
        // regime shift: times double; the EWMA follows within a few calls
        for _ in 0..16 {
            e.observe(s, b, Route::Gpu, 2.0);
        }
        let p = e.predict(s, b, Route::Gpu, 1.0);
        assert!(p > 1.7, "estimator tracked the shift: {p}");
    }

    #[test]
    fn non_finite_and_negative_samples_are_dropped() {
        let mut e = Estimator::new();
        let s = site_hash("s");
        let b = bucket();
        e.observe(s, b, Route::Cpu, f64::NAN);
        e.observe(s, b, Route::Cpu, f64::INFINITY);
        e.observe(s, b, Route::Cpu, -1.0);
        assert_eq!(e.cells(), 0);
        assert_eq!(e.predict(s, b, Route::Cpu, 3.0), 3.0);
    }
}
