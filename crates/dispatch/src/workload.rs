//! Seeded mixed-regime call traces for exercising the dispatch plane.
//!
//! The dispatcher's value proposition only shows on a workload that
//! *interleaves* regimes: small GEMMs the CPU wins outright and large
//! GEMMs worth the page-migration toll. [`mixed_trace`] builds exactly
//! that — a deterministic interleaving drawn from a small palette of
//! repeated shapes (repeats are what make residency warmth and call-site
//! history meaningful) so the same seed always reproduces the same trace
//! byte for byte.

use blob_core::rng::XorShift64;
use blob_sim::{BlasCall, Precision};

/// One call in a trace, tagged with its originating call site.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCall {
    /// Call-site name (the dispatcher's history key, with the shape).
    pub site: String,
    /// The BLAS call itself.
    pub call: BlasCall,
}

/// Parameters of a [`mixed_trace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedTraceSpec {
    /// RNG seed; equal seeds give byte-identical traces.
    pub seed: u64,
    /// Number of calls to generate.
    pub calls: usize,
    /// Inclusive dimension range for the small (CPU-favoured) regime.
    pub small: (usize, usize),
    /// Inclusive dimension range for the large (GPU-favoured) regime.
    pub large: (usize, usize),
    /// Element precision of every call.
    pub precision: Precision,
    /// Every `gemv_every`-th call is a GEMV instead of a GEMM (0 = none).
    pub gemv_every: usize,
}

impl Default for MixedTraceSpec {
    fn default() -> Self {
        Self {
            seed: 42,
            calls: 200,
            small: (32, 128),
            large: (512, 1024),
            precision: Precision::F32,
            gemv_every: 0,
        }
    }
}

/// How many distinct shapes each regime's palette holds. Small enough
/// that shapes repeat often (history and warmth accumulate), large
/// enough that the trace is not one call repeated.
const PALETTE: usize = 3;

/// Generates the mixed small/large trace described by `spec`.
///
/// Calls alternate regimes by index parity (even = small, odd = large),
/// each drawing a shape from its regime's seeded palette. Sites are
/// named `small.N` / `large.N` / `gemv.N` after the palette slot, so a
/// site always re-issues the same shape — like a call site in a real
/// application would.
pub fn mixed_trace(spec: &MixedTraceSpec) -> Vec<TraceCall> {
    let mut rng = XorShift64::new(spec.seed);
    let draw = |rng: &mut XorShift64, (lo, hi): (usize, usize)| -> [usize; 3] {
        let hi = hi.max(lo);
        [
            rng.range_usize(lo, hi + 1),
            rng.range_usize(lo, hi + 1),
            rng.range_usize(lo, hi + 1),
        ]
    };
    let small: Vec<[usize; 3]> = (0..PALETTE).map(|_| draw(&mut rng, spec.small)).collect();
    let large: Vec<[usize; 3]> = (0..PALETTE).map(|_| draw(&mut rng, spec.large)).collect();

    let mut trace = Vec::with_capacity(spec.calls);
    for i in 0..spec.calls {
        if spec.gemv_every > 0 && i % spec.gemv_every == spec.gemv_every - 1 {
            let slot = (i / spec.gemv_every) % PALETTE;
            let [m, n, _] = large[slot];
            trace.push(TraceCall {
                site: format!("gemv.{slot}"),
                call: BlasCall::gemv(spec.precision, m, n),
            });
            continue;
        }
        let slot = (i / 2) % PALETTE;
        let (name, [m, n, k]) = if i % 2 == 0 {
            ("small", small[slot])
        } else {
            ("large", large[slot])
        };
        trace.push(TraceCall {
            site: format!("{name}.{slot}"),
            call: BlasCall::gemm(spec.precision, m, n, k),
        });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use blob_sim::Kernel;

    #[test]
    fn same_seed_same_trace() {
        let spec = MixedTraceSpec::default();
        assert_eq!(mixed_trace(&spec), mixed_trace(&spec));
        let other = MixedTraceSpec { seed: 43, ..spec };
        assert_ne!(mixed_trace(&spec), mixed_trace(&other));
    }

    #[test]
    fn regimes_interleave_and_respect_ranges() {
        let spec = MixedTraceSpec {
            calls: 40,
            ..MixedTraceSpec::default()
        };
        let trace = mixed_trace(&spec);
        assert_eq!(trace.len(), 40);
        for (i, tc) in trace.iter().enumerate() {
            let (m, n, k) = tc.call.kernel.dims();
            let (lo, hi) = if i % 2 == 0 { spec.small } else { spec.large };
            for d in [m, n, k] {
                assert!(d >= lo && d <= hi, "call {i}: dim {d} outside [{lo},{hi}]");
            }
            let prefix = if i % 2 == 0 { "small." } else { "large." };
            assert!(tc.site.starts_with(prefix), "call {i}: site {}", tc.site);
        }
    }

    #[test]
    fn shapes_repeat_within_each_site() {
        let trace = mixed_trace(&MixedTraceSpec::default());
        let mut by_site: std::collections::HashMap<&str, &BlasCall> =
            std::collections::HashMap::new();
        for tc in &trace {
            let prev = by_site.insert(tc.site.as_str(), &tc.call);
            if let Some(prev) = prev {
                assert_eq!(prev, &tc.call, "site {} changed shape", tc.site);
            }
        }
        assert!(by_site.len() >= 2 * PALETTE, "palette too narrow");
    }

    #[test]
    fn gemv_every_inserts_gemvs() {
        let spec = MixedTraceSpec {
            gemv_every: 5,
            calls: 25,
            ..MixedTraceSpec::default()
        };
        let trace = mixed_trace(&spec);
        let gemvs = trace
            .iter()
            .filter(|tc| matches!(tc.call.kernel, Kernel::Gemv { .. }))
            .count();
        assert_eq!(gemvs, 5);
        assert!(trace[4].site.starts_with("gemv."));
    }
}
