//! Crash-safe dispatch runs: per-call checkpointing for `--resume`.
//!
//! A dispatch trace is stateful in a way a sweep is not: every decision
//! depends on the history table and device residency left behind by the
//! calls before it. Resuming therefore cannot just skip finished calls —
//! it must *replay* their recorded outcomes into a fresh dispatcher
//! (route, observed compute seconds, residency effects) so the first
//! live call sees exactly the state it would have seen uninterrupted.
//! That is why each record's key includes the **route**: merging a
//! resumed run is exactly-once per (index, site, kernel, route).
//!
//! Realized/predicted seconds are persisted as exact `f64` bit patterns
//! (hex), like [`blob_core::checkpoint`], so a killed-and-resumed run is
//! byte-identical to an uninterrupted one. Files are written atomically
//! after every dispatched call, through the `checkpoint.write` fault
//! point and under a `checkpoint.save` trace span.

use crate::backend::DispatchBackend;
use crate::dispatcher::{Decision, Dispatcher, Policy, Route};
use crate::hysteresis::Hysteresis;
use crate::run::{CallRecord, RunResult};
use crate::workload::{mixed_trace, MixedTraceSpec, TraceCall};
use blob_core::advisor::Verdict;
use blob_core::atomicio::write_atomic;
use blob_core::wire::{parse_precision, precision_key, Json};
use blob_core::{fault, trace};
use blob_sim::Kernel;
use std::path::Path;

/// Current dispatch-checkpoint format version.
pub const VERSION: u64 = 1;

/// Error from loading, parsing, or keying a dispatch checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io(String),
    /// The file was not a valid dispatch checkpoint.
    Parse(String),
    /// The checkpoint belongs to a different run (system, policy, or
    /// trace spec), or its records disagree with the regenerated trace.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "dispatch checkpoint i/o: {e}"),
            CheckpointError::Parse(e) => write!(f, "dispatch checkpoint parse: {e}"),
            CheckpointError::Mismatch(e) => write!(f, "dispatch checkpoint mismatch: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// One persisted dispatched call.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointRecord {
    /// Position in the trace.
    pub index: usize,
    /// Call-site name.
    pub site: String,
    /// Kernel and dimensions.
    pub kernel: Kernel,
    /// The route taken — part of the exactly-once merge key.
    pub route: Route,
    /// Advisor verdict at decision time.
    pub verdict: Verdict,
    /// Predicted CPU seconds, bit-exact.
    pub predicted_cpu: f64,
    /// Predicted GPU seconds, bit-exact (`None` without a GPU).
    pub predicted_gpu: Option<f64>,
    /// Realized seconds on the chosen route, bit-exact.
    pub realized: f64,
    /// Compute-only seconds fed to the estimator, bit-exact (what replay
    /// re-feeds).
    pub observed: f64,
    /// Whether the route flipped on this call.
    pub flipped: bool,
    /// Whether the decision degraded to the static prior under fault.
    pub fault_fallback: bool,
}

/// A dispatch-run checkpoint: the identifying key (system, policy, and
/// the full trace spec) plus every call dispatched so far, in order.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchCheckpoint {
    /// Backend (system) name.
    pub system: String,
    /// Routing policy of the run.
    pub policy: Policy,
    /// The trace spec — with `seed`, enough to regenerate the exact trace.
    pub spec: MixedTraceSpec,
    /// True once the whole trace has been dispatched.
    pub complete: bool,
    /// Calls dispatched so far, a prefix of the trace.
    pub records: Vec<CheckpointRecord>,
}

fn bits(v: f64) -> Json {
    Json::Str(format!("{:016x}", v.to_bits()))
}

fn from_bits(j: Option<&Json>, what: &str) -> Result<f64, CheckpointError> {
    let s = j
        .and_then(Json::as_str)
        .ok_or_else(|| CheckpointError::Parse(format!("{what}: expected hex-bits string")))?;
    let raw = u64::from_str_radix(s, 16)
        .map_err(|_| CheckpointError::Parse(format!("{what}: bad hex bits {s:?}")))?;
    Ok(f64::from_bits(raw))
}

fn get_u64(doc: &Json, field: &str) -> Result<u64, CheckpointError> {
    doc.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| CheckpointError::Parse(format!("missing or non-integer `{field}`")))
}

fn get_str<'a>(doc: &'a Json, field: &str) -> Result<&'a str, CheckpointError> {
    doc.get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| CheckpointError::Parse(format!("missing or non-string `{field}`")))
}

fn kernel_to_json(k: &Kernel) -> Json {
    match *k {
        Kernel::Gemm { m, n, k } => Json::obj()
            .field("kind", "gemm")
            .field("m", m as u64)
            .field("n", n as u64)
            .field("k", k as u64)
            .build(),
        Kernel::Gemv { m, n } => Json::obj()
            .field("kind", "gemv")
            .field("m", m as u64)
            .field("n", n as u64)
            .build(),
    }
}

fn kernel_from_json(j: &Json) -> Result<Kernel, CheckpointError> {
    let kind = get_str(j, "kind")?;
    let m = get_u64(j, "m")? as usize;
    let n = get_u64(j, "n")? as usize;
    match kind {
        "gemm" => Ok(Kernel::Gemm {
            m,
            n,
            k: get_u64(j, "k")? as usize,
        }),
        "gemv" => Ok(Kernel::Gemv { m, n }),
        other => Err(CheckpointError::Parse(format!(
            "unknown kernel kind {other:?}"
        ))),
    }
}

fn record_to_json(r: &CheckpointRecord) -> Json {
    Json::obj()
        .field("index", r.index as u64)
        .field("site", r.site.as_str())
        .field("kernel", kernel_to_json(&r.kernel))
        .field("route", r.route.id())
        .field("verdict", r.verdict.id())
        .field("predicted_cpu_bits", bits(r.predicted_cpu))
        .field(
            "predicted_gpu_bits",
            match r.predicted_gpu {
                Some(g) => bits(g),
                None => Json::Null,
            },
        )
        .field("realized_bits", bits(r.realized))
        .field("observed_bits", bits(r.observed))
        .field("flip", r.flipped)
        .field("fault_fallback", r.fault_fallback)
        .build()
}

fn record_from_json(j: &Json) -> Result<CheckpointRecord, CheckpointError> {
    let route_id = get_str(j, "route")?;
    let route = Route::from_id(route_id)
        .ok_or_else(|| CheckpointError::Parse(format!("unknown route {route_id:?}")))?;
    let verdict_id = get_str(j, "verdict")?;
    let verdict = Verdict::from_id(verdict_id)
        .ok_or_else(|| CheckpointError::Parse(format!("unknown verdict {verdict_id:?}")))?;
    let predicted_gpu = match j.get("predicted_gpu_bits") {
        None | Some(Json::Null) => None,
        some => Some(from_bits(some, "predicted gpu")?),
    };
    Ok(CheckpointRecord {
        index: get_u64(j, "index")? as usize,
        site: get_str(j, "site")?.to_string(),
        kernel: kernel_from_json(
            j.get("kernel")
                .ok_or_else(|| CheckpointError::Parse("record missing `kernel`".to_string()))?,
        )?,
        route,
        verdict,
        predicted_cpu: from_bits(j.get("predicted_cpu_bits"), "predicted cpu")?,
        predicted_gpu,
        realized: from_bits(j.get("realized_bits"), "realized")?,
        observed: from_bits(j.get("observed_bits"), "observed")?,
        flipped: j.get("flip").and_then(Json::as_bool).unwrap_or(false),
        fault_fallback: j
            .get("fault_fallback")
            .and_then(Json::as_bool)
            .unwrap_or(false),
    })
}

impl DispatchCheckpoint {
    /// An empty checkpoint keyed to one run.
    pub fn new(system: &str, policy: Policy, spec: &MixedTraceSpec) -> Self {
        Self {
            system: system.to_string(),
            policy,
            spec: *spec,
            complete: false,
            records: Vec::new(),
        }
    }

    /// Whether this checkpoint belongs to the given run.
    pub fn matches(&self, system: &str, policy: Policy, spec: &MixedTraceSpec) -> bool {
        self.system == system && self.policy == policy && self.spec == *spec
    }

    /// Serialises the checkpoint to its JSON document.
    pub fn to_json_string(&self) -> String {
        let records: Vec<Json> = self.records.iter().map(record_to_json).collect();
        Json::obj()
            .field("version", VERSION)
            .field("system", self.system.as_str())
            .field("policy", self.policy.id())
            .field("seed", self.spec.seed)
            .field("calls", self.spec.calls as u64)
            .field("small_min", self.spec.small.0 as u64)
            .field("small_max", self.spec.small.1 as u64)
            .field("large_min", self.spec.large.0 as u64)
            .field("large_max", self.spec.large.1 as u64)
            .field("precision", precision_key(self.spec.precision))
            .field("gemv_every", self.spec.gemv_every as u64)
            .field("complete", self.complete)
            .field("records", Json::Arr(records))
            .build()
            .encode_pretty()
            + "\n"
    }

    /// Parses a checkpoint document.
    pub fn parse(text: &str) -> Result<Self, CheckpointError> {
        let doc = Json::parse(text).map_err(|e| CheckpointError::Parse(format!("{e:?}")))?;
        let version = get_u64(&doc, "version")?;
        if version != VERSION {
            return Err(CheckpointError::Parse(format!(
                "unsupported dispatch checkpoint version {version}"
            )));
        }
        let policy_id = get_str(&doc, "policy")?;
        let policy = Policy::from_id(policy_id)
            .ok_or_else(|| CheckpointError::Parse(format!("unknown policy {policy_id:?}")))?;
        let precision_id = get_str(&doc, "precision")?;
        let precision = parse_precision(precision_id)
            .ok_or_else(|| CheckpointError::Parse(format!("unknown precision {precision_id:?}")))?;
        let record_items = doc
            .get("records")
            .and_then(Json::as_arr)
            .ok_or_else(|| CheckpointError::Parse("missing `records` array".to_string()))?;
        let mut records = Vec::with_capacity(record_items.len());
        for r in record_items {
            records.push(record_from_json(r)?);
        }
        Ok(Self {
            system: get_str(&doc, "system")?.to_string(),
            policy,
            spec: MixedTraceSpec {
                seed: get_u64(&doc, "seed")?,
                calls: get_u64(&doc, "calls")? as usize,
                small: (
                    get_u64(&doc, "small_min")? as usize,
                    get_u64(&doc, "small_max")? as usize,
                ),
                large: (
                    get_u64(&doc, "large_min")? as usize,
                    get_u64(&doc, "large_max")? as usize,
                ),
                precision,
                gemv_every: get_u64(&doc, "gemv_every")? as usize,
            },
            complete: doc.get("complete").and_then(Json::as_bool).unwrap_or(false),
            records,
        })
    }

    /// Writes the checkpoint atomically (via [`blob_core::atomicio`]),
    /// through the `checkpoint.write` fault point and under a
    /// `checkpoint.save` trace span.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let _span = trace::span(trace::names::CHECKPOINT_SAVE, trace::cats::CHECKPOINT);
        fault::point(fault::sites::CHECKPOINT_WRITE)
            .map_err(|e| CheckpointError::Io(e.to_string()))?;
        write_atomic(path, self.to_json_string().as_bytes())
            .map_err(|e| CheckpointError::Io(e.to_string()))
    }

    /// Loads and parses a checkpoint file.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
        Self::parse(&text)
    }
}

fn checkpoint_record(index: usize, tc: &TraceCall, d: &Decision) -> CheckpointRecord {
    CheckpointRecord {
        index,
        site: tc.site.clone(),
        kernel: tc.call.kernel,
        route: d.route,
        verdict: d.verdict,
        predicted_cpu: d.predicted_cpu,
        predicted_gpu: d.predicted_gpu,
        realized: d.realized,
        observed: d.observed,
        flipped: d.flipped,
        fault_fallback: d.fault_fallback,
    }
}

fn record_decision(r: &CheckpointRecord) -> Decision {
    Decision {
        route: r.route,
        verdict: r.verdict,
        predicted_cpu: r.predicted_cpu,
        predicted_gpu: r.predicted_gpu,
        realized: r.realized,
        observed: r.observed,
        flipped: r.flipped,
        fault_fallback: r.fault_fallback,
    }
}

/// Runs the trace described by `spec` with per-call checkpointing.
///
/// If `path` holds a checkpoint for this exact run, its records are
/// verified against the regenerated trace prefix (site and kernel must
/// agree at every index — a tampered or mismatched file refuses to
/// resume) and replayed into a fresh dispatcher; dispatching then
/// continues from the first unrecorded call. The checkpoint is saved
/// atomically after every dispatched call and marked complete at the
/// end, so a resumed run merges its records exactly once and the final
/// result is bit-identical to an uninterrupted run.
pub fn run_trace_checkpointed(
    backend: &dyn DispatchBackend,
    spec: &MixedTraceSpec,
    policy: Policy,
    hysteresis: Hysteresis,
    path: &Path,
) -> Result<RunResult, CheckpointError> {
    let trace_calls = mixed_trace(spec);
    let system = backend.name();
    let mut ck = if path.exists() {
        let loaded = DispatchCheckpoint::load(path)?;
        if !loaded.matches(&system, policy, spec) {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint at {} is for system={} policy={}, not system={} policy={}",
                path.display(),
                loaded.system,
                loaded.policy.id(),
                system,
                policy.id()
            )));
        }
        loaded
    } else {
        DispatchCheckpoint::new(&system, policy, spec)
    };
    if ck.records.len() > trace_calls.len() {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint has {} records but the trace has only {} calls",
            ck.records.len(),
            trace_calls.len()
        )));
    }

    // Replay the saved prefix: verify each record against the regenerated
    // trace, then rebuild dispatcher state without re-timing anything.
    let mut dispatcher = Dispatcher::new(hysteresis);
    let mut records: Vec<CallRecord> = Vec::with_capacity(trace_calls.len());
    for (i, r) in ck.records.iter().enumerate() {
        let tc = &trace_calls[i];
        if r.index != i || r.site != tc.site || r.kernel != tc.call.kernel {
            return Err(CheckpointError::Mismatch(format!(
                "record {i} ({} {:?}) does not match the regenerated trace ({} {:?})",
                r.site, r.kernel, tc.site, tc.call.kernel
            )));
        }
        let predicted = match r.route {
            Route::Cpu => r.predicted_cpu,
            Route::Gpu => r.predicted_gpu.unwrap_or(r.predicted_cpu),
        };
        dispatcher.replay(
            backend, &r.site, &tc.call, r.route, r.observed, r.realized, predicted,
        );
        records.push(CallRecord {
            index: i,
            site: r.site.clone(),
            call: tc.call,
            decision: record_decision(r),
        });
    }

    // Continue live from the first unrecorded call.
    for (i, tc) in trace_calls.iter().enumerate().skip(ck.records.len()) {
        let decision = dispatcher.dispatch_with_policy(backend, &tc.site, &tc.call, policy);
        ck.records.push(checkpoint_record(i, tc, &decision));
        ck.complete = ck.records.len() == trace_calls.len();
        ck.save(path)?;
        records.push(CallRecord {
            index: i,
            site: tc.site.clone(),
            call: tc.call,
            decision,
        });
    }
    if !ck.complete {
        ck.complete = true;
        ck.save(path)?;
    }

    Ok(RunResult {
        policy,
        backend_name: system,
        records,
        stats: dispatcher.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{dispatch_csv, run_trace};
    use blob_sim::presets;

    fn spec() -> MixedTraceSpec {
        MixedTraceSpec {
            calls: 24,
            gemv_every: 6,
            ..MixedTraceSpec::default()
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("blob_dispatch_ck_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let sys = presets::isambard_ai();
        let path = temp_path("roundtrip.json");
        std::fs::remove_file(&path).ok();
        run_trace_checkpointed(&sys, &spec(), Policy::Auto, Hysteresis::default(), &path)
            .expect("run");
        let ck = DispatchCheckpoint::load(&path).expect("load");
        assert!(ck.complete);
        assert_eq!(ck.records.len(), spec().calls);
        let parsed = DispatchCheckpoint::parse(&ck.to_json_string()).expect("reparse");
        assert_eq!(parsed, ck);
        for (a, b) in parsed.records.iter().zip(&ck.records) {
            assert_eq!(a.realized.to_bits(), b.realized.to_bits());
            assert_eq!(a.observed.to_bits(), b.observed.to_bits());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interrupted_and_resumed_equals_uninterrupted() {
        let sys = presets::isambard_ai();
        let spec = spec();
        let path = temp_path("resume.json");
        std::fs::remove_file(&path).ok();

        // Uninterrupted reference run (no checkpoint involved).
        let trace = mixed_trace(&spec);
        let reference = run_trace(&sys, &trace, Policy::Auto, Hysteresis::default());

        // "Crash" halfway: run checkpointed, then truncate the file to a
        // half-length prefix, as if the process died mid-trace.
        run_trace_checkpointed(&sys, &spec, Policy::Auto, Hysteresis::default(), &path)
            .expect("first run");
        let mut ck = DispatchCheckpoint::load(&path).expect("load");
        ck.records.truncate(spec.calls / 2);
        ck.complete = false;
        ck.save(&path).expect("truncate");

        // Resume and compare: route sequence, realized totals, and the
        // rendered CSV must all be bit-identical to the reference.
        let resumed =
            run_trace_checkpointed(&sys, &spec, Policy::Auto, Hysteresis::default(), &path)
                .expect("resume");
        assert_eq!(resumed, reference);
        assert_eq!(dispatch_csv(&resumed), dispatch_csv(&reference));
        assert_eq!(
            resumed.stats.realized_seconds.to_bits(),
            reference.stats.realized_seconds.to_bits()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn completed_checkpoint_resumes_without_redispatching() {
        let sys = presets::isambard_ai();
        let path = temp_path("complete.json");
        std::fs::remove_file(&path).ok();
        let first =
            run_trace_checkpointed(&sys, &spec(), Policy::Auto, Hysteresis::default(), &path)
                .expect("first");
        let again =
            run_trace_checkpointed(&sys, &spec(), Policy::Auto, Hysteresis::default(), &path)
                .expect("again");
        assert_eq!(first, again, "records merge exactly once");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_key_refuses_to_resume() {
        let sys = presets::isambard_ai();
        let path = temp_path("mismatch.json");
        std::fs::remove_file(&path).ok();
        run_trace_checkpointed(&sys, &spec(), Policy::Auto, Hysteresis::default(), &path)
            .expect("seed run");
        // different policy
        let err = run_trace_checkpointed(
            &sys,
            &spec(),
            Policy::AlwaysCpu,
            Hysteresis::default(),
            &path,
        )
        .expect_err("policy mismatch");
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
        // different trace spec
        let other = MixedTraceSpec { seed: 7, ..spec() };
        let err = run_trace_checkpointed(&sys, &other, Policy::Auto, Hysteresis::default(), &path)
            .expect_err("spec mismatch");
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tampered_records_refuse_to_resume() {
        let sys = presets::isambard_ai();
        let path = temp_path("tampered.json");
        std::fs::remove_file(&path).ok();
        run_trace_checkpointed(&sys, &spec(), Policy::Auto, Hysteresis::default(), &path)
            .expect("seed run");
        let mut ck = DispatchCheckpoint::load(&path).expect("load");
        ck.records.truncate(4);
        ck.records[2].site = "someone.else".to_string();
        ck.complete = false;
        ck.save(&path).expect("tamper");
        let err = run_trace_checkpointed(&sys, &spec(), Policy::Auto, Hysteresis::default(), &path)
            .expect_err("tampered prefix");
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            DispatchCheckpoint::parse("not json"),
            Err(CheckpointError::Parse(_))
        ));
        assert!(matches!(
            DispatchCheckpoint::parse("{\"version\": 99}"),
            Err(CheckpointError::Parse(_))
        ));
    }
}
