//! # blob-dispatch — the online per-call auto-offload dispatch plane
//!
//! The paper computes offload thresholds *offline*; the TACC line of work
//! on automatic BLAS offloading (arXiv 2404.13195 and its first-touch
//! follow-up 2501.00279) shows the real win is a *per-call* dispatch layer
//! that routes each GEMM/GEMV to CPU or GPU at runtime. This crate turns
//! the workspace's offline advisor into that live decision plane:
//!
//! - [`estimator`] — a per-call-site history table (keyed by caller +
//!   shape bucket) feeding an online estimator that blends the static
//!   model prior with an EWMA of observed realized times,
//! - [`hysteresis`] — bands around the CPU/GPU crossover so routing does
//!   not flap between backends on adjacent near-threshold calls, and an
//!   explicit hold on the advisor's `Borderline` verdict,
//! - [`dispatcher`] — the cblas-style front: every call is priced on both
//!   routes (compute from the estimator, data movement from the
//!   first-touch residency model in `blob_sim::firsttouch`), routed, and
//!   its realized time fed back into the history table,
//! - [`workload`] — seeded mixed small/large call-trace generation,
//! - [`run`] — whole-trace execution under a policy (`auto`,
//!   `always-cpu`, `always-gpu`), CSV/JSON encodings with the chosen
//!   route per call, and
//! - [`checkpoint`] — crash-safe dispatch runs whose record keys include
//!   the route, so resumed runs merge exactly-once.
//!
//! The "GPU" here is modelled (this workspace has no device), so the GPU
//! route charges the calibrated kernel time plus first-touch migration of
//! whatever operand pages are cold — and the CPU route pays write-back
//! for operands a previous GPU-routed call left device-resident. That
//! ping-pong cost is exactly why the hysteresis band earns its keep.
//!
//! Decisions are traced (`dispatch.decide` / `dispatch.route` spans on
//! `blob_core::trace`) and fault-injectable (`dispatch.decide` site): an
//! injected decision fault degrades to the static advisor prior for that
//! call, never fails it.
//!
//! ```
//! use blob_dispatch::{Dispatcher, Hysteresis};
//! use blob_sim::{presets, BlasCall, Precision};
//!
//! let system = presets::isambard_ai();
//! let mut d = Dispatcher::new(Hysteresis::default());
//! let small = BlasCall::gemm(Precision::F32, 64, 64, 64);
//! let large = BlasCall::gemm(Precision::F32, 1024, 1024, 1024);
//! let a = d.dispatch(&system, "solver.small", &small);
//! let b = d.dispatch(&system, "solver.large", &large);
//! assert_eq!(a.route.id(), "cpu");
//! assert_eq!(b.route.id(), "gpu");
//! ```

pub mod backend;
pub mod checkpoint;
pub mod dispatcher;
pub mod estimator;
pub mod hysteresis;
pub mod run;
pub mod workload;

pub use backend::DispatchBackend;
pub use checkpoint::{run_trace_checkpointed, CheckpointError, DispatchCheckpoint};
pub use dispatcher::{Decision, DispatchStats, Dispatcher, Policy, Route, SampleCollector};
pub use estimator::{site_hash, Estimator, ShapeBucket};
pub use hysteresis::Hysteresis;
pub use run::{compare_policies, dispatch_csv, dispatch_json, run_trace, CallRecord, RunResult};
pub use workload::{mixed_trace, MixedTraceSpec, TraceCall};
