//! Hysteresis bands around the CPU/GPU crossover.
//!
//! A call whose predicted speedup sits near 1.0 would flap between
//! routes on adjacent calls if routed by a bare comparison — and under
//! first-touch unified memory every flap pays page migration *both*
//! ways. The band makes switching sticky: a call only leaves its current
//! route when the predicted speedup exits `[exit_gpu, enter_gpu]`, and
//! the advisor's explicit [`Verdict::Borderline`] (the 0.95–1.05 band)
//! always holds the current route regardless of the band edges.

use crate::dispatcher::Route;
use blob_core::advisor::Verdict;

/// Default speedup a CPU-routed site must predict before switching to
/// the GPU (must clear the advisor's 1.05 borderline edge with margin).
pub const DEFAULT_ENTER_GPU: f64 = 1.15;

/// Default speedup floor below which a GPU-routed site returns to the
/// CPU (mirror of [`DEFAULT_ENTER_GPU`] below the 0.95 borderline edge).
pub const DEFAULT_EXIT_GPU: f64 = 0.87;

/// Why a hysteresis band was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BandError {
    /// `enter_gpu` must be ≥ 1 ≥ `exit_gpu` and both finite and positive.
    InvalidBand {
        /// The offending `enter_gpu` value.
        enter_gpu: f64,
        /// The offending `exit_gpu` value.
        exit_gpu: f64,
    },
}

impl std::fmt::Display for BandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BandError::InvalidBand {
                enter_gpu,
                exit_gpu,
            } => write!(
                f,
                "hysteresis band requires 0 < exit_gpu <= 1 <= enter_gpu \
                 (got exit={exit_gpu}, enter={enter_gpu})"
            ),
        }
    }
}

impl std::error::Error for BandError {}

/// The sticky routing rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hysteresis {
    /// Predicted speedup needed to move CPU → GPU.
    pub enter_gpu: f64,
    /// Predicted speedup below which GPU → CPU.
    pub exit_gpu: f64,
}

impl Default for Hysteresis {
    fn default() -> Self {
        Self {
            enter_gpu: DEFAULT_ENTER_GPU,
            exit_gpu: DEFAULT_EXIT_GPU,
        }
    }
}

impl Hysteresis {
    /// A validated band: `0 < exit_gpu ≤ 1 ≤ enter_gpu`, both finite.
    pub fn new(enter_gpu: f64, exit_gpu: f64) -> Result<Self, BandError> {
        let ok = enter_gpu.is_finite()
            && exit_gpu.is_finite()
            && exit_gpu > 0.0
            && exit_gpu <= 1.0
            && enter_gpu >= 1.0;
        if !ok {
            return Err(BandError::InvalidBand {
                enter_gpu,
                exit_gpu,
            });
        }
        Ok(Self {
            enter_gpu,
            exit_gpu,
        })
    }

    /// Routes one call. `speedup` is predicted CPU-seconds over predicted
    /// GPU-seconds (> 1 means the GPU looks faster); `verdict` is the
    /// advisor's classification of that same ratio; `current` is the
    /// route this (site, bucket) took last time, if any.
    ///
    /// A [`Verdict::Borderline`] call with history always holds its
    /// current route — that is the dispatcher consuming the advisor's
    /// explicit near-threshold band. Otherwise the band applies: leave
    /// the current route only when the ratio clears the far edge.
    pub fn decide(&self, speedup: f64, verdict: Verdict, current: Option<Route>) -> Route {
        match current {
            None => {
                // First sighting of this (site, bucket): no flip cost to
                // avoid yet, so take the better predicted side.
                if speedup > 1.0 {
                    Route::Gpu
                } else {
                    Route::Cpu
                }
            }
            Some(cur) => {
                if verdict == Verdict::Borderline {
                    return cur;
                }
                match cur {
                    Route::Gpu if speedup < self.exit_gpu => Route::Cpu,
                    Route::Cpu if speedup > self.enter_gpu => Route::Gpu,
                    _ => cur,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict_for(speedup: f64) -> Verdict {
        match speedup {
            s if s >= 2.0 => Verdict::Offload,
            s if s > 1.05 => Verdict::Marginal,
            s if s > 0.95 => Verdict::Borderline,
            _ => Verdict::StayOnCpu,
        }
    }

    #[test]
    fn default_band_brackets_the_borderline_band() {
        let h = Hysteresis::default();
        assert!(h.exit_gpu < 0.95 && h.enter_gpu > 1.05);
    }

    #[test]
    fn invalid_bands_are_rejected() {
        assert!(Hysteresis::new(0.9, 0.8).is_err(), "enter below 1");
        assert!(Hysteresis::new(1.2, 1.1).is_err(), "exit above 1");
        assert!(Hysteresis::new(1.2, 0.0).is_err(), "exit not positive");
        assert!(Hysteresis::new(f64::NAN, 0.9).is_err(), "non-finite");
        assert!(
            Hysteresis::new(1.0, 1.0).is_ok(),
            "degenerate band is legal"
        );
    }

    #[test]
    fn first_sighting_takes_the_better_side() {
        let h = Hysteresis::default();
        assert_eq!(h.decide(1.01, verdict_for(1.01), None), Route::Gpu);
        assert_eq!(h.decide(0.99, verdict_for(0.99), None), Route::Cpu);
    }

    #[test]
    fn inside_the_band_the_current_route_holds() {
        let h = Hysteresis::default();
        for &r in &[Route::Cpu, Route::Gpu] {
            for &s in &[0.9, 0.96, 1.0, 1.04, 1.1] {
                assert_eq!(h.decide(s, verdict_for(s), Some(r)), r, "s={s} r={r:?}");
            }
        }
    }

    #[test]
    fn clearing_the_far_edge_switches() {
        let h = Hysteresis::default();
        assert_eq!(
            h.decide(1.2, verdict_for(1.2), Some(Route::Cpu)),
            Route::Gpu
        );
        assert_eq!(
            h.decide(0.8, verdict_for(0.8), Some(Route::Gpu)),
            Route::Cpu
        );
    }

    #[test]
    fn borderline_verdict_holds_even_with_a_degenerate_band() {
        // with enter == exit == 1.0 the band alone would flap; the
        // explicit Borderline hold must still pin the route
        let h = Hysteresis::new(1.0, 1.0).expect("degenerate band");
        assert_eq!(
            h.decide(1.04, Verdict::Borderline, Some(Route::Cpu)),
            Route::Cpu
        );
        assert_eq!(
            h.decide(0.96, Verdict::Borderline, Some(Route::Gpu)),
            Route::Gpu
        );
    }
}
