//! `gpu-blob` — command-line driver for the GPU BLAS Offload Benchmark.
//!
//! Sweeps the selected problem types over `[s, d]` on the selected backend
//! (a calibrated model of DAWN / LUMI / Isambard-AI, or real measurement of
//! this repo's kernels on the host CPU), prints the offload-threshold table
//! to stdout like the artifact does, and optionally writes the raw
//! per-problem-type CSVs.
//!
//! ```text
//! gpu-blob --system isambard-ai -i 1,8,32,64,128 -s 1 -d 4096 --step 4
//! gpu-blob --system host --problem gemm_square -d 256 --plot
//! ```

mod args;

use args::{
    parse_command, Args, Command, DispatchArgs, ServeArgs, SystemChoice, DISPATCH_USAGE,
    SERVE_USAGE, USAGE,
};
use blob_analysis::{ascii_chart, sd_pair_cell, Series, Table};
use blob_core::backend::{Backend, HostCpu};
use blob_core::csv::write_to_dir;
use blob_core::custom_runner::run_custom_sweep;
use blob_core::fault;
use blob_core::problem::Problem;
use blob_core::runner::{run_sweep, run_sweep_checkpointed, SweepConfig};
use blob_core::trace;
use blob_core::validate_call;
use blob_core::wire::{self, Json};
use blob_dispatch::{
    compare_policies, dispatch_csv, dispatch_json, mixed_trace, run_trace, run_trace_checkpointed,
    DispatchCheckpoint, Hysteresis, MixedTraceSpec, RunResult,
};
use blob_sim::{presets, Offload, Precision};
use std::time::Duration;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let serving = argv.first().map(String::as_str) == Some("serve");
    let command = match parse_command(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", if serving { SERVE_USAGE } else { USAGE });
            std::process::exit(2);
        }
    };
    let fault_spec = match &command {
        Command::Serve(a) => a.fault_plan.clone(),
        Command::Dispatch(a) => a.fault_plan.clone(),
        Command::Sweep(a) | Command::Profile(a) => a.fault_plan.clone(),
    };
    install_fault_plan(fault_spec.as_deref());
    match command {
        Command::Serve(args) => {
            if args.help {
                println!("{SERVE_USAGE}");
                return;
            }
            serve(&args);
        }
        Command::Sweep(args) => {
            if args.help {
                println!("{USAGE}");
                return;
            }
            if args.list_problems {
                println!("{:<20} definition", "id");
                for p in Problem::all() {
                    println!("{:<20} {}", p.id(), p.label());
                }
                return;
            }
            if let Some(path) = args.trace.clone() {
                run_traced(&args, &path);
            } else {
                run(&args);
            }
        }
        Command::Dispatch(args) => {
            if args.help {
                println!("{DISPATCH_USAGE}");
                return;
            }
            if let Some(path) = args.trace.clone() {
                trace::enable();
                run_dispatch(&args);
                write_trace_dump(&path);
            } else {
                run_dispatch(&args);
            }
        }
        Command::Profile(args) => {
            if args.help {
                println!("{USAGE}");
                return;
            }
            run_profiled(&args);
        }
    }
}

/// The `--trace FILE` path: arms the trace plane, runs the sweep exactly
/// as `run` would, then writes every recorded span as a chrome://tracing
/// JSON document (load it at `chrome://tracing` or in Perfetto).
fn run_traced(args: &Args, path: &std::path::Path) {
    trace::enable();
    run(args);
    write_trace_dump(path);
}

/// Drains the armed trace plane and writes the spans as a
/// chrome://tracing JSON document — the shared tail of every `--trace`
/// mode (sweep and dispatch).
fn write_trace_dump(path: &std::path::Path) {
    let spans = trace::take();
    let dropped = trace::dropped();
    trace::disable();
    let doc = trace::chrome_trace_json(&spans);
    if let Err(e) = std::fs::write(path, doc) {
        eprintln!("error: cannot write trace to {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!(
        "wrote {} span(s) to {}{}",
        spans.len(),
        path.display(),
        if dropped > 0 {
            format!(" ({dropped} dropped at the sink cap)")
        } else {
            String::new()
        }
    );
}

/// The `profile` subcommand: runs the sweep with tracing armed and prints
/// the aggregated per-span-name profile (count, total/self time, p50/p99)
/// instead of shipping the raw spans anywhere.
fn run_profiled(args: &Args) {
    trace::enable();
    run(args);
    let spans = trace::take();
    let dropped = trace::dropped();
    trace::disable();
    println!("{}", trace::render_profile(&trace::profile(&spans)));
    if dropped > 0 {
        eprintln!("note: {dropped} span(s) dropped at the sink cap; totals are a lower bound");
    }
}

/// Installs the deterministic fault plan, if any: `--fault-plan` wins over
/// the `GPU_BLOB_FAULTS` environment variable. A spec that does not parse
/// is a usage error (exit 2) — a typo must not silently disable chaos.
fn install_fault_plan(explicit: Option<&str>) {
    let installed = match explicit {
        Some(spec) => fault::Plan::parse(spec).map(|plan| {
            fault::install(&plan);
            true
        }),
        None => fault::install_from_env(),
    };
    match installed {
        Ok(true) => eprintln!("gpu-blob: fault plan installed (chaos mode)"),
        Ok(false) => {}
        Err(e) => {
            eprintln!("error: bad fault plan: {e}");
            std::process::exit(2);
        }
    }
}

/// Runs the advisor service until it is shut down (`POST /shutdown` when
/// enabled, or the process is killed).
fn serve(args: &ServeArgs) {
    let cfg = blob_serve::Config {
        addr: args.addr.clone(),
        threads: args.threads,
        cache_entries: args.cache_entries,
        allow_shutdown: args.allow_shutdown,
        deadline: Duration::from_millis(args.deadline_ms),
        ..blob_serve::Config::default()
    };
    let server = match blob_serve::Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    // Stdout is line-buffered, so this line is immediately visible to a
    // parent process parsing the bound (possibly ephemeral) port.
    println!("listening on {}", server.local_addr());
    println!(
        "endpoints: POST /v1/advise | POST /v1/threshold | POST /v1/dispatch | \
         GET /v1/systems | GET /v1/healthz | GET /v1/metrics | GET /v1/trace"
    );
    server.join();
    println!("server stopped");
}

/// Builds the modelled system the dispatch trace runs on. `host` is
/// rejected again here (argument validation already refuses it) so the
/// driver degrades to a clean error even if a new call path skips
/// `parse_dispatch`.
fn dispatch_system(args: &DispatchArgs) -> blob_sim::SystemModel {
    let sys = match args.system {
        SystemChoice::Dawn => presets::dawn(),
        SystemChoice::Lumi => presets::lumi(),
        SystemChoice::IsambardAi => presets::isambard_ai(),
        SystemChoice::Host => {
            eprintln!(
                "error: dispatch prices a modelled GPU route; --system host has none \
                 (use dawn, lumi, or isambard-ai)"
            );
            std::process::exit(1);
        }
    };
    match args.noise {
        Some(amp) => sys.with_noise(args.seed, amp),
        None => sys,
    }
}

fn dispatch_spec(args: &DispatchArgs) -> MixedTraceSpec {
    MixedTraceSpec {
        seed: args.seed,
        calls: args.calls,
        precision: args.precision,
        gemv_every: args.gemv_every,
        ..MixedTraceSpec::default()
    }
}

/// The `dispatch` subcommand: routes a seeded mixed trace per call
/// through the online estimator + hysteresis plane and reports realized
/// vs predicted seconds — for one `--policy`, or (default) comparing
/// `auto` against both static policies on the same trace.
fn run_dispatch(args: &DispatchArgs) {
    let system = dispatch_system(args);
    let spec = dispatch_spec(args);
    if let Some(ck) = args.checkpoint.clone() {
        run_dispatch_checkpointed(args, &system, &spec, &ck);
        return;
    }
    let trace_calls = mixed_trace(&spec);
    let results = match args.policy {
        Some(policy) => vec![run_trace(
            &system,
            &trace_calls,
            policy,
            Hysteresis::default(),
        )],
        None => compare_policies(&system, &trace_calls, Hysteresis::default()),
    };
    emit_dispatch(args, &results);
}

/// The `dispatch --checkpoint` path: one policy, persisted atomically
/// after every dispatched call; `--resume` replays the recorded prefix
/// (keyed by index, site, kernel, and route) so the finished run is
/// bit-identical to an uninterrupted one.
fn run_dispatch_checkpointed(
    args: &DispatchArgs,
    system: &blob_sim::SystemModel,
    spec: &MixedTraceSpec,
    path: &std::path::Path,
) {
    let Some(policy) = args.policy else {
        // `parse_dispatch` refuses --checkpoint without --policy, so this
        // only fires if a new call path constructs DispatchArgs by hand.
        eprintln!("error: --checkpoint requires --policy auto|always-cpu|always-gpu");
        std::process::exit(1);
    };
    if path.exists() && !args.resume {
        eprintln!(
            "error: checkpoint {} already exists; pass --resume to continue it",
            path.display()
        );
        std::process::exit(1);
    }
    let resumed = if args.resume && path.exists() {
        match DispatchCheckpoint::load(path) {
            Ok(ck) => ck.records.len(),
            Err(e) => {
                eprintln!("error: cannot resume from {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    } else {
        0
    };
    let result = match run_trace_checkpointed(system, spec, policy, Hysteresis::default(), path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: checkpointed dispatch failed: {e}");
            std::process::exit(1);
        }
    };
    if resumed > 0 {
        eprintln!(
            "resumed {} of {} call(s) from {}",
            resumed,
            result.records.len(),
            path.display()
        );
    }
    emit_dispatch(args, &[result]);
}

/// Emits dispatch results: per-policy route CSVs (`--output`), one JSON
/// document with the route per call (`--json`), or the summary table
/// with a winner line in compare mode.
fn emit_dispatch(args: &DispatchArgs, results: &[RunResult]) {
    if let Some(dir) = &args.output {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
        for r in results {
            let slug: String = r
                .backend_name
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '-'
                    }
                })
                .collect();
            let path = dir.join(format!("dispatch_{slug}_{}.csv", r.policy.id()));
            if let Err(e) = blob_core::atomicio::write_atomic(&path, dispatch_csv(r).as_bytes()) {
                eprintln!("error: cannot write CSV {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("wrote {}", path.display());
        }
    }
    if args.json {
        let doc = Json::obj()
            .field("system", results[0].backend_name.as_str())
            .field("seed", args.seed)
            .field("calls", args.calls as u64)
            .field(
                "runs",
                Json::Arr(results.iter().map(dispatch_json).collect()),
            )
            .build();
        println!("{}", doc.encode_pretty());
        return;
    }
    println!(
        "GPU-BLOB dispatch | system: {} | {} call(s) | seed {}",
        results[0].backend_name, args.calls, args.seed
    );
    println!(
        "{:<12} {:>5} {:>5} {:>6} {:>7} {:>14} {:>14}",
        "policy", "cpu", "gpu", "flips", "faults", "realized (ms)", "predicted (ms)"
    );
    for r in results {
        let s = &r.stats;
        println!(
            "{:<12} {:>5} {:>5} {:>6} {:>7} {:>14.4} {:>14.4}",
            r.policy.id(),
            s.cpu_calls,
            s.gpu_calls,
            s.flips,
            s.fault_fallbacks,
            s.realized_seconds * 1e3,
            s.predicted_seconds * 1e3,
        );
    }
    if results.len() == 3 {
        let auto = &results[0].stats;
        let cpu = &results[1].stats;
        let gpu = &results[2].stats;
        if auto.realized_seconds < cpu.realized_seconds
            && auto.realized_seconds < gpu.realized_seconds
        {
            println!(
                "\nauto wins: {:.4} ms vs always-cpu {:.4} ms ({:.2}x) \
                 and always-gpu {:.4} ms ({:.2}x)",
                auto.realized_seconds * 1e3,
                cpu.realized_seconds * 1e3,
                cpu.realized_seconds / auto.realized_seconds,
                gpu.realized_seconds * 1e3,
                gpu.realized_seconds / auto.realized_seconds,
            );
        } else {
            println!("\nauto did NOT beat both static policies on this trace");
        }
    }
}

fn run(args: &Args) {
    let host;
    let dawn;
    let lumi;
    let isam;
    let backend: &dyn Backend = match args.system {
        SystemChoice::Host => {
            host = match args.threads {
                Some(t) => HostCpu::with_threads(t),
                None => HostCpu::default(),
            };
            &host
        }
        SystemChoice::Dawn => {
            dawn = presets::dawn();
            &dawn
        }
        SystemChoice::Lumi => {
            lumi = presets::lumi();
            &lumi
        }
        SystemChoice::IsambardAi => {
            isam = presets::isambard_ai();
            &isam
        }
    };

    // --checkpoint pins the invocation to a single sweep (enforced at
    // argument validation) and takes the crash-safe path.
    if let Some(ckpt_path) = args.checkpoint.clone() {
        run_checkpointed(args, backend, &ckpt_path);
        return;
    }

    // --custom alone runs only the custom families; otherwise default to
    // the artifact's full 14 problem types
    let problems = if args.problems.is_empty() && args.customs.is_empty() {
        Problem::all()
    } else {
        args.problems.clone()
    };
    let precisions: Vec<Precision> = if args.precisions.is_empty() {
        Precision::ALL.to_vec()
    } else {
        args.precisions.clone()
    };

    if args.json {
        run_json(args, backend, &problems, &precisions);
        return;
    }

    println!("GPU-BLOB | system: {}", backend.name());
    println!(
        "dims [{}, {}] step {} | iterations {:?} | {} problem type(s)\n",
        args.min_dim,
        args.max_dim,
        args.step,
        args.iterations,
        problems.len()
    );

    let offloads = backend.offloads();
    for problem in &problems {
        let headers: Vec<String> = std::iter::once("Iterations".to_string())
            .chain(offloads.iter().map(|o| o.label().to_string()))
            .collect();
        let mut table = Table::new(
            format!("{} — offload thresholds (S : D)", problem.label()),
            &headers.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        for &iters in &args.iterations {
            let cfg = SweepConfig::new(args.min_dim, args.max_dim, iters).with_step(args.step);
            let mut sweeps = Vec::new();
            for &precision in &precisions {
                sweeps.push(run_sweep(backend, *problem, precision, &cfg));
            }
            let mut row = vec![iters.to_string()];
            for &o in &offloads {
                let get = |prec: Precision| {
                    sweeps
                        .iter()
                        .find(|s| s.precision == prec)
                        .and_then(|s| threshold_param_of(s, o))
                };
                row.push(sd_pair_cell(get(Precision::F32), get(Precision::F64)));
            }
            if !offloads.is_empty() {
                table.push_row(row);
            }

            if args.plot {
                for sweep in &sweeps {
                    let mut series = vec![Series::from_usize("CPU", &sweep.cpu_series())];
                    for &o in &offloads {
                        series.push(Series::from_usize(
                            format!("GPU {}", o.label()),
                            &sweep.gpu_series(o),
                        ));
                    }
                    let title = format!(
                        "{} {} ({} iterations) on {}",
                        sweep.precision,
                        problem.label(),
                        iters,
                        backend.name()
                    );
                    println!("{}", ascii_chart(&title, &series, 90, 16));
                }
            }
            if let Some(dir) = &args.output {
                for sweep in &sweeps {
                    write_csv_or_die(dir, sweep);
                }
            }
        }
        if offloads.is_empty() {
            println!(
                "{} — CPU-only backend: no offload thresholds (CSV/plots still available)\n",
                problem.label()
            );
        } else {
            println!("{}", table.render());
        }

        if args.validate {
            let p = problem.max_param(args.max_dim.min(128)).max(1);
            for &precision in &precisions {
                let call = blob_core::runner::call_for(
                    *problem,
                    precision,
                    p,
                    &SweepConfig::new(args.min_dim, args.max_dim, 1),
                );
                let rep = validate_call(&call, 0xB10B);
                println!(
                    "validate {} {:?}: rel err {:.2e} -> {}",
                    call.routine(),
                    call.kernel.dims(),
                    rep.rel_err,
                    if rep.ok { "OK" } else { "FAIL" }
                );
            }
            println!();
        }
    }

    // user-defined problem families
    for custom in &args.customs {
        let headers: Vec<String> = std::iter::once("Iterations".to_string())
            .chain(offloads.iter().map(|o| o.label().to_string()))
            .collect();
        let mut table = Table::new(
            format!("{} — offload thresholds (S : D)", custom.name),
            &headers.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        for &iters in &args.iterations {
            let cfg = SweepConfig::new(args.min_dim, args.max_dim, iters).with_step(args.step);
            let sweeps: Vec<_> = precisions
                .iter()
                .map(|&precision| run_custom_sweep(backend, custom, precision, &cfg))
                .collect();
            let mut row = vec![iters.to_string()];
            for &o in &offloads {
                let get = |prec: Precision| {
                    sweeps.iter().find(|s| s.precision == prec).and_then(|s| {
                        let t = s.threshold(o)?;
                        s.records.iter().find(|r| r.kernel == t).map(|r| r.param)
                    })
                };
                row.push(sd_pair_cell(get(Precision::F32), get(Precision::F64)));
            }
            if !offloads.is_empty() {
                table.push_row(row);
            }
        }
        if offloads.is_empty() {
            println!(
                "{} — CPU-only backend: no offload thresholds\n",
                custom.name
            );
        } else {
            println!("{}", table.render());
        }
    }
}

/// Writes one sweep's CSV, surfacing the error instead of panicking: a
/// result file the harness could not produce must fail the run visibly.
fn write_csv_or_die(dir: &std::path::Path, sweep: &blob_core::runner::Sweep) {
    match write_to_dir(dir, sweep) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: cannot write CSV into {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
}

/// The `--checkpoint` path: one sweep, persisted atomically after every
/// measured size, optionally resumed (`--resume`) and watched
/// (`--size-budget-ms`). Output matches the normal single-sweep run.
fn run_checkpointed(args: &Args, backend: &dyn Backend, ckpt_path: &std::path::Path) {
    let problem = args.problems[0];
    let precision = args.precisions[0];
    let iters = args.iterations[0];
    let cfg = SweepConfig::new(args.min_dim, args.max_dim, iters).with_step(args.step);
    let budget = args.size_budget_ms.map(Duration::from_millis);
    let run = match run_sweep_checkpointed(
        backend,
        problem,
        precision,
        &cfg,
        ckpt_path,
        args.resume,
        budget,
    ) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: checkpointed sweep failed: {e}");
            std::process::exit(1);
        }
    };
    if run.resumed > 0 {
        eprintln!(
            "resumed {} of {} sizes from {}",
            run.resumed,
            run.sweep.records.len(),
            ckpt_path.display()
        );
    }
    if run.watchdog_stalls > 0 {
        eprintln!(
            "watchdog: {} size measurement(s) exceeded the {} ms budget",
            run.watchdog_stalls,
            args.size_budget_ms.unwrap_or(0)
        );
    }
    let sweep = run.sweep;
    if let Some(dir) = &args.output {
        write_csv_or_die(dir, &sweep);
    }
    if args.json {
        let doc = Json::obj()
            .field("system", backend.name())
            .field("min_dim", args.min_dim)
            .field("max_dim", args.max_dim)
            .field("step", args.step)
            .field("resumed", run.resumed as u64)
            .field("watchdog_stalls", run.watchdog_stalls)
            .field("sweeps", Json::Arr(vec![wire::sweep_json(&sweep)]))
            .build();
        println!("{}", doc.encode_pretty());
        return;
    }
    let offloads = backend.offloads();
    if offloads.is_empty() {
        println!(
            "{} — CPU-only backend: no offload thresholds (CSV still available)",
            problem.label()
        );
        return;
    }
    let headers: Vec<String> = std::iter::once("Iterations".to_string())
        .chain(offloads.iter().map(|o| o.label().to_string()))
        .collect();
    let mut table = Table::new(
        format!("{} — offload thresholds ({})", problem.label(), precision),
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let mut row = vec![iters.to_string()];
    for &o in &offloads {
        row.push(
            threshold_param_of(&sweep, o)
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".to_string()),
        );
    }
    table.push_row(row);
    println!("{}", table.render());
}

/// The `--json` output mode: the whole run as one document on stdout,
/// through the shared wire encoder — nothing else is printed there, so the
/// output pipes straight into `jq` or back into `wire::Json::parse`.
fn run_json(args: &Args, backend: &dyn Backend, problems: &[Problem], precisions: &[Precision]) {
    let mut sweeps = Vec::new();
    for problem in problems {
        for &iters in &args.iterations {
            let cfg = SweepConfig::new(args.min_dim, args.max_dim, iters).with_step(args.step);
            for &precision in precisions {
                let sweep = run_sweep(backend, *problem, precision, &cfg);
                if let Some(dir) = &args.output {
                    write_csv_or_die(dir, &sweep);
                }
                sweeps.push(wire::sweep_json(&sweep));
            }
        }
    }
    for custom in &args.customs {
        for &iters in &args.iterations {
            let cfg = SweepConfig::new(args.min_dim, args.max_dim, iters).with_step(args.step);
            for &precision in precisions {
                let sweep = run_custom_sweep(backend, custom, precision, &cfg);
                sweeps.push(wire::custom_sweep_json(&sweep));
            }
        }
    }
    let mut doc = Json::obj()
        .field("system", backend.name())
        .field("min_dim", args.min_dim)
        .field("max_dim", args.max_dim)
        .field("step", args.step)
        .field("sweeps", Json::Arr(sweeps));
    if args.validate {
        let mut checks = Vec::new();
        for problem in problems {
            let p = problem.max_param(args.max_dim.min(128)).max(1);
            for &precision in precisions {
                let call = blob_core::runner::call_for(
                    *problem,
                    precision,
                    p,
                    &SweepConfig::new(args.min_dim, args.max_dim, 1),
                );
                let rep = validate_call(&call, 0xB10B);
                checks.push(
                    Json::obj()
                        .field("call", wire::call_json(&call))
                        .field("rel_err", rep.rel_err)
                        .field("ok", rep.ok)
                        .build(),
                );
            }
        }
        doc = doc.field("validation", Json::Arr(checks));
    }
    println!("{}", doc.build().encode_pretty());
}

/// Maps a sweep's threshold back to its size parameter for compact cells.
fn threshold_param_of(sweep: &blob_core::runner::Sweep, offload: Offload) -> Option<usize> {
    let t = sweep.threshold(offload)?;
    sweep
        .records
        .iter()
        .find(|r| r.kernel == t)
        .map(|r| r.param)
}
