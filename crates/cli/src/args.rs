//! Hand-rolled argument parsing for the `gpu-blob` binary, mirroring the
//! artifact's interface (`-i <iters> -s <min> -d <max>`) with additions for
//! the modelled systems and output control.

use blob_core::problem::Problem;
use blob_dispatch::Policy;
use blob_sim::Precision;

/// A command-line the binary cannot act on: which argument broke, and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// A flag that needs a value was the last token.
    MissingValue {
        /// The flag, e.g. `-i`.
        flag: &'static str,
    },
    /// A flag's value failed to parse.
    BadValue {
        /// The flag, e.g. `--step`.
        flag: &'static str,
        /// The offending value text.
        text: String,
    },
    /// `--system` named no known system.
    UnknownSystem(String),
    /// `--problem` named no known problem-type id.
    UnknownProblem(String),
    /// `--precision` was neither f32 nor f64.
    UnknownPrecision(String),
    /// A `--custom` spec did not parse.
    BadCustomSpec {
        /// The spec text as given.
        spec: String,
        /// Parser's explanation.
        reason: String,
    },
    /// An argument matched no known flag.
    UnknownArgument(String),
    /// Arguments parsed individually but are inconsistent together.
    InvalidCombination(&'static str),
}

impl std::fmt::Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgsError::MissingValue { flag } => write!(f, "{flag} requires a value"),
            ArgsError::BadValue { flag, text } => write!(f, "bad {flag} value: {text:?}"),
            ArgsError::UnknownSystem(s) => write!(
                f,
                "unknown system '{s}' (expected dawn, lumi, isambard-ai or host)"
            ),
            ArgsError::UnknownProblem(s) => {
                write!(f, "unknown problem id '{s}' (see --list-problems)")
            }
            ArgsError::UnknownPrecision(s) => write!(f, "unknown precision '{s}'"),
            ArgsError::BadCustomSpec { spec, reason } => {
                write!(f, "bad --custom spec '{spec}': {reason}")
            }
            ArgsError::UnknownArgument(s) => write!(f, "unknown argument '{s}' (try --help)"),
            ArgsError::InvalidCombination(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ArgsError {}

/// Which backend times the calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemChoice {
    /// Calibrated model of the DAWN system (Intel GPUs, oneMKL).
    Dawn,
    /// Calibrated model of LUMI (AMD GPUs, hipBLAS).
    Lumi,
    /// Calibrated model of Isambard-AI (Grace-Hopper, cuBLAS).
    IsambardAi,
    /// Real wall-clock measurement of this repo's kernels on the host CPU.
    Host,
}

impl SystemChoice {
    /// Parses a `--system` value (case-insensitive, with aliases).
    pub fn parse(s: &str) -> Result<Self, ArgsError> {
        match s.to_ascii_lowercase().as_str() {
            "dawn" => Ok(SystemChoice::Dawn),
            "lumi" => Ok(SystemChoice::Lumi),
            "isambard-ai" | "isambard" | "isambardai" => Ok(SystemChoice::IsambardAi),
            "host" => Ok(SystemChoice::Host),
            other => Err(ArgsError::UnknownSystem(other.to_string())),
        }
    }
}

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Args {
    /// Iteration counts to run (`-i`, repeatable/comma-separated).
    pub iterations: Vec<u32>,
    /// Minimum dimension (`-s`).
    pub min_dim: usize,
    /// Maximum dimension (`-d`).
    pub max_dim: usize,
    /// Sweep stride over the size parameter.
    pub step: usize,
    pub system: SystemChoice,
    /// Problems to run (`--problem <id>`, repeatable); empty = all 14.
    pub problems: Vec<Problem>,
    /// Custom problem families (`--custom <spec>`, repeatable).
    pub customs: Vec<blob_core::CustomProblem>,
    /// Precisions to run; empty = both.
    pub precisions: Vec<Precision>,
    /// Directory for CSV output; `None` = no CSVs.
    pub output: Option<std::path::PathBuf>,
    /// Run checksum validation at a sample size per problem type.
    pub validate: bool,
    /// Print an ASCII performance chart per sweep.
    pub plot: bool,
    /// Emit the whole run as one JSON document on stdout instead of tables.
    pub json: bool,
    /// Host threads (host backend only).
    pub threads: Option<usize>,
    /// Fault-plan spec (`--fault-plan`), overriding `GPU_BLOB_FAULTS`.
    pub fault_plan: Option<String>,
    /// Checkpoint file for crash-safe sweeps (`--checkpoint`).
    pub checkpoint: Option<std::path::PathBuf>,
    /// Resume from an existing checkpoint (`--resume`).
    pub resume: bool,
    /// Watchdog budget per measured size in ms (`--size-budget-ms`).
    pub size_budget_ms: Option<u64>,
    /// Write a chrome://tracing span dump of the run (`--trace <FILE>`).
    pub trace: Option<std::path::PathBuf>,
    pub help: bool,
    pub list_problems: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            iterations: vec![1],
            min_dim: 1,
            max_dim: 1024,
            step: 1,
            system: SystemChoice::IsambardAi,
            problems: vec![],
            customs: vec![],
            precisions: vec![],
            output: None,
            validate: false,
            plot: false,
            json: false,
            threads: None,
            fault_plan: None,
            checkpoint: None,
            resume: false,
            size_budget_ms: None,
            trace: None,
            help: false,
            list_problems: false,
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
gpu-blob — the GPU BLAS Offload Benchmark (Rust reproduction)

USAGE:
    gpu-blob [OPTIONS]
    gpu-blob serve [OPTIONS]     run the advisor as an HTTP service
                                 (see gpu-blob serve --help)
    gpu-blob dispatch [OPTIONS]  route a seeded mixed GEMM/GEMV trace
                                 per-call through the online dispatcher
                                 (see gpu-blob dispatch --help)
    gpu-blob profile [OPTIONS]   run a traced sweep (same options as the
                                 classic run) and print a per-span profile
                                 (call counts, total/self time, p50/p99)

OPTIONS:
    -i <N[,N...]>        iteration counts (default: 1; paper: 1,8,32,64,128)
    -s <N>               minimum dimension (default: 1)
    -d <N>               maximum dimension (default: 1024; paper: 4096)
    --step <N>           sweep stride over the size parameter (default: 1)
    --system <NAME>      dawn | lumi | isambard-ai | host (default: isambard-ai)
                         the three names select calibrated models of the
                         paper's systems; 'host' measures this machine's CPU
    --problem <ID>       run one problem type (repeatable; default: all 14)
    --custom <SPEC>      run a custom family, e.g. gemm:p,p,16p or gemv:32,p
                         (dims: <f>p scaled, p/<d> ratio, <n> fixed)
    --precision <P>      f32 | f64 (repeatable; default: both)
    --output <DIR>       write per-problem-type CSVs (artifact layout)
    --threads <N>        host backend thread count
    --validate           checksum-validate CPU vs GPU kernel paths
    --plot               print an ASCII GFLOP/s chart per sweep
    --json               emit the whole run as one JSON document on stdout
                         (incompatible with --plot)
    --checkpoint <FILE>  persist the sweep after every size (atomic write);
                         requires exactly one problem, precision, and
                         iteration count
    --resume             continue from --checkpoint's file; the finished
                         sweep is byte-identical to an uninterrupted run
    --size-budget-ms <N> watchdog: flag any size measurement exceeding N ms
                         (never kills it; reported on stderr and counted)
    --trace <FILE>       record spans (sweep sizes, pool jobs, pack/compute
                         phases) and write a chrome://tracing JSON dump;
                         open it at chrome://tracing or ui.perfetto.dev
    --fault-plan <SPEC>  install a deterministic fault plan (chaos testing;
                         overrides GPU_BLOB_FAULTS), e.g.
                         'seed=7;csv.write:error@0.5x2'
    --list-problems      list problem-type ids and definitions
    -h, --help           this help
";

fn parse_list<T: std::str::FromStr>(v: &str, flag: &'static str) -> Result<Vec<T>, ArgsError> {
    v.split(',')
        .map(|p| {
            p.trim().parse::<T>().map_err(|_| ArgsError::BadValue {
                flag,
                text: p.trim().to_string(),
            })
        })
        .collect()
}

fn parse_value<T: std::str::FromStr>(v: &str, flag: &'static str) -> Result<T, ArgsError> {
    v.parse().map_err(|_| ArgsError::BadValue {
        flag,
        text: v.to_string(),
    })
}

/// Parses a problem-type id (as printed by `--list-problems`).
pub fn parse_problem(id: &str) -> Result<Problem, ArgsError> {
    Problem::all()
        .into_iter()
        .find(|p| p.id() == id)
        .ok_or_else(|| ArgsError::UnknownProblem(id.to_string()))
}

/// Parses the full argument vector (without argv[0]).
pub fn parse(argv: &[String]) -> Result<Args, ArgsError> {
    let mut args = Args::default();
    let mut it = argv.iter().peekable();
    let next_value = |flag: &'static str,
                      it: &mut std::iter::Peekable<std::slice::Iter<String>>| {
        it.next().cloned().ok_or(ArgsError::MissingValue { flag })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-i" => args.iterations = parse_list(&next_value("-i", &mut it)?, "-i")?,
            "-s" => args.min_dim = parse_value(&next_value("-s", &mut it)?, "-s")?,
            "-d" => args.max_dim = parse_value(&next_value("-d", &mut it)?, "-d")?,
            "--step" => args.step = parse_value(&next_value("--step", &mut it)?, "--step")?,
            "--system" => args.system = SystemChoice::parse(&next_value("--system", &mut it)?)?,
            "--problem" => args
                .problems
                .push(parse_problem(&next_value("--problem", &mut it)?)?),
            "--custom" => {
                let spec = next_value("--custom", &mut it)?;
                let custom = blob_core::CustomProblem::parse(&spec).map_err(|reason| {
                    ArgsError::BadCustomSpec {
                        spec: spec.clone(),
                        reason,
                    }
                })?;
                args.customs.push(custom);
            }
            "--precision" => {
                let v = next_value("--precision", &mut it)?;
                match v.to_ascii_lowercase().as_str() {
                    "f32" | "s" | "single" => args.precisions.push(Precision::F32),
                    "f64" | "d" | "double" => args.precisions.push(Precision::F64),
                    other => return Err(ArgsError::UnknownPrecision(other.to_string())),
                }
            }
            "--output" => args.output = Some(next_value("--output", &mut it)?.into()),
            "--threads" => {
                args.threads = Some(parse_value(
                    &next_value("--threads", &mut it)?,
                    "--threads",
                )?)
            }
            "--validate" => args.validate = true,
            "--plot" => args.plot = true,
            "--json" => args.json = true,
            "--fault-plan" => args.fault_plan = Some(next_value("--fault-plan", &mut it)?),
            "--checkpoint" => args.checkpoint = Some(next_value("--checkpoint", &mut it)?.into()),
            "--resume" => args.resume = true,
            "--size-budget-ms" => {
                args.size_budget_ms = Some(parse_value(
                    &next_value("--size-budget-ms", &mut it)?,
                    "--size-budget-ms",
                )?)
            }
            "--trace" => args.trace = Some(next_value("--trace", &mut it)?.into()),
            "--list-problems" => args.list_problems = true,
            "-h" | "--help" => args.help = true,
            other => return Err(ArgsError::UnknownArgument(other.to_string())),
        }
    }
    if args.min_dim == 0 {
        return Err(ArgsError::InvalidCombination("-s must be at least 1"));
    }
    if args.max_dim < args.min_dim {
        return Err(ArgsError::InvalidCombination("-d must be >= -s"));
    }
    if args.iterations.is_empty() || args.iterations.contains(&0) {
        return Err(ArgsError::InvalidCombination(
            "-i requires positive iteration counts",
        ));
    }
    if args.json && args.plot {
        return Err(ArgsError::InvalidCombination(
            "--json and --plot are mutually exclusive (JSON mode keeps stdout machine-readable)",
        ));
    }
    if args.resume && args.checkpoint.is_none() {
        return Err(ArgsError::InvalidCombination(
            "--resume requires --checkpoint <FILE>",
        ));
    }
    if args.checkpoint.is_some() {
        // A checkpoint file holds exactly one sweep, so the invocation
        // must pin the sweep down to one.
        if args.problems.len() != 1
            || !args.customs.is_empty()
            || args.precisions.len() != 1
            || args.iterations.len() != 1
        {
            return Err(ArgsError::InvalidCombination(
                "--checkpoint requires exactly one --problem, one --precision, \
                 one -i value, and no --custom",
            ));
        }
    }
    if args.size_budget_ms == Some(0) {
        return Err(ArgsError::InvalidCombination(
            "--size-budget-ms must be at least 1",
        ));
    }
    Ok(args)
}

/// Arguments of the `serve` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArgs {
    /// Bind address (`--addr`), `host:port`; port `0` picks an ephemeral one.
    pub addr: String,
    /// Worker-pool size (`--threads`).
    pub threads: usize,
    /// Threshold-cache capacity in entries (`--cache-entries`).
    pub cache_entries: usize,
    /// Honour `POST /shutdown` (`--allow-remote-shutdown`).
    pub allow_shutdown: bool,
    /// Per-request deadline budget for compute endpoints, in ms
    /// (`--deadline-ms`).
    pub deadline_ms: u64,
    /// Fault-plan spec (`--fault-plan`), overriding `GPU_BLOB_FAULTS`.
    pub fault_plan: Option<String>,
    pub help: bool,
}

impl Default for ServeArgs {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8787".to_string(),
            threads: 4,
            cache_entries: 256,
            allow_shutdown: false,
            deadline_ms: 10_000,
            fault_plan: None,
            help: false,
        }
    }
}

/// Usage text for `gpu-blob serve`.
pub const SERVE_USAGE: &str = "\
gpu-blob serve — run the offload advisor as a long-lived HTTP service

USAGE:
    gpu-blob serve [OPTIONS]

OPTIONS:
    --addr <HOST:PORT>        bind address (default: 127.0.0.1:8787; port 0
                              picks an ephemeral port, printed on startup)
    --threads <N>             worker threads (default: 4)
    --cache-entries <N>       threshold-sweep cache capacity (default: 256)
    --allow-remote-shutdown   honour POST /shutdown (off by default; CI and
                              benches use it for clean teardown)
    --deadline-ms <N>         per-request budget for POST /advise and
                              POST /threshold; exceeded -> 503
                              (default: 10000)
    --fault-plan <SPEC>       install a deterministic fault plan (chaos
                              testing; overrides GPU_BLOB_FAULTS)
    -h, --help                this help

ENDPOINTS (all under /v1/; bare legacy paths still answer, with a
Deprecation header):
    POST /v1/advise      one BLAS call -> offload verdict
    POST /v1/threshold   (system, problem, precision, sweep) -> threshold table
    GET  /v1/systems     the modelled systems
    GET  /v1/healthz     liveness
    GET  /v1/metrics     request counts, latency quantiles, cache counters
    GET  /v1/trace       recent request spans as chrome://tracing JSON
                         (?last=N bounds the span count)
";

/// Arguments of the `dispatch` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchArgs {
    /// Modelled system the trace dispatches on (`--system`; `host` is
    /// rejected — dispatch prices a modelled GPU route).
    pub system: SystemChoice,
    /// Trace length in calls (`--calls`).
    pub calls: usize,
    /// Trace seed (`--seed`): fixes both the shapes and any noise.
    pub seed: u64,
    /// Every Nth call is a GEMV (`--gemv-every`; 0 = GEMM only).
    pub gemv_every: usize,
    /// Precision of every call in the trace (`--precision`).
    pub precision: Precision,
    /// Routing policy (`--policy`); `None` = compare all three.
    pub policy: Option<Policy>,
    /// Measurement-noise amplitude (`--noise`), seeded from `--seed`.
    pub noise: Option<f64>,
    /// Directory for per-policy route CSVs (`--output`).
    pub output: Option<std::path::PathBuf>,
    /// Emit the run(s) as one JSON document on stdout (`--json`).
    pub json: bool,
    /// Checkpoint file (`--checkpoint`); requires a single `--policy`.
    pub checkpoint: Option<std::path::PathBuf>,
    /// Resume from `--checkpoint`'s file (`--resume`).
    pub resume: bool,
    /// Write a chrome://tracing span dump of the run (`--trace <FILE>`).
    pub trace: Option<std::path::PathBuf>,
    /// Fault-plan spec (`--fault-plan`), overriding `GPU_BLOB_FAULTS`.
    pub fault_plan: Option<String>,
    pub help: bool,
}

impl Default for DispatchArgs {
    fn default() -> Self {
        Self {
            system: SystemChoice::IsambardAi,
            calls: 200,
            seed: 42,
            gemv_every: 0,
            precision: Precision::F32,
            policy: None,
            noise: None,
            output: None,
            json: false,
            checkpoint: None,
            resume: false,
            trace: None,
            fault_plan: None,
            help: false,
        }
    }
}

/// Usage text for `gpu-blob dispatch`.
pub const DISPATCH_USAGE: &str = "\
gpu-blob dispatch — online per-call CPU/GPU routing over a mixed trace

Generates a seeded trace interleaving small (32–128) and large (512–1024)
GEMMs, dispatches each call through the online estimator + hysteresis
plane, and reports realized vs predicted seconds per policy. The default
(no --policy) compares auto against always-cpu and always-gpu on the same
trace: the dispatcher must beat both.

USAGE:
    gpu-blob dispatch [OPTIONS]

OPTIONS:
    --system <NAME>      dawn | lumi | isambard-ai (default: isambard-ai;
                         'host' has no GPU route and is rejected)
    --calls <N>          trace length (default: 200)
    --seed <N>           trace seed; fixes shapes and noise (default: 42)
    --gemv-every <N>     make every Nth call a GEMV (default: 0 = none)
    --precision <P>      f32 | f64 for every call (default: f32)
    --policy <P>         auto | always-cpu | always-gpu; omit to compare
                         all three on the same trace
    --noise <AMP>        multiplicative measurement noise amplitude in
                         [0, 1), seeded from --seed (default: none)
    --output <DIR>       write one route CSV per policy
                         (dispatch_<system>_<policy>.csv)
    --json               emit the run(s) as one JSON document on stdout,
                         per-call route included
    --checkpoint <FILE>  persist the run after every dispatched call
                         (atomic write); requires a single --policy
    --resume             replay --checkpoint's records (keyed by index,
                         site, kernel, and route) and continue; the
                         finished run is bit-identical to an uninterrupted
                         one
    --trace <FILE>       record dispatch.decide / dispatch.route spans and
                         write a chrome://tracing JSON dump
    --fault-plan <SPEC>  install a deterministic fault plan, e.g.
                         'dispatch.decide:error@0.2x5' (decision faults
                         degrade to the static prior, never fail the call)
    -h, --help           this help
";

/// Parses `dispatch` subcommand arguments (without the `dispatch` token).
pub fn parse_dispatch(argv: &[String]) -> Result<DispatchArgs, ArgsError> {
    let mut args = DispatchArgs::default();
    let mut it = argv.iter().peekable();
    let next_value = |flag: &'static str,
                      it: &mut std::iter::Peekable<std::slice::Iter<String>>| {
        it.next().cloned().ok_or(ArgsError::MissingValue { flag })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--system" => args.system = SystemChoice::parse(&next_value("--system", &mut it)?)?,
            "--calls" => args.calls = parse_value(&next_value("--calls", &mut it)?, "--calls")?,
            "--seed" => args.seed = parse_value(&next_value("--seed", &mut it)?, "--seed")?,
            "--gemv-every" => {
                args.gemv_every =
                    parse_value(&next_value("--gemv-every", &mut it)?, "--gemv-every")?
            }
            "--precision" => {
                let v = next_value("--precision", &mut it)?;
                match v.to_ascii_lowercase().as_str() {
                    "f32" | "s" | "single" => args.precision = Precision::F32,
                    "f64" | "d" | "double" => args.precision = Precision::F64,
                    other => return Err(ArgsError::UnknownPrecision(other.to_string())),
                }
            }
            "--policy" => {
                let v = next_value("--policy", &mut it)?;
                args.policy = Some(Policy::from_id(&v.to_ascii_lowercase()).ok_or(
                    ArgsError::BadValue {
                        flag: "--policy",
                        text: v,
                    },
                )?);
            }
            "--noise" => {
                args.noise = Some(parse_value(&next_value("--noise", &mut it)?, "--noise")?)
            }
            "--output" => args.output = Some(next_value("--output", &mut it)?.into()),
            "--json" => args.json = true,
            "--checkpoint" => args.checkpoint = Some(next_value("--checkpoint", &mut it)?.into()),
            "--resume" => args.resume = true,
            "--trace" => args.trace = Some(next_value("--trace", &mut it)?.into()),
            "--fault-plan" => args.fault_plan = Some(next_value("--fault-plan", &mut it)?),
            "-h" | "--help" => args.help = true,
            other => return Err(ArgsError::UnknownArgument(other.to_string())),
        }
    }
    if args.calls == 0 {
        return Err(ArgsError::InvalidCombination("--calls must be at least 1"));
    }
    if args.system == SystemChoice::Host {
        return Err(ArgsError::InvalidCombination(
            "dispatch prices a modelled GPU route; --system host has none \
             (use dawn, lumi, or isambard-ai)",
        ));
    }
    if let Some(amp) = args.noise {
        if !(0.0..1.0).contains(&amp) {
            return Err(ArgsError::InvalidCombination("--noise must be in [0, 1)"));
        }
    }
    if args.resume && args.checkpoint.is_none() {
        return Err(ArgsError::InvalidCombination(
            "--resume requires --checkpoint <FILE>",
        ));
    }
    if args.checkpoint.is_some() && args.policy.is_none() {
        // A checkpoint file holds exactly one policy's run, so the
        // invocation must pin the policy down (no compare mode).
        return Err(ArgsError::InvalidCombination(
            "--checkpoint requires --policy auto|always-cpu|always-gpu \
             (one run per checkpoint file)",
        ));
    }
    Ok(args)
}

/// What the binary was asked to do: the classic sweep, the service, the
/// online dispatcher, or a traced profiling run.
#[derive(Debug, Clone)]
pub enum Command {
    /// The classic one-shot benchmark run.
    Sweep(Args),
    /// `gpu-blob serve …`.
    Serve(ServeArgs),
    /// `gpu-blob dispatch …`: online per-call CPU/GPU routing over a
    /// seeded mixed trace.
    Dispatch(DispatchArgs),
    /// `gpu-blob profile …`: the classic run with tracing forced on,
    /// reported as a per-span profile table instead of sweep tables.
    Profile(Args),
}

/// Parses `serve` subcommand arguments (without the `serve` token).
pub fn parse_serve(argv: &[String]) -> Result<ServeArgs, ArgsError> {
    let mut args = ServeArgs::default();
    let mut it = argv.iter().peekable();
    let next_value = |flag: &'static str,
                      it: &mut std::iter::Peekable<std::slice::Iter<String>>| {
        it.next().cloned().ok_or(ArgsError::MissingValue { flag })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => args.addr = next_value("--addr", &mut it)?,
            "--threads" => {
                args.threads = parse_value(&next_value("--threads", &mut it)?, "--threads")?
            }
            "--cache-entries" => {
                args.cache_entries =
                    parse_value(&next_value("--cache-entries", &mut it)?, "--cache-entries")?
            }
            "--allow-remote-shutdown" => args.allow_shutdown = true,
            "--deadline-ms" => {
                args.deadline_ms =
                    parse_value(&next_value("--deadline-ms", &mut it)?, "--deadline-ms")?
            }
            "--fault-plan" => args.fault_plan = Some(next_value("--fault-plan", &mut it)?),
            "-h" | "--help" => args.help = true,
            other => return Err(ArgsError::UnknownArgument(other.to_string())),
        }
    }
    if args.deadline_ms == 0 {
        return Err(ArgsError::InvalidCombination(
            "--deadline-ms must be at least 1",
        ));
    }
    if args.threads == 0 {
        return Err(ArgsError::InvalidCombination(
            "--threads must be at least 1",
        ));
    }
    if args.cache_entries == 0 {
        return Err(ArgsError::InvalidCombination(
            "--cache-entries must be at least 1",
        ));
    }
    Ok(args)
}

/// Parses the full argument vector (without argv[0]) into a [`Command`]:
/// a leading `serve` token selects the service, anything else is the
/// classic sweep interface.
pub fn parse_command(argv: &[String]) -> Result<Command, ArgsError> {
    match argv.first().map(String::as_str) {
        Some("serve") => Ok(Command::Serve(parse_serve(&argv[1..])?)),
        Some("dispatch") => Ok(Command::Dispatch(parse_dispatch(&argv[1..])?)),
        Some("profile") => Ok(Command::Profile(parse(&argv[1..])?)),
        _ => Ok(Command::Sweep(parse(argv)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn paper_invocation() {
        // OMP_NUM_THREADS=48 ... ./gpu-blob -i 8 -s 1 -d 4096
        let a = parse(&sv(&["-i", "8", "-s", "1", "-d", "4096"])).unwrap();
        assert_eq!(a.iterations, vec![8]);
        assert_eq!(a.min_dim, 1);
        assert_eq!(a.max_dim, 4096);
    }

    #[test]
    fn iteration_lists() {
        let a = parse(&sv(&["-i", "1,8,32,64,128"])).unwrap();
        assert_eq!(a.iterations, vec![1, 8, 32, 64, 128]);
    }

    #[test]
    fn system_choices() {
        for (s, want) in [
            ("dawn", SystemChoice::Dawn),
            ("LUMI", SystemChoice::Lumi),
            ("isambard-ai", SystemChoice::IsambardAi),
            ("host", SystemChoice::Host),
        ] {
            assert_eq!(parse(&sv(&["--system", s])).unwrap().system, want);
        }
        assert!(parse(&sv(&["--system", "frontier"])).is_err());
    }

    #[test]
    fn problems_and_precisions() {
        let a = parse(&sv(&[
            "--problem",
            "gemm_square",
            "--problem",
            "gemv_tall_m",
            "--precision",
            "f32",
        ]))
        .unwrap();
        assert_eq!(a.problems.len(), 2);
        assert_eq!(a.precisions, vec![Precision::F32]);
        assert!(parse(&sv(&["--problem", "nope"])).is_err());
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            parse(&sv(&["-s", "0"])).unwrap_err(),
            ArgsError::InvalidCombination("-s must be at least 1")
        );
        assert_eq!(
            parse(&sv(&["-s", "10", "-d", "5"])).unwrap_err(),
            ArgsError::InvalidCombination("-d must be >= -s")
        );
        assert!(matches!(
            parse(&sv(&["-i", "0"])).unwrap_err(),
            ArgsError::InvalidCombination(_)
        ));
        assert_eq!(
            parse(&sv(&["--frobnicate"])).unwrap_err(),
            ArgsError::UnknownArgument("--frobnicate".to_string())
        );
        assert_eq!(
            parse(&sv(&["-i"])).unwrap_err(),
            ArgsError::MissingValue { flag: "-i" }
        );
        assert_eq!(
            parse(&sv(&["-d", "many"])).unwrap_err(),
            ArgsError::BadValue {
                flag: "-d",
                text: "many".to_string()
            }
        );
    }

    #[test]
    fn json_flag_and_plot_conflict() {
        let a = parse(&sv(&["--json"])).unwrap();
        assert!(a.json && !a.plot);
        assert!(matches!(
            parse(&sv(&["--json", "--plot"])).unwrap_err(),
            ArgsError::InvalidCombination(_)
        ));
    }

    #[test]
    fn serve_subcommand_parses() {
        let c = parse_command(&sv(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "8",
            "--cache-entries",
            "64",
            "--allow-remote-shutdown",
        ]))
        .unwrap();
        let Command::Serve(s) = c else {
            panic!("expected serve command")
        };
        assert_eq!(s.addr, "127.0.0.1:0");
        assert_eq!(s.threads, 8);
        assert_eq!(s.cache_entries, 64);
        assert!(s.allow_shutdown);

        // defaults
        let Command::Serve(s) = parse_command(&sv(&["serve"])).unwrap() else {
            panic!("expected serve command")
        };
        assert_eq!(s, ServeArgs::default());

        // validation
        assert!(parse_serve(&sv(&["--threads", "0"])).is_err());
        assert!(parse_serve(&sv(&["--cache-entries", "0"])).is_err());
        assert!(parse_serve(&sv(&["--bogus"])).is_err());

        // no `serve` token → the classic sweep path
        assert!(matches!(
            parse_command(&sv(&["-i", "8"])).unwrap(),
            Command::Sweep(_)
        ));
    }

    #[test]
    fn chaos_and_checkpoint_flags() {
        let a = parse(&sv(&[
            "--problem",
            "gemm_square",
            "--precision",
            "f32",
            "-i",
            "2",
            "--checkpoint",
            "/tmp/ck.json",
            "--resume",
            "--size-budget-ms",
            "250",
            "--fault-plan",
            "seed=7;csv.write:error@1x1",
        ]))
        .unwrap();
        assert_eq!(
            a.checkpoint.as_deref(),
            Some(std::path::Path::new("/tmp/ck.json"))
        );
        assert!(a.resume);
        assert_eq!(a.size_budget_ms, Some(250));
        assert_eq!(a.fault_plan.as_deref(), Some("seed=7;csv.write:error@1x1"));

        // --resume without --checkpoint
        assert!(matches!(
            parse(&sv(&["--resume"])).unwrap_err(),
            ArgsError::InvalidCombination(_)
        ));
        // --checkpoint needs the sweep pinned to one (problem, precision, -i)
        assert!(matches!(
            parse(&sv(&["--checkpoint", "/tmp/ck.json"])).unwrap_err(),
            ArgsError::InvalidCombination(_)
        ));
        assert!(matches!(
            parse(&sv(&[
                "--problem",
                "gemm_square",
                "--precision",
                "f32",
                "-i",
                "1,8",
                "--checkpoint",
                "/tmp/ck.json",
            ]))
            .unwrap_err(),
            ArgsError::InvalidCombination(_)
        ));
        assert!(matches!(
            parse(&sv(&["--size-budget-ms", "0"])).unwrap_err(),
            ArgsError::InvalidCombination(_)
        ));
    }

    #[test]
    fn serve_deadline_and_fault_plan() {
        let s = parse_serve(&sv(&[
            "--deadline-ms",
            "500",
            "--fault-plan",
            "serve.sweep:error@1x1",
        ]))
        .unwrap();
        assert_eq!(s.deadline_ms, 500);
        assert_eq!(s.fault_plan.as_deref(), Some("serve.sweep:error@1x1"));
        assert!(parse_serve(&sv(&["--deadline-ms", "0"])).is_err());
    }

    #[test]
    fn trace_flag_and_profile_subcommand() {
        let a = parse(&sv(&["--trace", "/tmp/out.json", "-d", "8"])).unwrap();
        assert_eq!(
            a.trace.as_deref(),
            Some(std::path::Path::new("/tmp/out.json"))
        );
        assert!(matches!(
            parse(&sv(&["--trace"])).unwrap_err(),
            ArgsError::MissingValue { flag: "--trace" }
        ));
        let Command::Profile(p) =
            parse_command(&sv(&["profile", "-d", "16", "--system", "host"])).unwrap()
        else {
            panic!("expected profile command")
        };
        assert_eq!(p.max_dim, 16);
        assert_eq!(p.system, SystemChoice::Host);
    }

    #[test]
    fn dispatch_subcommand_parses() {
        let c = parse_command(&sv(&[
            "dispatch",
            "--system",
            "lumi",
            "--calls",
            "64",
            "--seed",
            "7",
            "--gemv-every",
            "5",
            "--precision",
            "f64",
            "--policy",
            "always-gpu",
            "--noise",
            "0.1",
            "--json",
        ]))
        .unwrap();
        let Command::Dispatch(d) = c else {
            panic!("expected dispatch command")
        };
        assert_eq!(d.system, SystemChoice::Lumi);
        assert_eq!(d.calls, 64);
        assert_eq!(d.seed, 7);
        assert_eq!(d.gemv_every, 5);
        assert_eq!(d.precision, Precision::F64);
        assert_eq!(d.policy, Some(Policy::AlwaysGpu));
        assert_eq!(d.noise, Some(0.1));
        assert!(d.json);

        // defaults: compare mode on isambard-ai
        let Command::Dispatch(d) = parse_command(&sv(&["dispatch"])).unwrap() else {
            panic!("expected dispatch command")
        };
        assert_eq!(d, DispatchArgs::default());
        assert_eq!(d.policy, None);
    }

    #[test]
    fn dispatch_validation() {
        // the host backend has no GPU route to price
        assert!(matches!(
            parse_dispatch(&sv(&["--system", "host"])).unwrap_err(),
            ArgsError::InvalidCombination(_)
        ));
        assert!(matches!(
            parse_dispatch(&sv(&["--calls", "0"])).unwrap_err(),
            ArgsError::InvalidCombination(_)
        ));
        assert!(matches!(
            parse_dispatch(&sv(&["--noise", "1.5"])).unwrap_err(),
            ArgsError::InvalidCombination(_)
        ));
        assert_eq!(
            parse_dispatch(&sv(&["--policy", "sometimes"])).unwrap_err(),
            ArgsError::BadValue {
                flag: "--policy",
                text: "sometimes".to_string()
            }
        );
        // checkpointing pins the run to one policy
        assert!(matches!(
            parse_dispatch(&sv(&["--checkpoint", "/tmp/dk.json"])).unwrap_err(),
            ArgsError::InvalidCombination(_)
        ));
        assert!(parse_dispatch(&sv(&[
            "--checkpoint",
            "/tmp/dk.json",
            "--policy",
            "auto",
            "--resume",
        ]))
        .is_ok());
        assert!(matches!(
            parse_dispatch(&sv(&["--resume"])).unwrap_err(),
            ArgsError::InvalidCombination(_)
        ));
    }

    #[test]
    fn custom_specs() {
        let a = parse(&sv(&["--custom", "gemm:p,p,16p", "--custom", "gemv:32,p"])).unwrap();
        assert_eq!(a.customs.len(), 2);
        assert!(parse(&sv(&["--custom", "gemm:bogus"])).is_err());
    }

    #[test]
    fn flags() {
        let a = parse(&sv(&[
            "--validate",
            "--plot",
            "--output",
            "/tmp/x",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert!(a.validate && a.plot);
        assert_eq!(a.output.as_deref(), Some(std::path::Path::new("/tmp/x")));
        assert_eq!(a.threads, Some(4));
    }
}
