//! End-to-end tests of the `gpu-blob` binary: spawn the real executable,
//! parse its stdout, and check the artifact workflows work from the shell.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_gpu-blob"))
        .args(args)
        .output()
        .expect("spawn gpu-blob");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn help_prints_usage() {
    let (stdout, _, ok) = run(&["--help"]);
    assert!(ok);
    assert!(stdout.contains("GPU BLAS Offload Benchmark"));
    assert!(stdout.contains("-i <N[,N...]>"));
    assert!(stdout.contains("--system"));
}

#[test]
fn list_problems_names_all_fourteen() {
    let (stdout, _, ok) = run(&["--list-problems"]);
    assert!(ok);
    for id in [
        "gemm_square",
        "gemm_tall_k",
        "gemm_fixed_mn32",
        "gemm_tall_m",
        "gemm_fixed_kn32",
        "gemm_wide_n",
        "gemm_fixed_mk32",
        "gemm_square_k32",
        "gemm_sixteenth_k",
        "gemv_square",
        "gemv_tall_m",
        "gemv_fixed_n32",
        "gemv_wide_n",
        "gemv_fixed_m32",
    ] {
        assert!(stdout.contains(id), "missing {id}");
    }
}

#[test]
fn unknown_flag_fails_with_usage() {
    let (_, stderr, ok) = run(&["--frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown argument"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn bad_range_rejected() {
    let (_, stderr, ok) = run(&["-s", "100", "-d", "10"]);
    assert!(!ok);
    assert!(stderr.contains("-d must be >= -s"));
}

#[test]
fn modelled_sweep_prints_threshold_table() {
    let (stdout, _, ok) = run(&[
        "--system",
        "isambard-ai",
        "--problem",
        "gemm_square",
        "-i",
        "8",
        "-d",
        "256",
    ]);
    assert!(ok, "sweep should succeed");
    assert!(stdout.contains("Isambard-AI"));
    assert!(stdout.contains("offload thresholds"));
    assert!(stdout.contains("Once"));
    assert!(stdout.contains("USM"));
    // the GH200 square-GEMM threshold is small two-digit; the table row
    // for 8 iterations must contain some numeric cell
    let row = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("8 "))
        .expect("iteration row");
    assert!(row.split('|').count() >= 3, "row: {row}");
}

#[test]
fn csv_output_lands_on_disk() {
    let dir = std::env::temp_dir().join(format!("blob_cli_e2e_{}", std::process::id()));
    let (_, _, ok) = run(&[
        "--system",
        "lumi",
        "--problem",
        "gemv_square",
        "-i",
        "32",
        "-d",
        "64",
        "--output",
        dir.to_str().unwrap(),
    ]);
    assert!(ok);
    let files: Vec<_> = std::fs::read_dir(&dir)
        .expect("output dir exists")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        files.contains(&"sgemv_gemv_square_i32.csv".to_string()),
        "{files:?}"
    );
    assert!(files.contains(&"dgemv_gemv_square_i32.csv".to_string()));
    // the CSV parses with the library parser
    let text = std::fs::read_to_string(dir.join("sgemv_gemv_square_i32.csv")).unwrap();
    let rows = blob_core::csv::parse_csv(&text).unwrap();
    assert_eq!(rows.len(), 64 * 4); // cpu + 3 offloads per size
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn validate_flag_reports_ok() {
    let (stdout, _, ok) = run(&[
        "--system",
        "dawn",
        "--problem",
        "gemm_square",
        "-i",
        "1",
        "-d",
        "64",
        "--validate",
    ]);
    assert!(ok);
    assert!(stdout.contains("validate SGEMM"));
    assert!(stdout.contains("OK"));
    assert!(!stdout.contains("FAIL"));
}

#[test]
fn host_backend_runs_without_gpu_tables() {
    let (stdout, _, ok) = run(&[
        "--system",
        "host",
        "--problem",
        "gemv_square",
        "-i",
        "1",
        "-d",
        "32",
        "--threads",
        "1",
    ]);
    assert!(ok);
    assert!(stdout.contains("CPU-only backend"));
}

#[test]
fn custom_family_runs_standalone() {
    let (stdout, _, ok) = run(&[
        "--system",
        "isambard-ai",
        "--custom",
        "gemm:4p,p,p",
        "-i",
        "8",
        "-d",
        "256",
    ]);
    assert!(ok);
    // customs-only mode skips the 14 built-ins
    assert!(stdout.contains("0 problem type(s)"));
    assert!(stdout.contains("gemm:4p,p,p"));
    assert!(stdout.contains("offload thresholds"));
}

#[test]
fn bad_custom_spec_rejected() {
    let (_, stderr, ok) = run(&["--custom", "gemm:p,p"]);
    assert!(!ok);
    assert!(stderr.contains("gemm spec needs 3 dimensions"));
}

#[test]
fn json_mode_emits_one_parseable_document() {
    let (stdout, _, ok) = run(&[
        "--system",
        "lumi",
        "--problem",
        "gemm_square",
        "--precision",
        "f32",
        "-i",
        "8",
        "-d",
        "64",
        "--json",
        "--validate",
    ]);
    assert!(ok);
    // stdout is pure JSON: it must round-trip through the wire parser
    let doc = blob_core::wire::Json::parse(&stdout).expect("stdout parses as JSON");
    use blob_core::wire::Json;
    assert_eq!(doc.get("system").and_then(Json::as_str), Some("LUMI"));
    assert_eq!(doc.get("max_dim").and_then(Json::as_u64), Some(64));
    let sweeps = doc.get("sweeps").and_then(Json::as_arr).unwrap();
    assert_eq!(sweeps.len(), 1);
    let sweep = &sweeps[0];
    assert_eq!(
        sweep.get("problem").and_then(Json::as_str),
        Some("gemm_square")
    );
    assert_eq!(
        sweep.get("records").and_then(Json::as_arr).unwrap().len(),
        64
    );
    assert!(sweep
        .get("thresholds")
        .and_then(|t| t.get("once"))
        .is_some());
    let checks = doc.get("validation").and_then(Json::as_arr).unwrap();
    assert!(!checks.is_empty());
    assert!(checks
        .iter()
        .all(|c| c.get("ok").and_then(Json::as_bool) == Some(true)));
}

#[test]
fn json_mode_covers_custom_families() {
    let (stdout, _, ok) = run(&[
        "--system",
        "isambard-ai",
        "--custom",
        "gemv:2p,p",
        "--precision",
        "f64",
        "-i",
        "8",
        "-d",
        "64",
        "--json",
    ]);
    assert!(ok);
    use blob_core::wire::Json;
    let doc = Json::parse(&stdout).expect("stdout parses as JSON");
    let sweeps = doc.get("sweeps").and_then(Json::as_arr).unwrap();
    assert_eq!(sweeps.len(), 1);
    assert_eq!(
        sweeps[0].get("problem").and_then(Json::as_str),
        Some("gemv:2p,p")
    );
}

#[test]
fn traced_host_sweep_writes_chrome_trace_json() {
    use blob_core::wire::Json;
    let path = std::env::temp_dir().join("blob_cli_trace_e2e.json");
    let _ = std::fs::remove_file(&path);
    let path_s = path.to_string_lossy().into_owned();
    // One 256³ GEMM on 2 threads: big enough to cross the pool's
    // flops-per-thread crossover, so the dispatch spans fire too.
    let (_, stderr, ok) = run(&[
        "--system",
        "host",
        "--threads",
        "2",
        "--problem",
        "gemm_square",
        "--precision",
        "f32",
        "-i",
        "1",
        "-s",
        "256",
        "-d",
        "256",
        "--trace",
        &path_s,
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("span(s)"), "{stderr}");
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let doc = Json::parse(&text).expect("trace file is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array")
        .to_vec();
    for expected in ["sweep.size", "pool.dispatch", "gemm.pack_a", "gemm.compute"] {
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(Json::as_str) == Some(expected)),
            "missing {expected} span in {}",
            text.chars().take(400).collect::<String>()
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn json_plus_plot_is_rejected() {
    let (_, stderr, ok) = run(&["--json", "--plot"]);
    assert!(!ok);
    assert!(stderr.contains("mutually exclusive"));
}

#[test]
fn serve_help_lists_endpoints() {
    let (stdout, _, ok) = run(&["serve", "--help"]);
    assert!(ok);
    for needle in [
        "--addr",
        "--cache-entries",
        "/advise",
        "/threshold",
        "/metrics",
    ] {
        assert!(stdout.contains(needle), "missing {needle}");
    }
}
