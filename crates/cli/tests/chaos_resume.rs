//! Chaos end-to-end tests of the `gpu-blob` binary: a sweep killed with
//! SIGKILL mid-run and resumed from its checkpoint must produce a CSV
//! byte-identical to an uninterrupted run, and a bad fault plan must be a
//! usage error (exit 2) whether it arrives by flag or by environment.

use blob_core::checkpoint::Checkpoint;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_gpu-blob")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blob_chaos_resume_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The pinned single sweep every test in this file runs: one problem, one
/// precision, one iteration count (the `--checkpoint` contract), on a
/// modelled backend so timings are analytic and therefore reproducible.
fn sweep_args(ckpt: &Path, out: &Path) -> Vec<String> {
    [
        "--system",
        "dawn",
        "--problem",
        "gemm_square",
        "--precision",
        "f32",
        "-i",
        "1",
        "-s",
        "1",
        "-d",
        "40",
    ]
    .iter()
    .map(ToString::to_string)
    .chain([
        "--checkpoint".to_string(),
        ckpt.display().to_string(),
        "--output".to_string(),
        out.display().to_string(),
    ])
    .collect()
}

/// Reads the single CSV a run wrote into `dir`.
fn only_csv(dir: &Path) -> Vec<u8> {
    let mut csvs: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read output dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "csv"))
        .collect();
    assert_eq!(
        csvs.len(),
        1,
        "expected exactly one CSV in {}",
        dir.display()
    );
    std::fs::read(csvs.remove(0)).expect("read csv")
}

#[test]
fn killed_sweep_resumes_to_a_bit_identical_csv() {
    let dir = scratch("kill");
    let ref_ckpt = dir.join("ref.ckpt.json");
    let ref_out = dir.join("ref_out");
    let chaos_ckpt = dir.join("chaos.ckpt.json");
    let chaos_out = dir.join("chaos_out");

    // Reference: the same checkpointed sweep, never interrupted.
    let status = Command::new(bin())
        .args(sweep_args(&ref_ckpt, &ref_out))
        .status()
        .expect("spawn reference run");
    assert!(status.success(), "reference run failed");
    let reference = only_csv(&ref_out);

    // Chaos run: a delay fault slows every size so the run is killable,
    // then SIGKILL lands once the checkpoint holds a strict prefix.
    let mut child = Command::new(bin())
        .args(sweep_args(&chaos_ckpt, &chaos_out))
        .env("GPU_BLOB_FAULTS", "runner.size:delay(120ms)@1")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn chaos run");
    let deadline = Instant::now() + Duration::from_secs(30);
    let progressed = loop {
        assert!(Instant::now() < deadline, "chaos run never checkpointed");
        if let Some(st) = child.try_wait().expect("try_wait") {
            panic!(
                "chaos run finished (status {st}) before it could be killed — raise the sweep size"
            );
        }
        match Checkpoint::load(&chaos_ckpt) {
            Ok(ck) if !ck.records.is_empty() && !ck.complete => break ck.records.len(),
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    child.kill().expect("kill chaos run");
    let _ = child.wait();
    let premature_csvs = std::fs::read_dir(&chaos_out)
        .map(|rd| rd.filter_map(Result::ok).count())
        .unwrap_or(0);
    assert_eq!(
        premature_csvs, 0,
        "the killed run must not have written its CSV"
    );

    // Resume (no fault plan this time): the rest of the sweep is measured
    // and the CSV comes out byte-identical to the uninterrupted run.
    let out = Command::new(bin())
        .args(sweep_args(&chaos_ckpt, &chaos_out))
        .arg("--resume")
        .output()
        .expect("spawn resume run");
    assert!(
        out.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("resumed"),
        "resume must report the prefix it reused: {stderr}"
    );
    assert_eq!(
        only_csv(&chaos_out),
        reference,
        "resumed CSV differs from the uninterrupted run (killed at {progressed} records)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_without_a_matching_checkpoint_key_fails_cleanly() {
    let dir = scratch("mismatch");
    let ckpt = dir.join("ckpt.json");
    let out_dir = dir.join("out");
    let status = Command::new(bin())
        .args(sweep_args(&ckpt, &out_dir))
        .status()
        .expect("spawn run");
    assert!(status.success());

    // Same checkpoint file, different sweep (-d 48 instead of 40).
    let mut args = sweep_args(&ckpt, &out_dir);
    let d_at = args.iter().position(|a| a == "-d").expect("-d present") + 1;
    args[d_at] = "48".to_string();
    let out = Command::new(bin())
        .args(&args)
        .arg("--resume")
        .output()
        .expect("spawn mismatched resume");
    assert!(!out.status.success(), "a mismatched resume must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("mismatch"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_fault_plan_flag_is_exit_2() {
    let out = Command::new(bin())
        .args(["--fault-plan", "no.such.site:error@1", "-d", "8"])
        .output()
        .expect("spawn gpu-blob");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad fault plan"), "{stderr}");
}

#[test]
fn bad_fault_plan_env_is_exit_2() {
    let out = Command::new(bin())
        .args(["-d", "8"])
        .env("GPU_BLOB_FAULTS", "serve.sweep:error@2.5")
        .output()
        .expect("spawn gpu-blob");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad fault plan"), "{stderr}");
}

#[test]
fn flag_plan_overrides_the_environment_plan() {
    // The env var is garbage, but the explicit flag wins, so the run
    // succeeds in chaos mode.
    let out = Command::new(bin())
        .args([
            "--fault-plan",
            "csv.write:delay(1ms)@1x1",
            "--system",
            "lumi",
            "--problem",
            "gemv_square",
            "-i",
            "1",
            "-d",
            "16",
        ])
        .env("GPU_BLOB_FAULTS", "this is not a plan")
        .output()
        .expect("spawn gpu-blob");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("chaos mode"), "{stderr}");
}
