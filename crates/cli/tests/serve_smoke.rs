//! End-to-end smoke test of `gpu-blob serve`: spawn the real binary on an
//! ephemeral port, drive every endpoint over a TCP socket, verify the
//! threshold cache actually hits, and shut the server down cleanly.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

struct ServerUnderTest {
    child: Child,
    addr: String,
    // Keeps the child's stdout pipe open so its later prints (e.g.
    // "server stopped") don't hit a broken pipe.
    _stdout: BufReader<std::process::ChildStdout>,
}

impl ServerUnderTest {
    fn spawn() -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_gpu-blob"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--threads",
                "2",
                "--cache-entries",
                "32",
                "--allow-remote-shutdown",
            ])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn gpu-blob serve");
        // the first stdout line is `listening on <addr>` (line-buffered)
        let stdout = child.stdout.take().expect("child stdout");
        let mut reader = BufReader::new(stdout);
        let mut first = String::new();
        reader.read_line(&mut first).expect("read stdout");
        let addr = first
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line: {first}"))
            .to_string();
        Self {
            child,
            addr,
            _stdout: reader,
        }
    }

    /// One request over a fresh connection; returns (status, body).
    fn request(&self, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut s = TcpStream::connect(&self.addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let req = format!(
            "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        );
        s.write_all(req.as_bytes()).unwrap();
        let mut reply = Vec::new();
        s.read_to_end(&mut reply).unwrap();
        let text = String::from_utf8_lossy(&reply).into_owned();
        let status: u16 = text
            .strip_prefix("HTTP/1.1 ")
            .and_then(|r| r.split(' ').next())
            .and_then(|c| c.parse().ok())
            .unwrap_or_else(|| panic!("no status line in {text:?}"));
        let body = text
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }
}

impl Drop for ServerUnderTest {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Pulls `"key":<number>` out of a JSON text (good enough for flat reads
/// against our own deterministic encoder).
fn num_after(json: &str, context: &str, key: &str) -> f64 {
    let section = if context.is_empty() {
        json
    } else {
        json.split(context).nth(1).unwrap_or(json)
    };
    let tag = format!("\"{key}\":");
    let at = section
        .find(&tag)
        .unwrap_or_else(|| panic!("no {key} in {json}"))
        + tag.len();
    section[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("bad number for {key}"))
}

#[test]
fn full_service_lifecycle_with_cache_hit() {
    let server = ServerUnderTest::spawn();

    // healthz
    let (status, body) = server.request("GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains(r#""ok":true"#), "{body}");

    // systems lists the paper's machines
    let (status, body) = server.request("GET", "/systems", "");
    assert_eq!(status, 200);
    for name in ["dawn", "lumi", "isambard-ai", "mi300a"] {
        assert!(body.contains(name), "missing {name} in {body}");
    }

    // advise: a big GEMM on Isambard-AI must say offload
    let (status, body) = server.request(
        "POST",
        "/advise",
        r#"{"system":"isambard-ai","op":"gemm","m":2048,"n":2048,"k":2048,"precision":"f32","iterations":32}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains(r#""verdict":"offload""#), "{body}");

    // threshold twice: the second must be a cache hit and much faster
    let req = r#"{"system":"lumi","problem":"gemm_square","precision":"f32","iterations":8,"max_dim":2048}"#;
    let (status, first) = server.request("POST", "/threshold", req);
    assert_eq!(status, 200, "{first}");
    assert!(first.contains(r#""cached":false"#), "{first}");
    let miss_us = num_after(&first, "", "compute_us");

    let (status, second) = server.request("POST", "/threshold", req);
    assert_eq!(status, 200);
    assert!(second.contains(r#""cached":true"#), "{second}");
    let hit_us = num_after(&second, "", "compute_us");
    // identical threshold table either way
    let table = |b: &str| {
        b.split("\"thresholds\":")
            .nth(1)
            .and_then(|t| t.split(",\"cached\"").next())
            .map(str::to_string)
    };
    assert_eq!(table(&first), table(&second));
    // a miss runs a 2048-point sweep; a hit is a map lookup. Demand a
    // clear gap, not a knife-edge ratio, so the test is timing-robust.
    assert!(
        hit_us * 2.0 <= miss_us,
        "cache hit ({hit_us} us) not faster than miss ({miss_us} us)"
    );

    // metrics agree: exactly one hit, one miss, and our request counts
    let (status, metrics) = server.request("GET", "/metrics", "");
    assert_eq!(status, 200);
    assert_eq!(num_after(&metrics, "\"cache\":", "hits"), 1.0, "{metrics}");
    assert_eq!(num_after(&metrics, "\"cache\":", "misses"), 1.0);
    assert_eq!(num_after(&metrics, "\"threshold\":", "requests"), 2.0);
    assert_eq!(num_after(&metrics, "\"advise\":", "requests"), 1.0);
    assert!(num_after(&metrics, "\"threshold\":", "p99_us") > 0.0);

    // clean shutdown via the endpoint; the process must exit on its own
    let (status, body) = server.request("POST", "/shutdown", "");
    assert_eq!(status, 200, "{body}");
    let mut server = server;
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match server.child.try_wait().expect("try_wait") {
            Some(code) => {
                assert!(code.success(), "server exited with {code}");
                break;
            }
            None if std::time::Instant::now() > deadline => {
                panic!("server did not exit after /shutdown")
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}
