//! End-to-end tests of `gpu-blob dispatch`: spawn the real binary and
//! check the online dispatch plane works from the shell — policy
//! comparison, per-call route JSON/CSV, checkpoint/resume merging, trace
//! spans, and decision-fault degradation.

use blob_core::wire::Json;
use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_gpu-blob"))
        .args(args)
        .output()
        .expect("spawn gpu-blob");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("blob_dispatch_e2e_{}_{name}", std::process::id()))
}

#[test]
fn dispatch_help_prints_usage() {
    let (stdout, _, ok) = run(&["dispatch", "--help"]);
    assert!(ok);
    assert!(stdout.contains("online per-call CPU/GPU routing"));
    assert!(stdout.contains("--policy"));
    assert!(stdout.contains("--checkpoint"));
}

#[test]
fn compare_mode_reports_the_dispatcher_beating_both_static_policies() {
    let (stdout, _, ok) = run(&["dispatch", "--calls", "60"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("GPU-BLOB dispatch | system: Isambard-AI"));
    for policy in ["auto", "always-cpu", "always-gpu"] {
        assert!(stdout.contains(policy), "missing {policy} row");
    }
    assert!(
        stdout.contains("auto wins:"),
        "dispatcher must beat both static policies: {stdout}"
    );
}

#[test]
fn dispatch_host_is_rejected() {
    let (_, stderr, ok) = run(&["dispatch", "--system", "host"]);
    assert!(!ok);
    assert!(stderr.contains("modelled GPU route"));
}

#[test]
fn json_mode_carries_the_route_per_call() {
    let (stdout, _, ok) = run(&["dispatch", "--calls", "20", "--gemv-every", "5", "--json"]);
    assert!(ok);
    let doc = Json::parse(&stdout).expect("stdout parses as JSON");
    let runs = doc.get("runs").and_then(Json::as_arr).expect("runs");
    assert_eq!(runs.len(), 3, "compare mode runs all three policies");
    let auto = &runs[0];
    assert_eq!(auto.get("policy").and_then(Json::as_str), Some("auto"));
    let calls = auto.get("calls").and_then(Json::as_arr).expect("calls");
    assert_eq!(calls.len(), 20);
    let mut cpu = 0;
    let mut gpu = 0;
    for c in calls {
        match c.get("route").and_then(Json::as_str) {
            Some("cpu") => cpu += 1,
            Some("gpu") => gpu += 1,
            other => panic!("bad route {other:?}"),
        }
        assert!(c.get("realized_seconds").and_then(Json::as_f64).is_some());
        assert!(c
            .get("predicted_cpu_seconds")
            .and_then(Json::as_f64)
            .is_some());
    }
    assert!(cpu > 0 && gpu > 0, "mixed trace should split routes");
}

#[test]
fn route_csvs_land_on_disk_per_policy() {
    let dir = temp_path("csv");
    let (_, stderr, ok) = run(&[
        "dispatch",
        "--calls",
        "12",
        "--output",
        dir.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    for policy in ["auto", "always-cpu", "always-gpu"] {
        let path = dir.join(format!("dispatch_isambard-ai_{policy}.csv"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
        assert!(text.starts_with("# system=Isambard-AI policy="));
        assert!(text.contains("index,site,routine,m,n,k,route,verdict"));
        assert_eq!(text.lines().count(), 2 + 12);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpointed_run_resumes_to_bit_identical_json() {
    let ck = temp_path("ck.json");
    let _ = std::fs::remove_file(&ck);
    let base = &[
        "dispatch", "--calls", "24", "--policy", "auto", "--seed", "7", "--json",
    ];
    let (plain, _, ok) = run(base);
    assert!(ok);

    let mut with_ck: Vec<&str> = base.to_vec();
    with_ck.extend(["--checkpoint", ck.to_str().unwrap()]);
    let (first, _, ok) = run(&with_ck);
    assert!(ok);
    assert_eq!(
        plain, first,
        "checkpointed run must match the plain run byte for byte"
    );

    // without --resume an existing checkpoint refuses to be overwritten
    let (_, stderr, ok) = run(&with_ck);
    assert!(!ok);
    assert!(stderr.contains("--resume"), "{stderr}");

    // resuming the complete run replays all 24 records, redispatching none
    let mut resumed: Vec<&str> = with_ck.clone();
    resumed.push("--resume");
    let (second, stderr, ok) = run(&resumed);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("resumed 24 of 24"), "{stderr}");
    assert_eq!(plain, second, "resumed run must be bit-identical");
    let _ = std::fs::remove_file(&ck);
}

#[test]
fn traced_dispatch_writes_decide_and_route_spans() {
    let path = temp_path("trace.json");
    let _ = std::fs::remove_file(&path);
    let (_, stderr, ok) = run(&[
        "dispatch",
        "--calls",
        "8",
        "--policy",
        "auto",
        "--trace",
        path.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let doc = Json::parse(&text).expect("trace file is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents")
        .to_vec();
    for expected in ["dispatch.decide", "dispatch.route"] {
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(Json::as_str) == Some(expected)),
            "missing {expected} span"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn decision_faults_degrade_to_the_prior_not_a_failure() {
    let (stdout, stderr, ok) = run(&[
        "dispatch",
        "--calls",
        "16",
        "--policy",
        "auto",
        "--json",
        "--fault-plan",
        "dispatch.decide:error@1x4",
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("chaos mode"));
    let doc = Json::parse(&stdout).expect("stdout parses as JSON");
    let runs = doc.get("runs").and_then(Json::as_arr).expect("runs");
    let stats = runs[0].get("stats").expect("stats");
    assert_eq!(
        stats.get("fault_fallbacks").and_then(Json::as_u64),
        Some(4),
        "all four injected decision faults must fall back"
    );
    assert_eq!(stats.get("calls").and_then(Json::as_u64), Some(16));
}
