//! A minimal HTTP/1.1 layer over raw byte streams: request parsing with
//! hard limits, and response serialisation.
//!
//! This is not a general web server — it implements exactly the subset the
//! advisor service needs, defensively:
//!
//! - request head bounded by [`MAX_HEAD_BYTES`]; bodies bounded by the
//!   configured limit (oversize → `413`, *before* reading the body)
//! - `Content-Length` bodies only (`Transfer-Encoding` → `501`)
//! - keep-alive by default, honouring `Connection: close`
//! - read timeouts surface as [`RecvError::Timeout`] so slow-loris
//!   connections are dropped with a best-effort `408`
//!
//! Parsing is split into pure functions over byte slices (unit-testable
//! without sockets) plus [`Conn`], the buffered connection driver.

use std::io::{Read, Write};
use std::time::Duration;

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Per-connection policy: body cap and socket timeouts.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Largest accepted `Content-Length` in bytes.
    pub max_body: usize,
    /// Socket read timeout (slow-loris guard).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_body: 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method, e.g. `GET`.
    pub method: String,
    /// The request target as sent (path plus optional query).
    pub target: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target without its query string.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// True when the client asked to close the connection.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the connection before any request byte (normal end
    /// of a keep-alive session).
    Closed,
    /// The read timed out mid-request (slow-loris or stalled client).
    Timeout,
    /// The declared `Content-Length` exceeds the body limit → `413`.
    BodyTooLarge,
    /// The request used `Transfer-Encoding`, which this server does not
    /// implement → `501`.
    UnsupportedEncoding,
    /// The bytes were not a valid HTTP/1.1 request → `400`.
    Malformed(&'static str),
    /// Any other socket error.
    Io(std::io::Error),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Closed => f.write_str("connection closed"),
            RecvError::Timeout => f.write_str("read timed out"),
            RecvError::BodyTooLarge => f.write_str("request body exceeds the limit"),
            RecvError::UnsupportedEncoding => f.write_str("transfer-encoding not supported"),
            RecvError::Malformed(why) => write!(f, "malformed request: {why}"),
            RecvError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

/// Splits `head` (bytes up to, excluding, the blank line) into a request
/// line and headers. Pure, so the edge cases are unit-testable.
pub fn parse_head(head: &[u8]) -> Result<Request, RecvError> {
    let text = std::str::from_utf8(head).map_err(|_| RecvError::Malformed("head is not UTF-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or(RecvError::Malformed("empty head"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default();
    let target = parts.next().unwrap_or_default();
    let version = parts.next().unwrap_or_default();
    if parts.next().is_some() {
        return Err(RecvError::Malformed("request line has extra fields"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(RecvError::Malformed("bad method token"));
    }
    if !target.starts_with('/') {
        return Err(RecvError::Malformed("target must be origin-form"));
    }
    if !(version == "HTTP/1.1" || version == "HTTP/1.0") {
        return Err(RecvError::Malformed("unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(RecvError::Malformed("header line without a colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(RecvError::Malformed("bad header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body: Vec::new(),
    })
}

/// A buffered connection that can read successive requests (keep-alive)
/// and retains pipelined bytes between them.
pub struct Conn<S: Read + Write> {
    stream: S,
    buf: Vec<u8>,
}

impl<S: Read + Write> Conn<S> {
    /// Wraps a stream (timeouts are configured on the stream itself by the
    /// server before wrapping).
    pub fn new(stream: S) -> Self {
        Self {
            stream,
            buf: Vec::new(),
        }
    }

    fn classify_io(e: std::io::Error) -> RecvError {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => RecvError::Timeout,
            std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::UnexpectedEof => {
                RecvError::Closed
            }
            _ => RecvError::Io(e),
        }
    }

    fn fill(&mut self) -> Result<usize, RecvError> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Ok(0),
            Ok(n) => {
                // `read` promises n ≤ chunk.len(); `get` keeps the
                // connection path structurally panic-free regardless
                self.buf
                    .extend_from_slice(chunk.get(..n).unwrap_or_default());
                Ok(n)
            }
            Err(e) => Err(Self::classify_io(e)),
        }
    }

    /// Reads and parses the next request, enforcing `limits`.
    pub fn read_request(&mut self, limits: &Limits) -> Result<Request, RecvError> {
        // accumulate the head
        let head_end = loop {
            if let Some(at) = find_subslice(&self.buf, b"\r\n\r\n") {
                break at;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(RecvError::Malformed("request head too large"));
            }
            if self.fill()? == 0 {
                if self.buf.is_empty() {
                    return Err(RecvError::Closed);
                }
                return Err(RecvError::Malformed("connection closed mid-head"));
            }
        };
        // `head_end` comes from `find_subslice`, so it is in range;
        // `get` keeps the connection path structurally panic-free
        let mut request = parse_head(self.buf.get(..head_end).unwrap_or_default())?;
        let mut consumed = head_end + 4;
        if request.header("transfer-encoding").is_some() {
            self.buf.drain(..consumed);
            return Err(RecvError::UnsupportedEncoding);
        }
        let body_len = match request.header("content-length") {
            None => 0,
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| RecvError::Malformed("bad content-length"))?,
        };
        if body_len > limits.max_body {
            // Do not read the body; the caller answers 413 and closes.
            self.buf.drain(..consumed);
            return Err(RecvError::BodyTooLarge);
        }
        while self.buf.len() < consumed + body_len {
            if self.fill()? == 0 {
                return Err(RecvError::Malformed("connection closed mid-body"));
            }
        }
        // the fill loop above guarantees the range; same structural
        // panic-freedom as the head slice
        request.body = self
            .buf
            .get(consumed..consumed + body_len)
            .unwrap_or_default()
            .to_vec();
        consumed += body_len;
        self.buf.drain(..consumed);
        Ok(request)
    }

    /// Serialises and sends a response.
    pub fn write_response(&mut self, response: &Response) -> std::io::Result<()> {
        let head = response.head();
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(&response.body)?;
        self.stream.flush()
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// An HTTP response about to be serialised.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code, e.g. `200`.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers emitted after `content-type` (e.g. `X-Blob-Trace`,
    /// `Deprecation`). Names are emitted as given; keep them lower-case.
    pub headers: Vec<(&'static str, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
    /// Close the connection after this response.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
            close: false,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            close: false,
        }
    }

    /// Marks the connection for closing after this response.
    pub fn with_close(mut self) -> Self {
        self.close = true;
        self
    }

    /// Appends an extra response header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// The first value of an extra header, by exact name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The standard reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialises the status line and headers (with a trailing blank line).
    pub fn head(&self) -> String {
        let mut extra = String::new();
        for (name, value) in &self.headers {
            extra.push_str(name);
            extra.push_str(": ");
            extra.push_str(value);
            extra.push_str("\r\n");
        }
        format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\n{extra}content-length: {}\r\nconnection: {}\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if self.close { "close" } else { "keep-alive" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head_of(text: &str) -> Result<Request, RecvError> {
        parse_head(text.as_bytes())
    }

    #[test]
    fn parses_a_minimal_request_line() {
        let r = head_of("GET /healthz HTTP/1.1\r\nhost: x").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.target, "/healthz");
        assert_eq!(r.header("host"), Some("x"));
        assert!(!r.wants_close());
    }

    #[test]
    fn path_strips_query_and_headers_lowercase() {
        let r = head_of("POST /advise?x=1 HTTP/1.1\r\nContent-Type:  application/json").unwrap();
        assert_eq!(r.path(), "/advise");
        assert_eq!(r.header("content-type"), Some("application/json"));
    }

    #[test]
    fn connection_close_detected() {
        let r = head_of("GET / HTTP/1.1\r\nConnection: Close").unwrap();
        assert!(r.wants_close());
    }

    #[test]
    fn malformed_heads_rejected() {
        for bad in [
            "",
            "GET\r\n",
            "get / HTTP/1.1",
            "GET nope HTTP/1.1",
            "GET / HTTP/2.0",
            "GET / HTTP/1.1 extra",
            "GET / HTTP/1.1\r\nbad header line",
            "GET / HTTP/1.1\r\nbad name: x",
        ] {
            assert!(head_of(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn response_head_has_length_and_connection() {
        let r = Response::json(200, "{}".to_string());
        let head = r.head();
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(head.contains("content-length: 2\r\n"));
        assert!(head.contains("connection: keep-alive\r\n"));
        let closed = Response::text(400, "no").with_close();
        assert!(closed.head().contains("connection: close"));
    }

    #[test]
    fn extra_headers_are_emitted_and_readable() {
        let r = Response::json(200, "{}".to_string())
            .with_header("x-blob-trace", "00000000deadbeef")
            .with_header("deprecation", "true");
        assert_eq!(r.header("x-blob-trace"), Some("00000000deadbeef"));
        let head = r.head();
        assert!(
            head.contains("x-blob-trace: 00000000deadbeef\r\n"),
            "{head}"
        );
        assert!(head.contains("deprecation: true\r\n"), "{head}");
        // extra headers precede content-length so the blank line stays last
        assert!(head.ends_with("\r\n\r\n"));
    }

    // An in-memory duplex stream for exercising Conn without sockets.
    struct Chunks {
        input: Vec<Vec<u8>>,
        out: Vec<u8>,
    }
    impl Read for Chunks {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.input.is_empty() {
                return Ok(0);
            }
            let chunk = self.input.remove(0);
            buf[..chunk.len()].copy_from_slice(&chunk);
            Ok(chunk.len())
        }
    }
    impl Write for Chunks {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.out.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn conn_of(chunks: &[&[u8]]) -> Conn<Chunks> {
        Conn::new(Chunks {
            input: chunks.iter().map(|c| c.to_vec()).collect(),
            out: Vec::new(),
        })
    }

    #[test]
    fn reads_request_split_across_chunks() {
        let mut c = conn_of(&[
            b"POST /advise HTTP/1.1\r\ncontent-len",
            b"gth: 4\r\n\r\nab",
            b"cd",
        ]);
        let r = c.read_request(&Limits::default()).unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn keeps_pipelined_bytes_for_the_next_request() {
        let mut c = conn_of(&[b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"]);
        let limits = Limits::default();
        assert_eq!(c.read_request(&limits).unwrap().target, "/a");
        assert_eq!(c.read_request(&limits).unwrap().target, "/b");
        assert!(matches!(c.read_request(&limits), Err(RecvError::Closed)));
    }

    #[test]
    fn oversized_body_is_rejected_without_reading_it() {
        let mut c = conn_of(&[b"POST /advise HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n"]);
        let limits = Limits {
            max_body: 1024,
            ..Limits::default()
        };
        assert!(matches!(
            c.read_request(&limits),
            Err(RecvError::BodyTooLarge)
        ));
    }

    #[test]
    fn transfer_encoding_is_unsupported() {
        let mut c = conn_of(&[b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"]);
        assert!(matches!(
            c.read_request(&Limits::default()),
            Err(RecvError::UnsupportedEncoding)
        ));
    }

    #[test]
    fn eof_mid_head_is_malformed() {
        let mut c = conn_of(&[b"GET / HTT"]);
        assert!(matches!(
            c.read_request(&Limits::default()),
            Err(RecvError::Malformed(_))
        ));
    }
}
