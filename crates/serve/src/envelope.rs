//! The uniform JSON error envelope (v1 wire surface).
//!
//! Every error response the service emits — handler rejections, routing
//! misses, protocol failures, load shedding — goes through
//! [`error_response`] so clients can rely on one shape:
//!
//! ```json
//! {"error":{"code":"invalid_field","message":"…","trace_id":"a1b2…"}}
//! ```
//!
//! - `code` is a **stable machine-readable token** from [`codes`]; clients
//!   branch on it, never on the prose.
//! - `message` is human-readable prose; it may change between releases.
//! - `trace_id` echoes the `X-Blob-Trace` response header so a failing
//!   request can be correlated with the server-side trace
//!   (`GET /v1/trace`).
//!
//! `blob-check`'s `no-raw-error-body` rule enforces that serve handlers
//! never construct an error [`Response`] outside this module.

use crate::http::Response;
use blob_core::wire::Json;

/// The response header carrying the per-request trace id.
pub const TRACE_HEADER: &str = "x-blob-trace";

/// Stable error codes for the `error.code` field. These are API surface:
/// never renamed, only added to (documented in the README error table).
pub mod codes {
    /// The request body is not valid JSON.
    pub const INVALID_JSON: &str = "invalid_json";
    /// A required field is absent.
    pub const MISSING_FIELD: &str = "missing_field";
    /// A field is present but fails validation.
    pub const INVALID_FIELD: &str = "invalid_field";
    /// The named system/backend is not registered.
    pub const UNKNOWN_SYSTEM: &str = "unknown_system";
    /// No route matches the request path.
    pub const NOT_FOUND: &str = "not_found";
    /// The route exists but not for this method.
    pub const METHOD_NOT_ALLOWED: &str = "method_not_allowed";
    /// The declared `Content-Length` exceeds the body limit.
    pub const PAYLOAD_TOO_LARGE: &str = "payload_too_large";
    /// The read timed out mid-request (slow client).
    pub const TIMEOUT: &str = "timeout";
    /// The request used `Transfer-Encoding`, which is unsupported.
    pub const UNSUPPORTED_ENCODING: &str = "unsupported_encoding";
    /// The bytes were not a valid HTTP/1.1 request.
    pub const MALFORMED_REQUEST: &str = "malformed_request";
    /// The accept queue was saturated; the connection was shed.
    pub const SHED: &str = "shed";
    /// The request exceeded its deadline budget.
    pub const DEADLINE_EXCEEDED: &str = "deadline_exceeded";
    /// Every retry attempt for a transient backend failure was spent.
    pub const RETRIES_EXHAUSTED: &str = "retries_exhausted";
    /// A handler panicked or another internal invariant broke.
    pub const INTERNAL: &str = "internal";
    /// `POST /shutdown` is not permitted on this server.
    pub const SHUTDOWN_DISABLED: &str = "shutdown_disabled";
}

/// Renders the envelope body (without building a [`Response`]).
pub fn error_body(code: &str, message: &str, trace_id: &str) -> String {
    Json::obj()
        .field(
            "error",
            Json::obj()
                .field("code", code)
                .field("message", message)
                .field("trace_id", trace_id)
                .build(),
        )
        .build()
        .encode()
}

/// The one constructor for error responses: envelope body plus the
/// `X-Blob-Trace` header.
pub fn error_response(status: u16, code: &'static str, message: &str, trace_id: &str) -> Response {
    Response::json(status, error_body(code, message, trace_id))
        .with_header(TRACE_HEADER, trace_id.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_has_code_message_and_trace_id() {
        let r = error_response(400, codes::INVALID_FIELD, "dim out of range", "ab12");
        assert_eq!(r.status, 400);
        assert_eq!(r.header(TRACE_HEADER), Some("ab12"));
        let doc = Json::parse(std::str::from_utf8(&r.body).unwrap()).unwrap();
        let err = doc.get("error").expect("error object");
        assert_eq!(
            err.get("code").and_then(Json::as_str),
            Some("invalid_field")
        );
        assert_eq!(
            err.get("message").and_then(Json::as_str),
            Some("dim out of range")
        );
        assert_eq!(err.get("trace_id").and_then(Json::as_str), Some("ab12"));
    }

    #[test]
    fn messages_are_escaped() {
        let r = error_response(400, codes::INVALID_JSON, "bad \"quote\"\nline", "00");
        let doc = Json::parse(std::str::from_utf8(&r.body).unwrap()).unwrap();
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str),
            Some("bad \"quote\"\nline")
        );
    }
}
