//! The live metrics registry behind `GET /metrics`.
//!
//! All counters are lock-free atomics so the hot path never blocks on
//! observability: per-endpoint request/error counts, a log-spaced latency
//! histogram per endpoint (p50/p99 read from the buckets), and a global
//! in-flight gauge. The snapshot is rendered through the shared
//! [`blob_core::wire`] encoder like every other JSON in the workspace.

use blob_core::wire::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Upper bucket bounds in microseconds: powers of two from 1 µs to ~67 s.
/// The last bucket is open-ended.
const BUCKET_BOUNDS_US: [u64; 27] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072,
    262144, 524288, 1048576, 2097152, 4194304, 8388608, 16777216, 33554432, 67108864,
];

/// A fixed-bucket, log-spaced latency histogram (microseconds).
pub struct Histogram {
    buckets: Vec<AtomicU64>, // one per bound, plus one overflow bucket
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..=BUCKET_BOUNDS_US.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Records one observation in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        // `buckets` has one slot past the last bound, so `idx` is always
        // in range; `get` keeps the hot path structurally panic-free
        // rather than leaning on that invariant.
        if let Some(bucket) = self.buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// The upper bound (µs) of the bucket containing the `q`-quantile
    /// observation — an upper estimate with ≤ 2× bucket resolution, which
    /// is what a tail-latency gate needs. Returns 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return BUCKET_BOUNDS_US.get(i).copied().unwrap_or(u64::MAX / 2);
            }
        }
        BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]
    }

    /// JSON snapshot: count, mean, p50, p90, p99.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("count", self.count())
            .field("mean_us", self.mean_us())
            .field("p50_us", self.quantile_us(0.50))
            .field("p90_us", self.quantile_us(0.90))
            .field("p99_us", self.quantile_us(0.99))
            .build()
    }
}

/// Counters for one endpoint.
#[derive(Default)]
pub struct EndpointStats {
    /// Requests routed to the endpoint.
    pub requests: AtomicU64,
    /// Responses with a non-2xx status.
    pub errors: AtomicU64,
    /// End-to-end handler latency.
    pub latency: Histogram,
}

impl EndpointStats {
    /// Records one served request.
    pub fn record(&self, status: u16, elapsed_us: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !(200..300).contains(&status) {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record_us(elapsed_us);
    }
}

/// Self-healing event counters: every fault the service absorbed instead
/// of dying. All zero on a healthy run; any non-zero value flips
/// `/healthz` to `degraded` (still `ok` — degraded means "survived
/// faults", not "down").
#[derive(Default)]
pub struct Robustness {
    /// HTTP worker threads the supervisor replaced after they died.
    pub workers_replaced: AtomicU64,
    /// Panics that unwound out of a connection and were contained by the
    /// worker (the connection died; the worker did not).
    pub worker_panics: AtomicU64,
    /// Panics that unwound out of a request handler and were answered
    /// with a 500 (the connection survived).
    pub handler_panics: AtomicU64,
    /// Transient sweep-backend failures retried with backoff.
    pub retries: AtomicU64,
    /// Requests failed with 503 after every retry attempt was spent.
    pub retries_exhausted: AtomicU64,
    /// Connections answered with a canned 503 because the accept queue
    /// was saturated (load shedding).
    pub shed: AtomicU64,
    /// Requests failed with 503 for exceeding their deadline budget.
    pub deadline_exceeded: AtomicU64,
}

impl Robustness {
    /// True once any fault has been absorbed since start. Sticky by
    /// design: a degraded flag that resets itself hides flapping.
    pub fn degraded(&self) -> bool {
        self.workers_replaced.load(Ordering::Relaxed)
            + self.worker_panics.load(Ordering::Relaxed)
            + self.handler_panics.load(Ordering::Relaxed)
            + self.retries_exhausted.load(Ordering::Relaxed)
            + self.shed.load(Ordering::Relaxed)
            + self.deadline_exceeded.load(Ordering::Relaxed)
            > 0
    }

    /// Bumps one counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// JSON snapshot of every counter.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field(
                "workers_replaced",
                self.workers_replaced.load(Ordering::Relaxed),
            )
            .field("worker_panics", self.worker_panics.load(Ordering::Relaxed))
            .field(
                "handler_panics",
                self.handler_panics.load(Ordering::Relaxed),
            )
            .field("retries", self.retries.load(Ordering::Relaxed))
            .field(
                "retries_exhausted",
                self.retries_exhausted.load(Ordering::Relaxed),
            )
            .field("shed", self.shed.load(Ordering::Relaxed))
            .field(
                "deadline_exceeded",
                self.deadline_exceeded.load(Ordering::Relaxed),
            )
            .build()
    }
}

/// The service-wide registry: per-endpoint stats plus global gauges.
pub struct Metrics {
    endpoints: Vec<(&'static str, EndpointStats)>,
    in_flight: AtomicU64,
    started: Instant,
    /// Self-healing event counters (see [`Robustness`]).
    pub robustness: Robustness,
}

/// The endpoint labels the registry tracks; unknown routes fall into
/// `"other"` so the cardinality is fixed.
pub const ENDPOINTS: [&str; 9] = [
    "advise",
    "threshold",
    "dispatch",
    "systems",
    "healthz",
    "metrics",
    "trace",
    "shutdown",
    "other",
];

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// A fresh registry with one slot per [`ENDPOINTS`] label.
    pub fn new() -> Self {
        Self {
            endpoints: ENDPOINTS
                .iter()
                .map(|&name| (name, EndpointStats::default()))
                .collect(),
            in_flight: AtomicU64::new(0),
            started: Instant::now(),
            robustness: Robustness::default(),
        }
    }

    /// The stats slot for `label` (falling back to `"other"`).
    pub fn endpoint(&self, label: &str) -> &EndpointStats {
        if let Some((_, stats)) = self.endpoints.iter().find(|(n, _)| *n == label) {
            return stats;
        }
        // the table always ends with the catch-all "other" slot
        if let Some((_, other)) = self.endpoints.last() {
            return other;
        }
        // unreachable in practice (ENDPOINTS is a non-empty const); a
        // process-wide throwaway slot keeps the accessor total on a
        // request path where panicking would kill the connection
        static EMPTY: std::sync::OnceLock<EndpointStats> = std::sync::OnceLock::new();
        EMPTY.get_or_init(EndpointStats::default)
    }

    /// Marks one request in flight; the guard decrements on drop so every
    /// exit path (including handler errors) restores the gauge.
    pub fn enter(&self) -> InFlightGuard<'_> {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        InFlightGuard { metrics: self }
    }

    /// The current in-flight gauge.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// JSON snapshot of everything, with the cache counters spliced in by
    /// the caller (the registry does not own the cache).
    pub fn to_json(&self, cache: &crate::cache::CacheStats) -> Json {
        let mut endpoints = Json::obj();
        for (name, stats) in &self.endpoints {
            endpoints = endpoints.field(
                name,
                Json::obj()
                    .field("requests", stats.requests.load(Ordering::Relaxed))
                    .field("errors", stats.errors.load(Ordering::Relaxed))
                    .field("latency", stats.latency.to_json())
                    .build(),
            );
        }
        Json::obj()
            .field("uptime_seconds", self.started.elapsed().as_secs_f64())
            .field("in_flight", self.in_flight())
            .field("degraded", self.robustness.degraded())
            .field("robustness", self.robustness.to_json())
            .field("endpoints", endpoints.build())
            .field(
                "cache",
                Json::obj()
                    .field("hits", cache.hits)
                    .field("misses", cache.misses)
                    .field("evictions", cache.evictions)
                    .field("entries", cache.entries)
                    .field("capacity", cache.capacity)
                    .build(),
            )
            .build()
    }
}

/// Decrements the in-flight gauge when dropped.
pub struct InFlightGuard<'a> {
    metrics: &'a Metrics,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheStats;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = Histogram::new();
        for us in [10u64, 20, 30, 40, 1000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean_us() - 220.0).abs() < 1e-9);
        let p50 = h.quantile_us(0.50);
        // the median observation (30µs) lands in the (16,32] bucket
        assert_eq!(p50, 32);
        let p99 = h.quantile_us(0.99);
        assert_eq!(p99, 1024); // 1000µs → (512,1024] bucket
        assert!(p50 <= p99);
    }

    #[test]
    fn histogram_handles_extremes() {
        let h = Histogram::new();
        assert_eq!(h.quantile_us(0.99), 0);
        h.record_us(0);
        assert_eq!(h.quantile_us(0.5), 1);
        h.record_us(u64::MAX / 4); // overflow bucket
        assert!(h.quantile_us(1.0) >= BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]);
    }

    #[test]
    fn endpoint_stats_count_errors() {
        let m = Metrics::new();
        m.endpoint("advise").record(200, 10);
        m.endpoint("advise").record(400, 20);
        m.endpoint("nonsense").record(500, 30); // lands in "other"
        let json = m.to_json(&CacheStats {
            hits: 1,
            misses: 2,
            evictions: 0,
            entries: 1,
            capacity: 8,
        });
        let advise = json.get("endpoints").and_then(|e| e.get("advise")).unwrap();
        assert_eq!(advise.get("requests").and_then(Json::as_u64), Some(2));
        assert_eq!(advise.get("errors").and_then(Json::as_u64), Some(1));
        let other = json.get("endpoints").and_then(|e| e.get("other")).unwrap();
        assert_eq!(other.get("requests").and_then(Json::as_u64), Some(1));
        assert_eq!(
            json.get("cache")
                .and_then(|c| c.get("misses"))
                .and_then(Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn robustness_counters_render_and_flip_degraded() {
        let m = Metrics::new();
        let empty = CacheStats {
            hits: 0,
            misses: 0,
            evictions: 0,
            entries: 0,
            capacity: 8,
        };
        let json = m.to_json(&empty);
        assert_eq!(json.get("degraded").and_then(Json::as_bool), Some(false));
        // retries alone are healing in progress, not degradation
        Robustness::bump(&m.robustness.retries);
        assert!(!m.robustness.degraded());
        Robustness::bump(&m.robustness.workers_replaced);
        assert!(m.robustness.degraded());
        let json = m.to_json(&empty);
        assert_eq!(json.get("degraded").and_then(Json::as_bool), Some(true));
        let r = json.get("robustness").unwrap();
        assert_eq!(r.get("retries").and_then(Json::as_u64), Some(1));
        assert_eq!(r.get("workers_replaced").and_then(Json::as_u64), Some(1));
        assert_eq!(r.get("shed").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn in_flight_guard_restores_gauge() {
        let m = Metrics::new();
        {
            let _a = m.enter();
            let _b = m.enter();
            assert_eq!(m.in_flight(), 2);
        }
        assert_eq!(m.in_flight(), 0);
    }
}
