//! The advisor API: request decoding, routing, and handlers for every
//! endpoint, independent of the transport (the server calls [`App::handle`]
//! with a parsed [`Request`] and writes back whatever [`Response`] comes
//! out — tests can do the same without a socket).
//!
//! ## v1 wire surface
//!
//! Every route lives under the `/v1/` prefix. The bare legacy paths
//! (`/healthz`, `/advise`, …) keep answering identically but carry a
//! `Deprecation: true` response header; new clients should use `/v1/`.
//!
//! | route | method | body |
//! |-------|--------|------|
//! | `/v1/advise` | POST | BLAS call + iterations + offload → verdict |
//! | `/v1/threshold` | POST | problem + system + sweep config → cached threshold table |
//! | `/v1/dispatch` | POST | BLAS call + site → online route (cpu/gpu) + predicted/realized seconds |
//! | `/v1/systems` | GET | — |
//! | `/v1/healthz` | GET | — |
//! | `/v1/metrics` | GET | — |
//! | `/v1/trace` | GET | — (`?last=N` bounds the span count) |
//! | `/v1/shutdown` | POST | — (only when enabled; used by CI and the bench) |
//!
//! Every response carries an `X-Blob-Trace` header with a per-request
//! trace id; every error response is the uniform envelope
//! `{"error":{"code","message","trace_id"}}` from [`crate::envelope`].
//! Request shapes are validated by [`blob_core::schema`], the single
//! home of the parse/encode pairs.

use crate::cache::ShardedCache;
use crate::envelope::{self, codes};
use crate::http::{Request, Response};
use crate::metrics::{Metrics, Robustness};
use blob_core::backend::Backend;
use blob_core::fault;
use blob_core::rng::XorShift64;
use blob_core::runner::{run_sweep_pooled, SweepConfig, ThreadPool};
use blob_core::schema::{
    self, advice_json, kernel_json, offload_key, parse_precision, parse_problem_id, precision_key,
    SchemaError,
};
use blob_core::trace;
use blob_core::wire::Json;
use blob_core::{advise, Offload, Precision};
use blob_dispatch::{Dispatcher, Hysteresis, Policy};
use blob_sim::{presets, Kernel, SystemModel};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The largest dimension `/v1/threshold` will sweep — the paper's own
/// `-d` ceiling, which bounds a miss at one 4096-point sweep.
pub const MAX_SWEEP_DIM: usize = 4096;

/// The largest iteration count a request may ask for.
pub const MAX_ITERATIONS: u32 = 1_000_000;

/// Default per-request deadline budget for the compute endpoints
/// (`POST /v1/advise`, `POST /v1/threshold`); exceeded → `503` and the
/// `deadline_exceeded` counter. `/v1/healthz` and `/v1/metrics` are
/// exempt so probes keep working while the service digests a heavy
/// sweep.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(10);

/// Attempts (first try + retries) at the threshold sweep when the
/// backend fails transiently (the `serve.sweep` fault point).
const SWEEP_ATTEMPTS: u32 = 3;

/// Base of the exponential retry backoff: 2 ms, 4 ms, … plus seeded
/// jitter so synchronized clients do not retry in lockstep.
const BACKOFF_BASE: Duration = Duration::from_millis(2);

/// Seed for the retry-jitter stream (deterministic like everything else;
/// see `blob_core::rng`).
const JITTER_SEED: u64 = 0x5EED_0F_B10B;

/// The systems the service can answer for: the three evaluation systems of
/// the paper plus the CPU-only Isambard-AI configuration (exercises the
/// `no-gpu` verdict) and the two extension systems.
pub fn default_systems() -> Vec<(String, SystemModel)> {
    vec![
        ("dawn".to_string(), presets::dawn()),
        ("lumi".to_string(), presets::lumi()),
        ("isambard-ai".to_string(), presets::isambard_ai()),
        (
            "isambard-ai-armpl".to_string(),
            presets::isambard_ai_armpl(),
        ),
        ("mi300a".to_string(), presets::mi300a()),
        ("a100".to_string(), presets::a100_workstation()),
    ]
}

/// The service state shared by every worker thread.
pub struct App {
    systems: Vec<(String, SystemModel)>,
    /// Threshold-sweep cache, keyed by the full request tuple.
    pub cache: ShardedCache<Json>,
    /// The live metrics registry.
    pub metrics: Metrics,
    allow_shutdown: bool,
    shutdown: AtomicBool,
    /// Persistent worker pool for threshold sweeps on cache misses: sweep
    /// points of one request are measured in parallel (the models are
    /// analytic, so the fan-out cannot perturb the numbers).
    sweep_pool: ThreadPool,
    /// Per-request budget for the compute endpoints.
    deadline: Duration,
    /// Seeded jitter stream for retry backoff.
    jitter: Mutex<XorShift64>,
    /// One online dispatcher per system id: `/v1/dispatch` history and
    /// device residency persist across requests, so repeated calls from
    /// the same site warm up exactly as an in-process dispatcher would.
    dispatchers: Mutex<HashMap<String, Dispatcher>>,
}

/// A handler failure: an HTTP status, a stable envelope code, and a
/// human-readable message.
struct ApiError {
    status: u16,
    code: &'static str,
    message: String,
}

impl ApiError {
    fn new(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        Self {
            status,
            code,
            message: message.into(),
        }
    }

    fn bad_request(code: &'static str, message: impl Into<String>) -> Self {
        Self::new(400, code, message)
    }
}

impl From<SchemaError> for ApiError {
    fn from(e: SchemaError) -> Self {
        // Schema codes are a subset of the envelope vocabulary, so they
        // pass straight through.
        Self::new(400, e.code, e.message)
    }
}

type ApiResult = Result<Json, ApiError>;

/// Wraps a handler's JSON document as a 200 response.
fn json_ok(body: Json) -> Response {
    Response::json(200, body.encode())
}

impl App {
    /// Builds the app with the default system registry.
    pub fn new(cache_entries: usize, cache_shards: usize, allow_shutdown: bool) -> Self {
        Self {
            systems: default_systems(),
            cache: ShardedCache::new(cache_entries, cache_shards),
            metrics: Metrics::new(),
            allow_shutdown,
            shutdown: AtomicBool::new(false),
            sweep_pool: ThreadPool::with_default_parallelism(),
            deadline: DEFAULT_DEADLINE,
            jitter: Mutex::new(XorShift64::new(JITTER_SEED)),
            dispatchers: Mutex::new(HashMap::new()),
        }
    }

    /// Overrides the per-request deadline budget (see [`DEFAULT_DEADLINE`]).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// True once a (permitted) `/shutdown` request has been served; the
    /// server polls this after each request.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn system(&self, id: &str) -> Option<&SystemModel> {
        let want = id.to_ascii_lowercase();
        self.systems
            .iter()
            .find(|(sid, m)| *sid == want || m.name.eq_ignore_ascii_case(id))
            .map(|(_, m)| m)
    }

    /// Routes one request; returns the response and the metrics label.
    /// Latency/status accounting is the caller's job (it owns the clock).
    ///
    /// Mints the per-request trace id (echoed in the `X-Blob-Trace`
    /// header of **every** response and in error envelopes) and records
    /// the request as a `serve.request` span when tracing is enabled.
    ///
    /// A panic anywhere in routing or a handler (a bug, or the
    /// `serve.handle` fault point's `panic` action) is contained here and
    /// answered with a `500` — the connection and the worker survive, and
    /// the `handler_panics` counter records the save.
    pub fn handle(&self, req: &Request) -> (Response, &'static str) {
        let trace_id = trace::mint_trace_id();
        let span = trace::span(trace::names::SERVE_REQUEST, trace::cats::SERVE);
        span.annotate("body_bytes", req.body.len() as u64);
        let outcome = catch_unwind(AssertUnwindSafe(|| self.route(req, &trace_id)));
        drop(span);
        let (mut response, label) = match outcome {
            Ok(out) => out,
            Err(_) => {
                Robustness::bump(&self.metrics.robustness.handler_panics);
                (
                    envelope::error_response(
                        500,
                        codes::INTERNAL,
                        "handler panicked; the request was aborted",
                        &trace_id,
                    ),
                    "other",
                )
            }
        };
        if response.header(envelope::TRACE_HEADER).is_none() {
            response = response.with_header(envelope::TRACE_HEADER, trace_id);
        }
        (response, label)
    }

    fn route(&self, req: &Request, trace_id: &str) -> (Response, &'static str) {
        // The `serve.handle` fault point sits in front of dispatch: an
        // `error` rule degrades the request to a clean 500, a `panic`
        // rule exercises the containment in `handle`.
        if let Err(e) = fault::point(fault::sites::SERVE_HANDLE) {
            return (
                envelope::error_response(500, codes::INTERNAL, &e.to_string(), trace_id),
                "other",
            );
        }
        let started = Instant::now();
        // v1 surface: strip the prefix; bare legacy paths still route but
        // are marked deprecated below.
        let full_path = req.path();
        let (path, legacy) = match full_path.strip_prefix("/v1") {
            Some(rest) if rest.starts_with('/') => (rest, false),
            _ => (full_path, true),
        };
        let (label, result): (&'static str, Result<Response, ApiError>) =
            match (req.method.as_str(), path) {
                ("GET", "/healthz") => ("healthz", self.healthz().map(json_ok)),
                ("GET", "/systems") => ("systems", self.systems_endpoint().map(json_ok)),
                ("GET", "/metrics") => ("metrics", self.metrics_endpoint().map(json_ok)),
                ("GET", "/trace") => ("trace", self.trace_endpoint(&req.target)),
                ("POST", "/advise") => (
                    "advise",
                    self.advise_endpoint(&req.body, started).map(json_ok),
                ),
                ("POST", "/threshold") => (
                    "threshold",
                    self.threshold_endpoint(&req.body, started).map(json_ok),
                ),
                ("POST", "/dispatch") => (
                    "dispatch",
                    self.dispatch_endpoint(&req.body, started).map(json_ok),
                ),
                ("POST", "/shutdown") => ("shutdown", self.shutdown_endpoint().map(json_ok)),
                (_, "/healthz" | "/systems" | "/metrics" | "/trace")
                | (_, "/advise" | "/threshold" | "/dispatch") => (
                    "other",
                    Err(ApiError::new(
                        405,
                        codes::METHOD_NOT_ALLOWED,
                        "method not allowed for this route",
                    )),
                ),
                _ => (
                    "other",
                    Err(ApiError::new(
                        404,
                        codes::NOT_FOUND,
                        format!("no such route: {full_path}"),
                    )),
                ),
            };
        let mut response = match result {
            Ok(r) => r,
            Err(e) => envelope::error_response(e.status, e.code, &e.message, trace_id),
        };
        if legacy && label != "other" {
            response = response.with_header("deprecation", "true");
        }
        (response, label)
    }

    fn healthz(&self) -> ApiResult {
        // `ok` stays true even when degraded: degraded means "absorbed
        // faults and kept serving", which is exactly what a liveness
        // probe should not kill the process over.
        let robustness = &self.metrics.robustness;
        Ok(Json::obj()
            .field("ok", true)
            .field("service", "blob-serve")
            .field("systems", self.systems.len())
            .field("degraded", robustness.degraded())
            .field("robustness", robustness.to_json())
            .build())
    }

    fn systems_endpoint(&self) -> ApiResult {
        let items: Vec<Json> = self
            .systems
            .iter()
            .map(|(id, m)| {
                let offloads: Vec<Json> = m
                    .offloads()
                    .into_iter()
                    .map(|o| offload_key(o).into())
                    .collect();
                Json::obj()
                    .field("id", id.as_str())
                    .field("name", m.name.to_string())
                    .field("gpu", !offloads.is_empty())
                    .field("offloads", Json::Arr(offloads))
                    .build()
            })
            .collect();
        Ok(Json::obj().field("systems", Json::Arr(items)).build())
    }

    fn metrics_endpoint(&self) -> ApiResult {
        Ok(self.metrics.to_json(&self.cache.stats()))
    }

    /// `GET /v1/trace?last=N`: the published spans (optionally only the
    /// most recent `N`) rendered as a chrome://tracing document.
    fn trace_endpoint(&self, target: &str) -> Result<Response, ApiError> {
        let mut last: Option<usize> = None;
        if let Some((_, query)) = target.split_once('?') {
            for pair in query.split('&').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                if k == "last" {
                    last = Some(v.parse::<usize>().map_err(|_| {
                        ApiError::bad_request(
                            codes::INVALID_FIELD,
                            "`last` must be a non-negative integer",
                        )
                    })?);
                }
            }
        }
        let spans = trace::snapshot();
        let tail = match last {
            Some(n) => &spans[spans.len().saturating_sub(n)..],
            None => &spans[..],
        };
        Ok(Response::json(200, trace::chrome_trace_json(tail)))
    }

    fn shutdown_endpoint(&self) -> ApiResult {
        if !self.allow_shutdown {
            return Err(ApiError::new(
                404,
                codes::SHUTDOWN_DISABLED,
                "shutdown endpoint is disabled (start with --allow-remote-shutdown)",
            ));
        }
        self.shutdown.store(true, Ordering::SeqCst);
        Ok(Json::obj().field("shutting_down", true).build())
    }

    /// Fails the request with `503` once its deadline budget is spent.
    /// Checked after compute and between retries — a request that is
    /// already over budget must not burn more backend time.
    fn check_deadline(&self, started: Instant) -> Result<(), ApiError> {
        if started.elapsed() > self.deadline {
            Robustness::bump(&self.metrics.robustness.deadline_exceeded);
            return Err(ApiError::new(
                503,
                codes::DEADLINE_EXCEEDED,
                format!(
                    "request exceeded its deadline budget of {} ms",
                    self.deadline.as_millis()
                ),
            ));
        }
        Ok(())
    }

    fn advise_endpoint(&self, body: &[u8], started: Instant) -> ApiResult {
        let doc = schema::parse_body(body)?;
        let system_id = schema::require_str(&doc, "system")?;
        let system = self.system(system_id).ok_or_else(|| {
            ApiError::bad_request(
                codes::UNKNOWN_SYSTEM,
                format!("unknown system `{system_id}`"),
            )
        })?;
        let call = schema::parse_call(&doc, MAX_SWEEP_DIM * 16)?;
        let iterations = schema::optional_u32(&doc, "iterations", 1)?;
        if iterations == 0 || iterations > MAX_ITERATIONS {
            return Err(ApiError::bad_request(
                codes::INVALID_FIELD,
                format!("iterations must be in 1..={MAX_ITERATIONS}"),
            ));
        }
        let offload = match doc.get("offload") {
            None => Offload::TransferOnce,
            Some(v) => v
                .as_str()
                .and_then(|s| s.parse::<Offload>().ok())
                .ok_or_else(|| {
                    ApiError::bad_request(
                        codes::INVALID_FIELD,
                        "offload must be one of once|always|usm",
                    )
                })?,
        };
        let advice = advise(system, &call, iterations, offload);
        self.check_deadline(started)?;
        let Json::Obj(mut fields) = advice_json(&advice) else {
            return Err(ApiError::new(
                500,
                codes::INTERNAL,
                "advice encoding was not an object",
            ));
        };
        fields.insert(0, ("system".to_string(), system.name.to_string().into()));
        Ok(Json::Obj(fields))
    }

    /// `POST /v1/dispatch`: one online routing decision. The request
    /// names a system, a call, and (optionally) a call-site label; the
    /// response reports the route the per-system dispatcher took for it,
    /// the predicted seconds for both routes, and the realized seconds on
    /// the chosen route. Dispatcher state (history table, device
    /// residency, hysteresis memory) persists across requests per system;
    /// `"reset": true` starts that system's dispatcher fresh first.
    fn dispatch_endpoint(&self, body: &[u8], started: Instant) -> ApiResult {
        let doc = schema::parse_body(body)?;
        let system_id = schema::require_str(&doc, "system")?;
        let system = self.system(system_id).ok_or_else(|| {
            ApiError::bad_request(
                codes::UNKNOWN_SYSTEM,
                format!("unknown system `{system_id}`"),
            )
        })?;
        let call = schema::parse_call(&doc, MAX_SWEEP_DIM * 16)?;
        let site = match doc.get("site") {
            None => "api",
            Some(v) => v.as_str().ok_or_else(|| {
                ApiError::bad_request(codes::INVALID_FIELD, "site must be a string")
            })?,
        };
        let policy = match doc.get("policy") {
            None => Policy::Auto,
            Some(v) => v.as_str().and_then(Policy::from_id).ok_or_else(|| {
                ApiError::bad_request(
                    codes::INVALID_FIELD,
                    "policy must be one of auto|always-cpu|always-gpu",
                )
            })?,
        };
        let reset = match doc.get("reset") {
            None => false,
            Some(v) => v.as_bool().ok_or_else(|| {
                ApiError::bad_request(codes::INVALID_FIELD, "reset must be a boolean")
            })?,
        };
        let (decision, calls_so_far) = {
            let mut dispatchers = self
                .dispatchers
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let dispatcher = dispatchers
                .entry(system.name.to_string())
                .or_insert_with(|| Dispatcher::new(Hysteresis::default()));
            if reset {
                dispatcher.reset();
            }
            let decision = dispatcher.dispatch_with_policy(system, site, &call, policy);
            (decision, dispatcher.stats().calls)
        };
        self.check_deadline(started)?;
        Ok(Json::obj()
            .field("system", system.name.to_string())
            .field("site", site)
            .field("policy", policy.id())
            .field("call", kernel_json(&call.kernel))
            .field("precision", precision_key(call.precision))
            .field("route", decision.route.id())
            .field("verdict", decision.verdict.id())
            .field("predicted_cpu_seconds", decision.predicted_cpu)
            .field("predicted_gpu_seconds", decision.predicted_gpu)
            .field("realized_seconds", decision.realized)
            .field("flip", decision.flipped)
            .field("fault_fallback", decision.fault_fallback)
            .field("calls", calls_so_far)
            .build())
    }

    fn threshold_endpoint(&self, body: &[u8], started: Instant) -> ApiResult {
        let doc = schema::parse_body(body)?;
        let system_id = schema::require_str(&doc, "system")?;
        let system = self.system(system_id).ok_or_else(|| {
            ApiError::bad_request(
                codes::UNKNOWN_SYSTEM,
                format!("unknown system `{system_id}`"),
            )
        })?;
        let problem_id = schema::require_str(&doc, "problem")?;
        let problem = parse_problem_id(problem_id).ok_or_else(|| {
            ApiError::bad_request(
                codes::INVALID_FIELD,
                format!("unknown problem `{problem_id}`"),
            )
        })?;
        let precision = match doc.get("precision") {
            None => Precision::F64,
            Some(v) => v.as_str().and_then(parse_precision).ok_or_else(|| {
                ApiError::bad_request(codes::INVALID_FIELD, "precision must be f32 or f64")
            })?,
        };
        let iterations = schema::optional_u32(&doc, "iterations", 1)?;
        if iterations == 0 || iterations > MAX_ITERATIONS {
            return Err(ApiError::bad_request(
                codes::INVALID_FIELD,
                format!("iterations must be in 1..={MAX_ITERATIONS}"),
            ));
        }
        let min_dim = schema::optional_usize(&doc, "min_dim", 1)?;
        let max_dim = schema::optional_usize(&doc, "max_dim", MAX_SWEEP_DIM)?;
        let step = schema::optional_usize(&doc, "step", 1)?;
        if min_dim == 0 || step == 0 {
            return Err(ApiError::bad_request(
                codes::INVALID_FIELD,
                "min_dim and step must be >= 1",
            ));
        }
        if max_dim < min_dim || max_dim > MAX_SWEEP_DIM {
            return Err(ApiError::bad_request(
                codes::INVALID_FIELD,
                format!("max_dim must be in min_dim..={MAX_SWEEP_DIM}"),
            ));
        }

        let key = format!(
            "{}|{}|{}|{}|{}|{}|{}",
            system.name,
            problem.id(),
            precision_key(precision),
            iterations,
            min_dim,
            max_dim,
            step
        );
        let compute_started = Instant::now();
        // A cache-read failure (the `serve.cache` fault point) is never a
        // request failure: a broken cache degrades to a recompute.
        let cache_hit = match fault::point(fault::sites::SERVE_CACHE) {
            Ok(()) => self.cache.get(&key),
            Err(_) => None,
        };
        let (result, cached) = match cache_hit {
            Some(hit) => ((*hit).clone(), true),
            None => {
                // The bounds were validated above, so the builder cannot
                // fail; routing a failure through the envelope anyway
                // keeps the invariant local.
                let cfg = SweepConfig::builder()
                    .dims(min_dim, max_dim)
                    .iterations(iterations)
                    .step(step)
                    .build()
                    .map_err(|e| ApiError::bad_request(codes::INVALID_FIELD, e.to_string()))?;
                let sweep = self.sweep_with_retry(system, problem, precision, &cfg, started)?;
                let value = threshold_result_json(&sweep);
                ((*self.cache.insert(key, value)).clone(), false)
            }
        };
        let compute_us = compute_started.elapsed().as_micros() as u64;
        self.check_deadline(started)?;
        let Json::Obj(mut fields) = result else {
            return Err(ApiError::new(
                500,
                codes::INTERNAL,
                "threshold encoding was not an object",
            ));
        };
        fields.push(("cached".to_string(), cached.into()));
        fields.push(("compute_us".to_string(), compute_us.into()));
        Ok(Json::Obj(fields))
    }

    /// Runs the threshold sweep, retrying transient backend failures (the
    /// `serve.sweep` fault point) with exponential backoff plus seeded
    /// jitter. Gives up with `503` when [`SWEEP_ATTEMPTS`] are spent or
    /// the request's deadline budget runs out mid-retry.
    fn sweep_with_retry(
        &self,
        system: &SystemModel,
        problem: blob_core::Problem,
        precision: Precision,
        cfg: &SweepConfig,
        started: Instant,
    ) -> Result<blob_core::runner::Sweep, ApiError> {
        for attempt in 0..SWEEP_ATTEMPTS {
            if attempt > 0 {
                Robustness::bump(&self.metrics.robustness.retries);
                self.check_deadline(started)?;
                let jitter_us = {
                    let mut rng = self.jitter.lock().unwrap_or_else(PoisonError::into_inner);
                    rng.next_u64() % 500
                };
                let backoff = BACKOFF_BASE * 2u32.pow(attempt - 1);
                std::thread::sleep(backoff + Duration::from_micros(jitter_us));
            }
            if fault::point(fault::sites::SERVE_SWEEP).is_err() {
                continue;
            }
            return Ok(run_sweep_pooled(
                Arc::new(system.clone()),
                problem,
                precision,
                cfg,
                &self.sweep_pool,
            ));
        }
        Robustness::bump(&self.metrics.robustness.retries_exhausted);
        Err(ApiError::new(
            503,
            codes::RETRIES_EXHAUSTED,
            format!("threshold sweep backend kept failing ({SWEEP_ATTEMPTS} attempts); try again"),
        ))
    }
}

/// The cacheable part of a `/v1/threshold` response: the request echo plus
/// the per-offload threshold table (no per-request fields).
fn threshold_result_json(sweep: &blob_core::runner::Sweep) -> Json {
    let offloads: Vec<Offload> = sweep
        .records
        .first()
        .map(|r| r.gpu.iter().map(|g| g.offload).collect())
        .unwrap_or_default();
    let mut thresholds = Json::obj();
    for &o in &offloads {
        let cell: Json = match sweep.threshold(o) {
            Some(kernel) => {
                let param = sweep
                    .records
                    .iter()
                    .find(|r| r.kernel == kernel)
                    .map(|r| r.param);
                threshold_cell(param, &kernel)
            }
            None => Json::Null,
        };
        thresholds = thresholds.field(offload_key(o), cell);
    }
    Json::obj()
        .field("system", sweep.system.as_str())
        .field("problem", sweep.problem.id())
        .field("precision", precision_key(sweep.precision))
        .field("iterations", sweep.iterations)
        .field("sweep_points", sweep.records.len())
        .field("thresholds", thresholds.build())
        .build()
}

fn threshold_cell(param: Option<usize>, kernel: &Kernel) -> Json {
    let Json::Obj(mut fields) = kernel_json(kernel) else {
        return Json::Null; // kernel_json always returns an object
    };
    if let Some(p) = param {
        fields.insert(0, ("param".to_string(), p.into()));
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> App {
        App::new(16, 4, true)
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            target: path.to_string(),
            headers: vec![],
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_string(),
            target: path.to_string(),
            headers: vec![],
            body: vec![],
        }
    }

    fn body_json(r: &Response) -> Json {
        Json::parse_bytes(&r.body).expect("response body is JSON")
    }

    /// The `error` object of an envelope response.
    fn error_obj(r: &Response) -> Json {
        body_json(r).get("error").cloned().expect("error envelope")
    }

    #[test]
    fn healthz_and_systems() {
        let a = app();
        let (r, label) = a.handle(&get("/healthz"));
        assert_eq!((r.status, label), (200, "healthz"));
        assert_eq!(body_json(&r).get("ok").and_then(Json::as_bool), Some(true));

        let (r, _) = a.handle(&get("/systems"));
        let systems = body_json(&r);
        let items = systems
            .get("systems")
            .and_then(Json::as_arr)
            .unwrap()
            .to_vec();
        assert!(items.len() >= 4);
        let armpl = items
            .iter()
            .find(|s| s.get("id").and_then(Json::as_str) == Some("isambard-ai-armpl"))
            .expect("cpu-only system listed");
        assert_eq!(armpl.get("gpu").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn v1_routes_answer_and_legacy_aliases_carry_deprecation() {
        let a = app();
        for path in ["/v1/healthz", "/v1/systems", "/v1/metrics"] {
            let (r, _) = a.handle(&get(path));
            assert_eq!(r.status, 200, "{path}");
            assert_eq!(r.header("deprecation"), None, "{path} is not deprecated");
        }
        let (r, label) = a.handle(&get("/healthz"));
        assert_eq!((r.status, label), (200, "healthz"));
        assert_eq!(r.header("deprecation"), Some("true"));
        // v1 advise answers identically to the legacy alias
        let body = r#"{"system":"dawn","op":"gemm","m":64,"n":64,"k":64,"precision":"f32"}"#;
        let (v1, _) = a.handle(&post("/v1/advise", body));
        let (old, _) = a.handle(&post("/advise", body));
        assert_eq!(v1.status, 200);
        assert_eq!(old.status, 200);
        assert_eq!(old.header("deprecation"), Some("true"));
        assert_eq!(
            body_json(&v1).get("verdict"),
            body_json(&old).get("verdict")
        );
        // "/v1healthz" is not a v1 route — and not a legacy one either
        let (r, _) = a.handle(&get("/v1healthz"));
        assert_eq!(r.status, 404);
    }

    #[test]
    fn every_response_carries_a_trace_id_header() {
        let a = app();
        let (ok, _) = a.handle(&get("/v1/healthz"));
        let id = ok.header(envelope::TRACE_HEADER).expect("trace header");
        assert_eq!(id.len(), 16);
        assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
        let (ok2, _) = a.handle(&get("/v1/healthz"));
        assert_ne!(ok2.header(envelope::TRACE_HEADER), Some(id));
    }

    #[test]
    fn error_envelope_has_stable_code_and_matching_trace_id() {
        let a = app();
        let (r, label) = a.handle(&get("/nope"));
        assert_eq!((r.status, label), (404, "other"));
        let err = error_obj(&r);
        assert_eq!(err.get("code").and_then(Json::as_str), Some("not_found"));
        assert!(err.get("message").and_then(Json::as_str).is_some());
        assert_eq!(
            err.get("trace_id").and_then(Json::as_str),
            r.header(envelope::TRACE_HEADER),
            "envelope trace_id must match the X-Blob-Trace header"
        );

        let (r, _) = a.handle(&get("/v1/advise"));
        assert_eq!(r.status, 405);
        assert_eq!(
            error_obj(&r).get("code").and_then(Json::as_str),
            Some("method_not_allowed")
        );

        let (r, _) = a.handle(&post(
            "/v1/advise",
            r#"{"system":"frontier","op":"gemm","m":1,"n":1,"k":1,"precision":"f32"}"#,
        ));
        assert_eq!(r.status, 400);
        assert_eq!(
            error_obj(&r).get("code").and_then(Json::as_str),
            Some("unknown_system")
        );
    }

    #[test]
    fn trace_endpoint_serves_chrome_trace_json() {
        let _t = trace::TRACE_LOCK
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        trace::disable();
        trace::clear();
        let a = app();
        trace::enable();
        let (r, _) = a.handle(&get("/v1/healthz"));
        assert_eq!(r.status, 200);
        trace::disable();

        let (r, label) = a.handle(&get("/v1/trace"));
        assert_eq!((r.status, label), (200, "trace"));
        let doc = body_json(&r);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(Json::as_str) == Some("serve.request")),
            "traced request must appear"
        );

        // ?last bounds the span count; an unparsable value is a 400
        let (r, _) = a.handle(&get("/v1/trace?last=0"));
        let doc = body_json(&r);
        assert_eq!(
            doc.get("traceEvents")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(0)
        );
        let (r, _) = a.handle(&get("/v1/trace?last=nope"));
        assert_eq!(r.status, 400);
        assert_eq!(
            error_obj(&r).get("code").and_then(Json::as_str),
            Some("invalid_field")
        );
        trace::clear();
    }

    #[test]
    fn advise_returns_a_verdict() {
        let a = app();
        let (r, label) = a.handle(&post(
            "/v1/advise",
            r#"{"system":"isambard-ai","op":"gemm","m":2048,"n":2048,"k":2048,
               "precision":"f32","iterations":32,"offload":"once"}"#,
        ));
        assert_eq!((r.status, label), (200, "advise"));
        let j = body_json(&r);
        assert_eq!(j.get("verdict").and_then(Json::as_str), Some("offload"));
        assert!(j.get("speedup").and_then(Json::as_f64).unwrap() > 2.0);
        assert_eq!(j.get("system").and_then(Json::as_str), Some("Isambard-AI"));
    }

    #[test]
    fn advise_on_cpu_only_system_says_no_gpu() {
        let a = app();
        let (r, _) = a.handle(&post(
            "/advise",
            r#"{"system":"isambard-ai-armpl","op":"gemv","m":512,"n":512,"precision":"f64"}"#,
        ));
        assert_eq!(r.status, 200);
        assert_eq!(
            body_json(&r).get("verdict").and_then(Json::as_str),
            Some("no-gpu")
        );
    }

    #[test]
    fn advise_validation_failures_are_400() {
        let a = app();
        for body in [
            "",                 // empty
            "{not json",        // malformed
            "[1,2]",            // not an object
            r#"{"op":"gemm"}"#, // missing system
            r#"{"system":"frontier","op":"gemm","m":1,"n":1,"k":1,"precision":"f32"}"#,
            r#"{"system":"dawn","op":"axpy","m":1,"n":1,"precision":"f32"}"#,
            r#"{"system":"dawn","op":"gemm","m":0,"n":1,"k":1,"precision":"f32"}"#,
            r#"{"system":"dawn","op":"gemm","m":1,"n":1,"k":1,"precision":"f16"}"#,
            r#"{"system":"dawn","op":"gemm","m":1,"n":1,"k":1,"precision":"f32","offload":"never"}"#,
            r#"{"system":"dawn","op":"gemm","m":1,"n":1,"k":1,"precision":"f32","iterations":0}"#,
        ] {
            let (r, _) = a.handle(&post("/v1/advise", body));
            assert_eq!(r.status, 400, "body {body:?} gave {}", r.status);
            let err = error_obj(&r);
            assert!(err.get("code").and_then(Json::as_str).is_some(), "{body:?}");
        }
    }

    #[test]
    fn threshold_caches_identical_requests() {
        let a = app();
        let body = r#"{"system":"lumi","problem":"gemm_square","precision":"f32",
                       "iterations":8,"max_dim":128}"#;
        let (r1, _) = a.handle(&post("/v1/threshold", body));
        assert_eq!(r1.status, 200);
        let j1 = body_json(&r1);
        assert_eq!(j1.get("cached").and_then(Json::as_bool), Some(false));
        assert_eq!(j1.get("sweep_points").and_then(Json::as_u64), Some(128));

        // the legacy alias shares the cache with the v1 route
        let (r2, _) = a.handle(&post("/threshold", body));
        let j2 = body_json(&r2);
        assert_eq!(j2.get("cached").and_then(Json::as_bool), Some(true));
        // identical payload apart from the per-request fields
        assert_eq!(j1.get("thresholds"), j2.get("thresholds"));
        let stats = a.cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));

        // a different precision is a different key
        let (r3, _) = a.handle(&post(
            "/v1/threshold",
            r#"{"system":"lumi","problem":"gemm_square","precision":"f64",
                "iterations":8,"max_dim":128}"#,
        ));
        assert_eq!(
            body_json(&r3).get("cached").and_then(Json::as_bool),
            Some(false)
        );
    }

    #[test]
    fn threshold_validation() {
        let a = app();
        for body in [
            r#"{"system":"dawn","problem":"gemm_cubic"}"#,
            r#"{"system":"dawn","problem":"gemm_square","max_dim":100000}"#,
            r#"{"system":"dawn","problem":"gemm_square","min_dim":0}"#,
            r#"{"system":"dawn","problem":"gemm_square","min_dim":64,"max_dim":8}"#,
            r#"{"system":"dawn","problem":"gemm_square","step":0}"#,
        ] {
            let (r, _) = a.handle(&post("/v1/threshold", body));
            assert_eq!(r.status, 400, "body {body:?}");
            assert_eq!(
                error_obj(&r).get("code").and_then(Json::as_str),
                Some("invalid_field"),
                "body {body:?}"
            );
        }
    }

    #[test]
    fn unknown_route_404_wrong_method_405() {
        let a = app();
        let (r, label) = a.handle(&get("/nope"));
        assert_eq!((r.status, label), (404, "other"));
        let (r, _) = a.handle(&get("/advise"));
        assert_eq!(r.status, 405);
        let (r, _) = a.handle(&post("/healthz", "{}"));
        assert_eq!(r.status, 405);
    }

    #[test]
    fn zero_deadline_budget_fails_compute_endpoints_with_503() {
        let a = App::new(16, 4, true).with_deadline(Duration::ZERO);
        let (r, _) = a.handle(&post(
            "/v1/threshold",
            r#"{"system":"lumi","problem":"gemm_square","max_dim":16,"iterations":1}"#,
        ));
        assert_eq!(r.status, 503);
        let err = error_obj(&r);
        assert_eq!(
            err.get("code").and_then(Json::as_str),
            Some("deadline_exceeded")
        );
        let msg = err.get("message").and_then(Json::as_str).unwrap();
        assert!(msg.contains("deadline"), "{msg}");
        let (r, _) = a.handle(&post(
            "/v1/advise",
            r#"{"system":"dawn","op":"gemm","m":8,"n":8,"k":8,"precision":"f32"}"#,
        ));
        assert_eq!(r.status, 503);
        assert!(
            a.metrics
                .robustness
                .deadline_exceeded
                .load(Ordering::Relaxed)
                >= 2
        );
        // probes are exempt from the budget and report the degradation
        let (r, _) = a.handle(&get("/v1/healthz"));
        assert_eq!(r.status, 200);
        let j = body_json(&r);
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("degraded").and_then(Json::as_bool), Some(true));
        assert!(
            j.get("robustness")
                .and_then(|x| x.get("deadline_exceeded"))
                .and_then(Json::as_u64)
                .unwrap()
                >= 2
        );
    }

    #[test]
    fn shutdown_flag_gated() {
        let gated = App::new(4, 1, false);
        let (r, _) = gated.handle(&post("/v1/shutdown", ""));
        assert_eq!(r.status, 404);
        assert_eq!(
            error_obj(&r).get("code").and_then(Json::as_str),
            Some("shutdown_disabled")
        );
        assert!(!gated.shutdown_requested());

        let open = App::new(4, 1, true);
        let (r, _) = open.handle(&post("/shutdown", ""));
        assert_eq!(r.status, 200);
        assert!(open.shutdown_requested());
    }

    #[test]
    fn dispatch_routes_small_to_cpu_and_large_to_gpu() {
        let a = app();
        let small = r#"{"system":"isambard-ai","site":"t.small","op":"gemm","m":64,"n":64,"k":64,"precision":"f32"}"#;
        let (r, label) = a.handle(&post("/v1/dispatch", small));
        assert_eq!((r.status, label), (200, "dispatch"));
        let j = body_json(&r);
        assert_eq!(j.get("route").and_then(Json::as_str), Some("cpu"));
        assert!(j
            .get("predicted_cpu_seconds")
            .and_then(Json::as_f64)
            .is_some());
        assert!(j
            .get("predicted_gpu_seconds")
            .and_then(Json::as_f64)
            .is_some());
        assert!(j.get("realized_seconds").and_then(Json::as_f64).is_some());
        assert!(r.header(envelope::TRACE_HEADER).is_some());

        let large = r#"{"system":"isambard-ai","site":"t.large","op":"gemm","m":1024,"n":1024,"k":1024,"precision":"f32"}"#;
        let (r, _) = a.handle(&post("/v1/dispatch", large));
        let j = body_json(&r);
        assert_eq!(j.get("route").and_then(Json::as_str), Some("gpu"));
        assert_eq!(j.get("calls").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn dispatch_state_persists_across_requests_and_reset_clears_it() {
        let a = app();
        let body = r#"{"system":"isambard-ai","site":"warm","op":"gemm","m":1024,"n":1024,"k":1024,"precision":"f64"}"#;
        let (r1, _) = a.handle(&post("/v1/dispatch", body));
        let (r2, _) = a.handle(&post("/v1/dispatch", body));
        let t1 = body_json(&r1)
            .get("realized_seconds")
            .and_then(Json::as_f64)
            .unwrap();
        let t2 = body_json(&r2)
            .get("realized_seconds")
            .and_then(Json::as_f64)
            .unwrap();
        assert!(t2 < t1, "warm pages must skip migration: {t2} !< {t1}");
        // reset starts the dispatcher fresh: cold again, counter back to 1
        let reset = r#"{"system":"isambard-ai","site":"warm","op":"gemm","m":1024,"n":1024,"k":1024,"precision":"f64","reset":true}"#;
        let (r3, _) = a.handle(&post("/v1/dispatch", reset));
        let j = body_json(&r3);
        let t3 = j.get("realized_seconds").and_then(Json::as_f64).unwrap();
        assert_eq!(j.get("calls").and_then(Json::as_u64), Some(1));
        assert_eq!(t3.to_bits(), t1.to_bits(), "reset reproduces the cold run");
    }

    #[test]
    fn dispatch_cpu_only_system_and_forced_policy() {
        let a = app();
        let body = r#"{"system":"isambard-ai-armpl","site":"x","op":"gemm","m":1024,"n":1024,"k":1024,"precision":"f32"}"#;
        let (r, _) = a.handle(&post("/v1/dispatch", body));
        let j = body_json(&r);
        assert_eq!(j.get("route").and_then(Json::as_str), Some("cpu"));
        assert_eq!(j.get("verdict").and_then(Json::as_str), Some("no-gpu"));
        assert!(j.get("predicted_gpu_seconds").unwrap().is_null());

        let forced = r#"{"system":"isambard-ai","site":"x","op":"gemm","m":64,"n":64,"k":64,"precision":"f32","policy":"always-gpu"}"#;
        let (r, _) = a.handle(&post("/v1/dispatch", forced));
        let j = body_json(&r);
        assert_eq!(j.get("route").and_then(Json::as_str), Some("gpu"));
        assert_eq!(j.get("policy").and_then(Json::as_str), Some("always-gpu"));
    }

    #[test]
    fn dispatch_rejects_bad_requests_with_the_envelope() {
        let a = app();
        // unknown system
        let (r, _) = a.handle(&post(
            "/v1/dispatch",
            r#"{"system":"nope","op":"gemm","m":8,"n":8,"k":8,"precision":"f32"}"#,
        ));
        assert_eq!(r.status, 400);
        assert_eq!(
            error_obj(&r).get("code").and_then(Json::as_str),
            Some("unknown_system")
        );
        // bad policy
        let (r, _) = a.handle(&post(
            "/v1/dispatch",
            r#"{"system":"dawn","op":"gemm","m":8,"n":8,"k":8,"precision":"f32","policy":"sometimes"}"#,
        ));
        assert_eq!(r.status, 400);
        assert_eq!(
            error_obj(&r).get("code").and_then(Json::as_str),
            Some("invalid_field")
        );
        assert!(error_obj(&r)
            .get("trace_id")
            .and_then(Json::as_str)
            .is_some());
        // wrong method
        let (r, _) = a.handle(&get("/v1/dispatch"));
        assert_eq!(r.status, 405);
    }
}
