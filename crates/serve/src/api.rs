//! The advisor API: request decoding, routing, and handlers for every
//! endpoint, independent of the transport (the server calls [`App::handle`]
//! with a parsed [`Request`] and writes back whatever [`Response`] comes
//! out — tests can do the same without a socket).
//!
//! Endpoints:
//!
//! | route | method | body |
//! |-------|--------|------|
//! | `/advise` | POST | BLAS call + iterations + offload → verdict |
//! | `/threshold` | POST | problem + system + sweep config → cached threshold table |
//! | `/systems` | GET | — |
//! | `/healthz` | GET | — |
//! | `/metrics` | GET | — |
//! | `/shutdown` | POST | — (only when enabled; used by CI and the bench) |

use crate::cache::ShardedCache;
use crate::http::{Request, Response};
use crate::metrics::{Metrics, Robustness};
use blob_core::backend::Backend;
use blob_core::fault;
use blob_core::rng::XorShift64;
use blob_core::runner::{run_sweep_pooled, SweepConfig, ThreadPool};
use blob_core::wire::{
    advice_json, kernel_json, offload_key, parse_precision, parse_problem_id, precision_key, Json,
};
use blob_core::{advise, Offload, Precision};
use blob_sim::{presets, BlasCall, Kernel, SystemModel};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The largest dimension `/threshold` will sweep — the paper's own `-d`
/// ceiling, which bounds a miss at one 4096-point sweep.
pub const MAX_SWEEP_DIM: usize = 4096;

/// The largest iteration count a request may ask for.
pub const MAX_ITERATIONS: u32 = 1_000_000;

/// Default per-request deadline budget for the compute endpoints
/// (`POST /advise`, `POST /threshold`); exceeded → `503` and the
/// `deadline_exceeded` counter. `/healthz` and `/metrics` are exempt so
/// probes keep working while the service digests a heavy sweep.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(10);

/// Attempts (first try + retries) at the threshold sweep when the
/// backend fails transiently (the `serve.sweep` fault point).
const SWEEP_ATTEMPTS: u32 = 3;

/// Base of the exponential retry backoff: 2 ms, 4 ms, … plus seeded
/// jitter so synchronized clients do not retry in lockstep.
const BACKOFF_BASE: Duration = Duration::from_millis(2);

/// Seed for the retry-jitter stream (deterministic like everything else;
/// see `blob_core::rng`).
const JITTER_SEED: u64 = 0x5EED_0F_B10B;

/// The systems the service can answer for: the three evaluation systems of
/// the paper plus the CPU-only Isambard-AI configuration (exercises the
/// `no-gpu` verdict) and the two extension systems.
pub fn default_systems() -> Vec<(String, SystemModel)> {
    vec![
        ("dawn".to_string(), presets::dawn()),
        ("lumi".to_string(), presets::lumi()),
        ("isambard-ai".to_string(), presets::isambard_ai()),
        (
            "isambard-ai-armpl".to_string(),
            presets::isambard_ai_armpl(),
        ),
        ("mi300a".to_string(), presets::mi300a()),
        ("a100".to_string(), presets::a100_workstation()),
    ]
}

/// The service state shared by every worker thread.
pub struct App {
    systems: Vec<(String, SystemModel)>,
    /// Threshold-sweep cache, keyed by the full request tuple.
    pub cache: ShardedCache<Json>,
    /// The live metrics registry.
    pub metrics: Metrics,
    allow_shutdown: bool,
    shutdown: AtomicBool,
    /// Persistent worker pool for threshold sweeps on cache misses: sweep
    /// points of one request are measured in parallel (the models are
    /// analytic, so the fan-out cannot perturb the numbers).
    sweep_pool: ThreadPool,
    /// Per-request budget for the compute endpoints.
    deadline: Duration,
    /// Seeded jitter stream for retry backoff.
    jitter: Mutex<XorShift64>,
}

/// A handler failure that maps to an HTTP status.
struct ApiError {
    status: u16,
    message: String,
}

impl ApiError {
    fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }
}

type ApiResult = Result<Json, ApiError>;

impl App {
    /// Builds the app with the default system registry.
    pub fn new(cache_entries: usize, cache_shards: usize, allow_shutdown: bool) -> Self {
        Self {
            systems: default_systems(),
            cache: ShardedCache::new(cache_entries, cache_shards),
            metrics: Metrics::new(),
            allow_shutdown,
            shutdown: AtomicBool::new(false),
            sweep_pool: ThreadPool::with_default_parallelism(),
            deadline: DEFAULT_DEADLINE,
            jitter: Mutex::new(XorShift64::new(JITTER_SEED)),
        }
    }

    /// Overrides the per-request deadline budget (see [`DEFAULT_DEADLINE`]).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// True once a (permitted) `/shutdown` request has been served; the
    /// server polls this after each request.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn system(&self, id: &str) -> Option<&SystemModel> {
        let want = id.to_ascii_lowercase();
        self.systems
            .iter()
            .find(|(sid, m)| *sid == want || m.name.eq_ignore_ascii_case(id))
            .map(|(_, m)| m)
    }

    /// Routes one request; returns the response and the metrics label.
    /// Latency/status accounting is the caller's job (it owns the clock).
    ///
    /// A panic anywhere in routing or a handler (a bug, or the
    /// `serve.handle` fault point's `panic` action) is contained here and
    /// answered with a `500` — the connection and the worker survive, and
    /// the `handler_panics` counter records the save.
    pub fn handle(&self, req: &Request) -> (Response, &'static str) {
        match catch_unwind(AssertUnwindSafe(|| self.route(req))) {
            Ok(outcome) => outcome,
            Err(_) => {
                Robustness::bump(&self.metrics.robustness.handler_panics);
                (
                    error_response(500, "handler panicked; the request was aborted"),
                    "other",
                )
            }
        }
    }

    fn route(&self, req: &Request) -> (Response, &'static str) {
        // The `serve.handle` fault point sits in front of dispatch: an
        // `error` rule degrades the request to a clean 500, a `panic`
        // rule exercises the containment in `handle`.
        if let Err(e) = fault::point(fault::sites::SERVE_HANDLE) {
            return (error_response(500, &e.to_string()), "other");
        }
        let started = Instant::now();
        let (label, result) = match (req.method.as_str(), req.path()) {
            ("GET", "/healthz") => ("healthz", self.healthz()),
            ("GET", "/systems") => ("systems", self.systems_endpoint()),
            ("GET", "/metrics") => ("metrics", self.metrics_endpoint()),
            ("POST", "/advise") => ("advise", self.advise_endpoint(&req.body, started)),
            ("POST", "/threshold") => ("threshold", self.threshold_endpoint(&req.body, started)),
            ("POST", "/shutdown") => ("shutdown", self.shutdown_endpoint()),
            (_, "/healthz" | "/systems" | "/metrics") | (_, "/advise" | "/threshold") => (
                "other",
                Err(ApiError {
                    status: 405,
                    message: "method not allowed for this route".to_string(),
                }),
            ),
            _ => (
                "other",
                Err(ApiError {
                    status: 404,
                    message: format!("no such route: {}", req.path()),
                }),
            ),
        };
        let response = match result {
            Ok(body) => Response::json(200, body.encode()),
            Err(e) => error_response(e.status, &e.message),
        };
        (response, label)
    }

    fn healthz(&self) -> ApiResult {
        // `ok` stays true even when degraded: degraded means "absorbed
        // faults and kept serving", which is exactly what a liveness
        // probe should not kill the process over.
        let robustness = &self.metrics.robustness;
        Ok(Json::obj()
            .field("ok", true)
            .field("service", "blob-serve")
            .field("systems", self.systems.len())
            .field("degraded", robustness.degraded())
            .field("robustness", robustness.to_json())
            .build())
    }

    fn systems_endpoint(&self) -> ApiResult {
        let items: Vec<Json> = self
            .systems
            .iter()
            .map(|(id, m)| {
                let offloads: Vec<Json> = m
                    .offloads()
                    .into_iter()
                    .map(|o| offload_key(o).into())
                    .collect();
                Json::obj()
                    .field("id", id.as_str())
                    .field("name", m.name.to_string())
                    .field("gpu", !offloads.is_empty())
                    .field("offloads", Json::Arr(offloads))
                    .build()
            })
            .collect();
        Ok(Json::obj().field("systems", Json::Arr(items)).build())
    }

    fn metrics_endpoint(&self) -> ApiResult {
        Ok(self.metrics.to_json(&self.cache.stats()))
    }

    fn shutdown_endpoint(&self) -> ApiResult {
        if !self.allow_shutdown {
            return Err(ApiError {
                status: 404,
                message: "shutdown endpoint is disabled (start with --allow-remote-shutdown)"
                    .to_string(),
            });
        }
        self.shutdown.store(true, Ordering::SeqCst);
        Ok(Json::obj().field("shutting_down", true).build())
    }

    /// Fails the request with `503` once its deadline budget is spent.
    /// Checked after compute and between retries — a request that is
    /// already over budget must not burn more backend time.
    fn check_deadline(&self, started: Instant) -> Result<(), ApiError> {
        if started.elapsed() > self.deadline {
            Robustness::bump(&self.metrics.robustness.deadline_exceeded);
            return Err(ApiError {
                status: 503,
                message: format!(
                    "request exceeded its deadline budget of {} ms",
                    self.deadline.as_millis()
                ),
            });
        }
        Ok(())
    }

    fn advise_endpoint(&self, body: &[u8], started: Instant) -> ApiResult {
        let doc = parse_body(body)?;
        let system_id = require_str(&doc, "system")?;
        let system = self
            .system(system_id)
            .ok_or_else(|| ApiError::bad_request(format!("unknown system `{system_id}`")))?;
        let call = parse_call(&doc)?;
        let iterations = optional_u32(&doc, "iterations", 1)?;
        if iterations == 0 || iterations > MAX_ITERATIONS {
            return Err(ApiError::bad_request(format!(
                "iterations must be in 1..={MAX_ITERATIONS}"
            )));
        }
        let offload = match doc.get("offload") {
            None => Offload::TransferOnce,
            Some(v) => v
                .as_str()
                .and_then(|s| s.parse::<Offload>().ok())
                .ok_or_else(|| ApiError::bad_request("offload must be one of once|always|usm"))?,
        };
        let advice = advise(system, &call, iterations, offload);
        self.check_deadline(started)?;
        let Json::Obj(mut fields) = advice_json(&advice) else {
            return Err(ApiError {
                status: 500,
                message: "advice encoding was not an object".to_string(),
            });
        };
        fields.insert(0, ("system".to_string(), system.name.to_string().into()));
        Ok(Json::Obj(fields))
    }

    fn threshold_endpoint(&self, body: &[u8], started: Instant) -> ApiResult {
        let doc = parse_body(body)?;
        let system_id = require_str(&doc, "system")?;
        let system = self
            .system(system_id)
            .ok_or_else(|| ApiError::bad_request(format!("unknown system `{system_id}`")))?;
        let problem_id = require_str(&doc, "problem")?;
        let problem = parse_problem_id(problem_id)
            .ok_or_else(|| ApiError::bad_request(format!("unknown problem `{problem_id}`")))?;
        let precision = match doc.get("precision") {
            None => Precision::F64,
            Some(v) => v
                .as_str()
                .and_then(parse_precision)
                .ok_or_else(|| ApiError::bad_request("precision must be f32 or f64"))?,
        };
        let iterations = optional_u32(&doc, "iterations", 1)?;
        if iterations == 0 || iterations > MAX_ITERATIONS {
            return Err(ApiError::bad_request(format!(
                "iterations must be in 1..={MAX_ITERATIONS}"
            )));
        }
        let min_dim = optional_usize(&doc, "min_dim", 1)?;
        let max_dim = optional_usize(&doc, "max_dim", MAX_SWEEP_DIM)?;
        let step = optional_usize(&doc, "step", 1)?;
        if min_dim == 0 || step == 0 {
            return Err(ApiError::bad_request("min_dim and step must be >= 1"));
        }
        if max_dim < min_dim || max_dim > MAX_SWEEP_DIM {
            return Err(ApiError::bad_request(format!(
                "max_dim must be in min_dim..={MAX_SWEEP_DIM}"
            )));
        }

        let key = format!(
            "{}|{}|{}|{}|{}|{}|{}",
            system.name,
            problem.id(),
            precision_key(precision),
            iterations,
            min_dim,
            max_dim,
            step
        );
        let compute_started = Instant::now();
        // A cache-read failure (the `serve.cache` fault point) is never a
        // request failure: a broken cache degrades to a recompute.
        let cache_hit = match fault::point(fault::sites::SERVE_CACHE) {
            Ok(()) => self.cache.get(&key),
            Err(_) => None,
        };
        let (result, cached) = match cache_hit {
            Some(hit) => ((*hit).clone(), true),
            None => {
                let cfg = SweepConfig::new(min_dim, max_dim, iterations).with_step(step);
                let sweep = self.sweep_with_retry(system, problem, precision, &cfg, started)?;
                let value = threshold_result_json(&sweep);
                ((*self.cache.insert(key, value)).clone(), false)
            }
        };
        let compute_us = compute_started.elapsed().as_micros() as u64;
        self.check_deadline(started)?;
        let Json::Obj(mut fields) = result else {
            return Err(ApiError {
                status: 500,
                message: "threshold encoding was not an object".to_string(),
            });
        };
        fields.push(("cached".to_string(), cached.into()));
        fields.push(("compute_us".to_string(), compute_us.into()));
        Ok(Json::Obj(fields))
    }

    /// Runs the threshold sweep, retrying transient backend failures (the
    /// `serve.sweep` fault point) with exponential backoff plus seeded
    /// jitter. Gives up with `503` when [`SWEEP_ATTEMPTS`] are spent or
    /// the request's deadline budget runs out mid-retry.
    fn sweep_with_retry(
        &self,
        system: &SystemModel,
        problem: blob_core::Problem,
        precision: Precision,
        cfg: &SweepConfig,
        started: Instant,
    ) -> Result<blob_core::runner::Sweep, ApiError> {
        for attempt in 0..SWEEP_ATTEMPTS {
            if attempt > 0 {
                Robustness::bump(&self.metrics.robustness.retries);
                self.check_deadline(started)?;
                let jitter_us = {
                    let mut rng = self.jitter.lock().unwrap_or_else(PoisonError::into_inner);
                    rng.next_u64() % 500
                };
                let backoff = BACKOFF_BASE * 2u32.pow(attempt - 1);
                std::thread::sleep(backoff + Duration::from_micros(jitter_us));
            }
            if fault::point(fault::sites::SERVE_SWEEP).is_err() {
                continue;
            }
            return Ok(run_sweep_pooled(
                Arc::new(system.clone()),
                problem,
                precision,
                cfg,
                &self.sweep_pool,
            ));
        }
        Robustness::bump(&self.metrics.robustness.retries_exhausted);
        Err(ApiError {
            status: 503,
            message: format!(
                "threshold sweep backend kept failing ({SWEEP_ATTEMPTS} attempts); try again"
            ),
        })
    }
}

/// The cacheable part of a `/threshold` response: the request echo plus
/// the per-offload threshold table (no per-request fields).
fn threshold_result_json(sweep: &blob_core::runner::Sweep) -> Json {
    let offloads: Vec<Offload> = sweep
        .records
        .first()
        .map(|r| r.gpu.iter().map(|g| g.offload).collect())
        .unwrap_or_default();
    let mut thresholds = Json::obj();
    for &o in &offloads {
        let cell: Json = match sweep.threshold(o) {
            Some(kernel) => {
                let param = sweep
                    .records
                    .iter()
                    .find(|r| r.kernel == kernel)
                    .map(|r| r.param);
                threshold_cell(param, &kernel)
            }
            None => Json::Null,
        };
        thresholds = thresholds.field(offload_key(o), cell);
    }
    Json::obj()
        .field("system", sweep.system.as_str())
        .field("problem", sweep.problem.id())
        .field("precision", precision_key(sweep.precision))
        .field("iterations", sweep.iterations)
        .field("sweep_points", sweep.records.len())
        .field("thresholds", thresholds.build())
        .build()
}

fn threshold_cell(param: Option<usize>, kernel: &Kernel) -> Json {
    let Json::Obj(mut fields) = kernel_json(kernel) else {
        return Json::Null; // kernel_json always returns an object
    };
    if let Some(p) = param {
        fields.insert(0, ("param".to_string(), p.into()));
    }
    Json::Obj(fields)
}

fn error_response(status: u16, message: &str) -> Response {
    Response::json(
        status,
        Json::obj()
            .field("error", message)
            .field("status", status as u64)
            .build()
            .encode(),
    )
}

fn parse_body(body: &[u8]) -> Result<Json, ApiError> {
    if body.is_empty() {
        return Err(ApiError::bad_request("request body must be a JSON object"));
    }
    let doc =
        Json::parse_bytes(body).map_err(|e| ApiError::bad_request(format!("invalid JSON: {e}")))?;
    match doc {
        Json::Obj(_) => Ok(doc),
        _ => Err(ApiError::bad_request("request body must be a JSON object")),
    }
}

fn require_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, ApiError> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad_request(format!("missing string field `{key}`")))
}

fn optional_u32(doc: &Json, key: &str, default: u32) -> Result<u32, ApiError> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| {
                ApiError::bad_request(format!("`{key}` must be a non-negative integer"))
            }),
    }
}

fn optional_usize(doc: &Json, key: &str, default: usize) -> Result<usize, ApiError> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| {
                ApiError::bad_request(format!("`{key}` must be a non-negative integer"))
            }),
    }
}

/// Decodes the BLAS call from an `/advise` body: `op` (`gemm`/`gemv`),
/// dimensions, `precision`, and optional `alpha`/`beta`.
fn parse_call(doc: &Json) -> Result<BlasCall, ApiError> {
    let op = require_str(doc, "op")?;
    let precision = doc
        .get("precision")
        .and_then(Json::as_str)
        .and_then(parse_precision)
        .ok_or_else(|| ApiError::bad_request("precision must be f32 or f64"))?;
    let dim = |key: &str| -> Result<usize, ApiError> {
        let n = doc
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| ApiError::bad_request(format!("missing dimension `{key}`")))?;
        let n = usize::try_from(n)
            .map_err(|_| ApiError::bad_request(format!("dimension `{key}` is too large")))?;
        if n == 0 || n > MAX_SWEEP_DIM * 16 {
            return Err(ApiError::bad_request(format!(
                "dimension `{key}` must be in 1..={}",
                MAX_SWEEP_DIM * 16
            )));
        }
        Ok(n)
    };
    let mut call = match op {
        "gemm" => BlasCall::gemm(precision, dim("m")?, dim("n")?, dim("k")?),
        "gemv" => BlasCall::gemv(precision, dim("m")?, dim("n")?),
        other => {
            return Err(ApiError::bad_request(format!(
                "op must be gemm or gemv, got `{other}`"
            )))
        }
    };
    if let Some(alpha) = doc.get("alpha") {
        call.alpha = alpha
            .as_f64()
            .ok_or_else(|| ApiError::bad_request("alpha must be a number"))?;
    }
    if let Some(beta) = doc.get("beta") {
        call.beta = beta
            .as_f64()
            .ok_or_else(|| ApiError::bad_request("beta must be a number"))?;
    }
    Ok(call)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> App {
        App::new(16, 4, true)
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            target: path.to_string(),
            headers: vec![],
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_string(),
            target: path.to_string(),
            headers: vec![],
            body: vec![],
        }
    }

    fn body_json(r: &Response) -> Json {
        Json::parse_bytes(&r.body).expect("response body is JSON")
    }

    #[test]
    fn healthz_and_systems() {
        let a = app();
        let (r, label) = a.handle(&get("/healthz"));
        assert_eq!((r.status, label), (200, "healthz"));
        assert_eq!(body_json(&r).get("ok").and_then(Json::as_bool), Some(true));

        let (r, _) = a.handle(&get("/systems"));
        let systems = body_json(&r);
        let items = systems
            .get("systems")
            .and_then(Json::as_arr)
            .unwrap()
            .to_vec();
        assert!(items.len() >= 4);
        let armpl = items
            .iter()
            .find(|s| s.get("id").and_then(Json::as_str) == Some("isambard-ai-armpl"))
            .expect("cpu-only system listed");
        assert_eq!(armpl.get("gpu").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn advise_returns_a_verdict() {
        let a = app();
        let (r, label) = a.handle(&post(
            "/advise",
            r#"{"system":"isambard-ai","op":"gemm","m":2048,"n":2048,"k":2048,
               "precision":"f32","iterations":32,"offload":"once"}"#,
        ));
        assert_eq!((r.status, label), (200, "advise"));
        let j = body_json(&r);
        assert_eq!(j.get("verdict").and_then(Json::as_str), Some("offload"));
        assert!(j.get("speedup").and_then(Json::as_f64).unwrap() > 2.0);
        assert_eq!(j.get("system").and_then(Json::as_str), Some("Isambard-AI"));
    }

    #[test]
    fn advise_on_cpu_only_system_says_no_gpu() {
        let a = app();
        let (r, _) = a.handle(&post(
            "/advise",
            r#"{"system":"isambard-ai-armpl","op":"gemv","m":512,"n":512,"precision":"f64"}"#,
        ));
        assert_eq!(r.status, 200);
        assert_eq!(
            body_json(&r).get("verdict").and_then(Json::as_str),
            Some("no-gpu")
        );
    }

    #[test]
    fn advise_validation_failures_are_400() {
        let a = app();
        for body in [
            "",                 // empty
            "{not json",        // malformed
            "[1,2]",            // not an object
            r#"{"op":"gemm"}"#, // missing system
            r#"{"system":"frontier","op":"gemm","m":1,"n":1,"k":1,"precision":"f32"}"#,
            r#"{"system":"dawn","op":"axpy","m":1,"n":1,"precision":"f32"}"#,
            r#"{"system":"dawn","op":"gemm","m":0,"n":1,"k":1,"precision":"f32"}"#,
            r#"{"system":"dawn","op":"gemm","m":1,"n":1,"k":1,"precision":"f16"}"#,
            r#"{"system":"dawn","op":"gemm","m":1,"n":1,"k":1,"precision":"f32","offload":"never"}"#,
            r#"{"system":"dawn","op":"gemm","m":1,"n":1,"k":1,"precision":"f32","iterations":0}"#,
        ] {
            let (r, _) = a.handle(&post("/advise", body));
            assert_eq!(r.status, 400, "body {body:?} gave {}", r.status);
            assert!(body_json(&r).get("error").is_some());
        }
    }

    #[test]
    fn threshold_caches_identical_requests() {
        let a = app();
        let body = r#"{"system":"lumi","problem":"gemm_square","precision":"f32",
                       "iterations":8,"max_dim":128}"#;
        let (r1, _) = a.handle(&post("/threshold", body));
        assert_eq!(r1.status, 200);
        let j1 = body_json(&r1);
        assert_eq!(j1.get("cached").and_then(Json::as_bool), Some(false));
        assert_eq!(j1.get("sweep_points").and_then(Json::as_u64), Some(128));

        let (r2, _) = a.handle(&post("/threshold", body));
        let j2 = body_json(&r2);
        assert_eq!(j2.get("cached").and_then(Json::as_bool), Some(true));
        // identical payload apart from the per-request fields
        assert_eq!(j1.get("thresholds"), j2.get("thresholds"));
        let stats = a.cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));

        // a different precision is a different key
        let (r3, _) = a.handle(&post(
            "/threshold",
            r#"{"system":"lumi","problem":"gemm_square","precision":"f64",
                "iterations":8,"max_dim":128}"#,
        ));
        assert_eq!(
            body_json(&r3).get("cached").and_then(Json::as_bool),
            Some(false)
        );
    }

    #[test]
    fn threshold_validation() {
        let a = app();
        for body in [
            r#"{"system":"dawn","problem":"gemm_cubic"}"#,
            r#"{"system":"dawn","problem":"gemm_square","max_dim":100000}"#,
            r#"{"system":"dawn","problem":"gemm_square","min_dim":0}"#,
            r#"{"system":"dawn","problem":"gemm_square","min_dim":64,"max_dim":8}"#,
            r#"{"system":"dawn","problem":"gemm_square","step":0}"#,
        ] {
            let (r, _) = a.handle(&post("/threshold", body));
            assert_eq!(r.status, 400, "body {body:?}");
        }
    }

    #[test]
    fn unknown_route_404_wrong_method_405() {
        let a = app();
        let (r, label) = a.handle(&get("/nope"));
        assert_eq!((r.status, label), (404, "other"));
        let (r, _) = a.handle(&get("/advise"));
        assert_eq!(r.status, 405);
        let (r, _) = a.handle(&post("/healthz", "{}"));
        assert_eq!(r.status, 405);
    }

    #[test]
    fn zero_deadline_budget_fails_compute_endpoints_with_503() {
        let a = App::new(16, 4, true).with_deadline(Duration::ZERO);
        let (r, _) = a.handle(&post(
            "/threshold",
            r#"{"system":"lumi","problem":"gemm_square","max_dim":16,"iterations":1}"#,
        ));
        assert_eq!(r.status, 503);
        let msg = body_json(&r)
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        assert!(msg.contains("deadline"), "{msg}");
        let (r, _) = a.handle(&post(
            "/advise",
            r#"{"system":"dawn","op":"gemm","m":8,"n":8,"k":8,"precision":"f32"}"#,
        ));
        assert_eq!(r.status, 503);
        assert!(
            a.metrics
                .robustness
                .deadline_exceeded
                .load(Ordering::Relaxed)
                >= 2
        );
        // probes are exempt from the budget and report the degradation
        let (r, _) = a.handle(&get("/healthz"));
        assert_eq!(r.status, 200);
        let j = body_json(&r);
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("degraded").and_then(Json::as_bool), Some(true));
        assert!(
            j.get("robustness")
                .and_then(|x| x.get("deadline_exceeded"))
                .and_then(Json::as_u64)
                .unwrap()
                >= 2
        );
    }

    #[test]
    fn shutdown_flag_gated() {
        let gated = App::new(4, 1, false);
        let (r, _) = gated.handle(&post("/shutdown", ""));
        assert_eq!(r.status, 404);
        assert!(!gated.shutdown_requested());

        let open = App::new(4, 1, true);
        let (r, _) = open.handle(&post("/shutdown", ""));
        assert_eq!(r.status, 200);
        assert!(open.shutdown_requested());
    }
}
