//! `blob-serve`: the long-running offload-advisor service.
//!
//! The CLI answers one question per process; this crate keeps the advisor
//! resident so a cluster scheduler (or a curious user with `curl`) can ask
//! "should this GEMM go to the GPU on this system?" at interactive
//! latency, with repeated threshold sweeps served from a cache.
//!
//! Like the rest of the workspace it has **zero dependencies**: the
//! HTTP/1.1 layer ([`http`]), the sharded LRU cache ([`cache`]), the
//! metrics registry ([`metrics`]) and the JSON wire format
//! ([`blob_core::wire`]) are all hand-rolled on `std`.
//!
//! Layering:
//!
//! - [`http`] — transport: byte streams in, [`http::Request`] out,
//!   [`http::Response`] back, with hard limits and timeouts
//! - [`api`] — the versioned (`/v1/`) endpoints, pure `Request →
//!   Response` (no sockets); legacy bare paths answer with a
//!   `Deprecation` header
//! - [`envelope`] — the uniform JSON error envelope and its stable
//!   error-code vocabulary; every response carries an `X-Blob-Trace` id
//! - [`cache`] / [`metrics`] — shared state behind the API
//! - [`server`] — the TCP accept loop and worker pool tying it together

pub mod api;
pub mod cache;
pub mod envelope;
pub mod http;
pub mod metrics;
pub mod server;

pub use api::App;
pub use server::{Config, Server};
