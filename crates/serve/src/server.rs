//! The TCP front end: a blocking accept loop feeding a fixed worker pool,
//! with graceful shutdown.
//!
//! Threading model: one acceptor thread owns the listener and pushes
//! connections into a bounded channel; `threads` workers pull from it and
//! drive each connection through [`Conn`] (keep-alive, so one worker serves
//! a whole session). Shutdown — from [`Server::shutdown`] or a permitted
//! `POST /shutdown` — raises a stop flag and then *connects to the
//! listener itself*, which is the portable, `unsafe`-free way to unblock a
//! blocking `accept(2)` without OS signal machinery.

use crate::api::App;
use crate::http::{Conn, Limits, RecvError, Response};
use blob_core::wire::Json;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration, fed by `gpu-blob serve` flags.
#[derive(Debug, Clone)]
pub struct Config {
    /// Bind address, e.g. `127.0.0.1:8787` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker-pool size (floored at 1).
    pub threads: usize,
    /// Total threshold-cache capacity in entries.
    pub cache_entries: usize,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Per-connection body cap and socket timeouts.
    pub limits: Limits,
    /// Whether `POST /shutdown` is honoured (CI and benches use it).
    pub allow_shutdown: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8787".to_string(),
            threads: 4,
            cache_entries: 256,
            cache_shards: 8,
            limits: Limits::default(),
            allow_shutdown: false,
        }
    }
}

/// Raises the stop flag and pokes the listener awake. Clone-cheap; one
/// copy lives in every worker so `/shutdown` can stop the accept loop.
#[derive(Clone)]
struct StopSignal {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl StopSignal {
    fn trigger(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // A throwaway connection unblocks the acceptor's blocking accept().
        // Errors are fine: the listener may already be gone.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }
}

/// A running server. Dropping it does **not** stop it; call
/// [`Server::shutdown`] then [`Server::join`] (or let `/shutdown` do it).
pub struct Server {
    local_addr: SocketAddr,
    app: Arc<App>,
    signal: StopSignal,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr` and starts the acceptor and worker threads.
    pub fn start(cfg: Config) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let app = Arc::new(App::new(
            cfg.cache_entries,
            cfg.cache_shards,
            cfg.allow_shutdown,
        ));
        let signal = StopSignal {
            stop: Arc::new(AtomicBool::new(false)),
            addr: local_addr,
        };
        let threads = cfg.threads.max(1);
        // Bounded: when every worker is busy and the backlog is full, new
        // connections wait in the kernel queue instead of piling up here.
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(threads * 2);
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let rx = Arc::clone(&rx);
            let app = Arc::clone(&app);
            let signal = signal.clone();
            let limits = cfg.limits;
            workers.push(std::thread::spawn(move || {
                worker_loop(&rx, &app, &signal, &limits)
            }));
        }

        let acceptor = {
            let signal = signal.clone();
            std::thread::spawn(move || accept_loop(&listener, &tx, &signal))
        };

        Ok(Server {
            local_addr,
            app,
            signal,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared application state (cache, metrics) — used by the bench
    /// harness to read counters without going through HTTP.
    pub fn app(&self) -> &App {
        &self.app
    }

    /// Requests shutdown: no further connections are accepted; in-flight
    /// sessions finish their current request.
    pub fn shutdown(&self) {
        self.signal.trigger();
    }

    /// Waits for the acceptor and every worker to exit. Call after
    /// [`Server::shutdown`], or rely on `/shutdown` having triggered it.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, signal: &StopSignal) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if signal.stop.load(Ordering::SeqCst) {
                    // `stream` is (usually) the wake-up connection; drop it.
                    break;
                }
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(_) => {
                if signal.stop.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept error (e.g. EMFILE); keep listening.
            }
        }
    }
    // Dropping `tx` here lets the workers drain the queue and exit.
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    app: &App,
    signal: &StopSignal,
    limits: &Limits,
) {
    loop {
        // Hold the lock only for the recv itself, so workers queue fairly.
        let next = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        match next {
            Ok(stream) => serve_connection(stream, app, signal, limits),
            Err(_) => break, // acceptor gone and queue drained
        }
    }
}

/// Drives one connection until it closes, errors, or asks to close.
fn serve_connection(stream: TcpStream, app: &App, signal: &StopSignal, limits: &Limits) {
    let _ = stream.set_read_timeout(Some(limits.read_timeout));
    let _ = stream.set_write_timeout(Some(limits.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut conn = Conn::new(stream);
    loop {
        match conn.read_request(limits) {
            Ok(request) => {
                let in_flight = app.metrics.enter();
                let started = Instant::now();
                let (mut response, label) = app.handle(&request);
                if request.wants_close() {
                    response = response.with_close();
                }
                app.metrics
                    .endpoint(label)
                    .record(response.status, started.elapsed().as_micros() as u64);
                drop(in_flight);
                let close = response.close;
                if conn.write_response(&response).is_err() {
                    return;
                }
                if app.shutdown_requested() {
                    signal.trigger();
                    return;
                }
                if close {
                    return;
                }
            }
            Err(RecvError::Closed) | Err(RecvError::Io(_)) => return,
            Err(e) => {
                // Protocol-level failure: answer once (best effort), close.
                let status = match e {
                    RecvError::Timeout => 408,
                    RecvError::BodyTooLarge => 413,
                    RecvError::UnsupportedEncoding => 501,
                    _ => 400,
                };
                let body = Json::obj()
                    .field("error", e.to_string())
                    .field("status", status as u64)
                    .build()
                    .encode();
                let response = Response::json(status, body).with_close();
                app.metrics.endpoint("other").record(status, 0);
                let _ = conn.write_response(&response);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn test_config() -> Config {
        Config {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            cache_entries: 8,
            cache_shards: 2,
            limits: Limits {
                max_body: 4096,
                read_timeout: Duration::from_millis(500),
                write_timeout: Duration::from_millis(500),
            },
            allow_shutdown: true,
        }
    }

    fn roundtrip(addr: SocketAddr, request: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_healthz_and_shuts_down() {
        let server = Server::start(test_config()).unwrap();
        let addr = server.local_addr();
        let reply = roundtrip(addr, "GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains(r#""ok":true"#), "{reply}");
        server.shutdown();
        server.join();
        // The listener is gone: a fresh connection must fail (possibly
        // after the OS drains its backlog, so allow a couple of retries).
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200))
                .map(|mut s| {
                    // Even if the backlog accepted us, nobody will answer.
                    let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
                    let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
                    let mut buf = [0u8; 1];
                    !matches!(s.read(&mut buf), Ok(n) if n > 0)
                })
                .unwrap_or(true)
        );
    }

    #[test]
    fn post_shutdown_stops_the_server() {
        let server = Server::start(test_config()).unwrap();
        let addr = server.local_addr();
        let reply = roundtrip(addr, "POST /shutdown HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(reply.contains("shutting_down"), "{reply}");
        server.join(); // returns because /shutdown triggered the signal
    }

    /// Reads exactly one HTTP response (head + content-length body).
    fn read_one_response(s: &mut TcpStream) -> String {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 512];
        let head_end = loop {
            if let Some(at) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break at + 4;
            }
            let n = s.read(&mut chunk).unwrap();
            assert!(n > 0, "eof before response head");
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
        let body_len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        while buf.len() < head_end + body_len {
            let n = s.read(&mut chunk).unwrap();
            assert!(n > 0, "eof before response body");
            buf.extend_from_slice(&chunk[..n]);
        }
        String::from_utf8_lossy(&buf[..head_end + body_len]).to_string()
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let server = Server::start(test_config()).unwrap();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        for _ in 0..3 {
            s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let text = read_one_response(&mut s);
            assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
            assert!(text.contains("connection: keep-alive"), "{text}");
        }
        server.shutdown();
        server.join();
    }
}
