//! The TCP front end: a blocking accept loop feeding a supervised worker
//! pool, with graceful shutdown, load shedding, and panic containment.
//!
//! Threading model: one acceptor thread owns the listener and pushes
//! connections into a bounded channel; `threads` workers pull from it and
//! drive each connection through [`Conn`] (keep-alive, so one worker serves
//! a whole session). Shutdown — from [`Server::shutdown`] or a permitted
//! `POST /shutdown` — raises a stop flag and then *connects to the
//! listener itself*, which is the portable, `unsafe`-free way to unblock a
//! blocking `accept(2)` without OS signal machinery.
//!
//! Self-healing (see `DESIGN.md` §12):
//!
//! - a full accept queue sheds the connection with a canned `503` instead
//!   of blocking the acceptor (`shed` counter)
//! - a panic that escapes one connection is contained; the worker moves to
//!   the next connection (`worker_panics` counter)
//! - a worker that dies anyway (the `serve.worker` fault point, or a
//!   panic outside containment) is joined and respawned by a supervisor
//!   thread (`workers_replaced` counter)

use crate::api::App;
use crate::envelope::{self, codes};
use crate::http::{Conn, Limits, RecvError};
use crate::metrics::Robustness;
use blob_core::fault;
use blob_core::trace;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the supervisor sweeps for dead workers. Worst-case serving
/// gap after every worker dies at once is one period plus respawn time.
const SUPERVISE_PERIOD: Duration = Duration::from_millis(25);

/// Server configuration, fed by `gpu-blob serve` flags.
#[derive(Debug, Clone)]
pub struct Config {
    /// Bind address, e.g. `127.0.0.1:8787` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker-pool size (floored at 1).
    pub threads: usize,
    /// Total threshold-cache capacity in entries.
    pub cache_entries: usize,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Per-connection body cap and socket timeouts.
    pub limits: Limits,
    /// Whether `POST /shutdown` is honoured (CI and benches use it).
    pub allow_shutdown: bool,
    /// Per-request deadline budget for the compute endpoints
    /// (see [`crate::api::DEFAULT_DEADLINE`]).
    pub deadline: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8787".to_string(),
            threads: 4,
            cache_entries: 256,
            cache_shards: 8,
            limits: Limits::default(),
            allow_shutdown: false,
            deadline: crate::api::DEFAULT_DEADLINE,
        }
    }
}

/// Raises the stop flag and pokes the listener awake. Clone-cheap; one
/// copy lives in every worker so `/shutdown` can stop the accept loop.
#[derive(Clone)]
struct StopSignal {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl StopSignal {
    fn trigger(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // A throwaway connection unblocks the acceptor's blocking accept().
        // Errors are fine: the listener may already be gone.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }
}

/// A running server. Dropping it does **not** stop it; call
/// [`Server::shutdown`] then [`Server::join`] (or let `/shutdown` do it).
pub struct Server {
    local_addr: SocketAddr,
    app: Arc<App>,
    signal: StopSignal,
    acceptor: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Spawns one connection worker (initial start-up and supervisor
/// respawns go through the same path).
fn spawn_worker(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    app: &Arc<App>,
    signal: &StopSignal,
    limits: Limits,
) -> JoinHandle<()> {
    let rx = Arc::clone(rx);
    let app = Arc::clone(app);
    let signal = signal.clone();
    // blob-check: allow(panic-reachability): the only unguarded panic is the fault plane's injected `serve.worker` death, and the supervisor respawns the worker
    std::thread::spawn(move || worker_loop(&rx, &app, &signal, &limits))
}

impl Server {
    /// Binds `cfg.addr` and starts the acceptor, worker, and supervisor
    /// threads.
    pub fn start(cfg: Config) -> io::Result<Server> {
        // Arm the trace plane so every request records a `serve.request`
        // span, browsable live at `GET /v1/trace`.
        trace::enable();
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let app = Arc::new(
            App::new(cfg.cache_entries, cfg.cache_shards, cfg.allow_shutdown)
                .with_deadline(cfg.deadline),
        );
        let signal = StopSignal {
            stop: Arc::new(AtomicBool::new(false)),
            addr: local_addr,
        };
        let threads = cfg.threads.max(1);
        // Bounded: when every worker is busy and the queue is full, the
        // acceptor sheds new connections with a canned 503 instead of
        // letting them pile up unanswered.
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(threads * 2);
        let rx = Arc::new(Mutex::new(rx));

        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(
            (0..threads)
                .map(|_| spawn_worker(&rx, &app, &signal, cfg.limits))
                .collect(),
        ));

        let acceptor = {
            let signal = signal.clone();
            let app = Arc::clone(&app);
            // blob-check: allow(panic-reachability): the only unguarded panic is an operator-armed `serve.accept` injection; killing the acceptor is that drill's purpose
            std::thread::spawn(move || accept_loop(&listener, &tx, &signal, &app))
        };

        // The supervisor replaces workers that died (injected faults or
        // real bugs), so a burst of worker deaths degrades throughput for
        // one SUPERVISE_PERIOD instead of permanently shrinking the pool.
        let supervisor = {
            let workers = Arc::clone(&workers);
            let rx = Arc::clone(&rx);
            let app = Arc::clone(&app);
            let signal = signal.clone();
            let limits = cfg.limits;
            std::thread::spawn(move || loop {
                std::thread::sleep(SUPERVISE_PERIOD);
                if signal.stop.load(Ordering::SeqCst) {
                    return;
                }
                let mut guard = workers.lock().unwrap_or_else(PoisonError::into_inner);
                for slot in guard.iter_mut() {
                    if slot.is_finished() && !signal.stop.load(Ordering::SeqCst) {
                        let dead =
                            std::mem::replace(slot, spawn_worker(&rx, &app, &signal, limits));
                        let _ = dead.join();
                        Robustness::bump(&app.metrics.robustness.workers_replaced);
                    }
                }
            })
        };

        Ok(Server {
            local_addr,
            app,
            signal,
            acceptor: Some(acceptor),
            supervisor: Some(supervisor),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared application state (cache, metrics) — used by the bench
    /// harness to read counters without going through HTTP.
    pub fn app(&self) -> &App {
        &self.app
    }

    /// Requests shutdown: no further connections are accepted; in-flight
    /// sessions finish their current request.
    pub fn shutdown(&self) {
        self.signal.trigger();
    }

    /// Waits for the acceptor, supervisor, and every worker to exit. Call
    /// after [`Server::shutdown`], or rely on `/shutdown` having
    /// triggered it.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
            guard.drain(..).collect()
        };
        for worker in handles {
            let _ = worker.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, signal: &StopSignal, app: &App) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if signal.stop.load(Ordering::SeqCst) {
                    // `stream` is (usually) the wake-up connection; drop it.
                    break;
                }
                // The `serve.accept` fault point models a connection lost
                // right after accept(2): the stream is dropped unanswered.
                // blob-check: allow(panic-reachability): a `panic` rule here is operator-armed chaos aimed at the acceptor itself
                if fault::point(fault::sites::SERVE_ACCEPT).is_err() {
                    continue;
                }
                match tx.try_send(stream) {
                    Ok(()) => {}
                    // Queue saturated: shed with a canned 503 rather than
                    // blocking the acceptor (which would stall *every*
                    // pending connection behind one overload burst).
                    Err(TrySendError::Full(stream)) => shed(stream, app),
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(_) => {
                if signal.stop.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept error (e.g. EMFILE); keep listening.
            }
        }
    }
    // Dropping `tx` here lets the workers drain the queue and exit.
}

/// Answers a shed connection with a canned 503 (best effort, bounded by
/// a short write timeout so a slow peer cannot stall the acceptor).
fn shed(stream: TcpStream, app: &App) {
    Robustness::bump(&app.metrics.robustness.shed);
    app.metrics.endpoint("other").record(503, 0);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let response = envelope::error_response(
        503,
        codes::SHED,
        "server overloaded; request shed",
        &trace::mint_trace_id(),
    )
    .with_close();
    let mut conn = Conn::new(stream);
    let _ = conn.write_response(&response);
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    app: &App,
    signal: &StopSignal,
    limits: &Limits,
) {
    loop {
        // The `serve.worker` fault point models the worker thread dying
        // between connections: an `error` rule kills it cleanly, a
        // `panic` rule unwinds it. Either way the supervisor respawns a
        // replacement, and because the point sits *before* the dequeue,
        // no accepted connection is ever lost with it.
        // blob-check: allow(panic-reachability): a `panic` rule here is the injected worker death the supervisor is built to absorb
        if fault::point(fault::sites::SERVE_WORKER).is_err() {
            return;
        }
        // Hold the lock only for the recv itself, so workers queue fairly.
        let next = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        match next {
            Ok(stream) => {
                // Contain a panic that escapes the connection (handler
                // panics are already caught in `App::handle`; this guards
                // the HTTP layer itself): the connection dies, the worker
                // serves the next one.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    serve_connection(stream, app, signal, limits)
                }));
                if outcome.is_err() {
                    Robustness::bump(&app.metrics.robustness.worker_panics);
                }
            }
            Err(_) => break, // acceptor gone and queue drained
        }
    }
}

/// Drives one connection until it closes, errors, or asks to close.
fn serve_connection(stream: TcpStream, app: &App, signal: &StopSignal, limits: &Limits) {
    let _ = stream.set_read_timeout(Some(limits.read_timeout));
    let _ = stream.set_write_timeout(Some(limits.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut conn = Conn::new(stream);
    loop {
        match conn.read_request(limits) {
            Ok(request) => {
                let in_flight = app.metrics.enter();
                let started = Instant::now();
                let (mut response, label) = app.handle(&request);
                if request.wants_close() {
                    response = response.with_close();
                }
                app.metrics
                    .endpoint(label)
                    .record(response.status, started.elapsed().as_micros() as u64);
                drop(in_flight);
                let close = response.close;
                if conn.write_response(&response).is_err() {
                    return;
                }
                if app.shutdown_requested() {
                    signal.trigger();
                    return;
                }
                if close {
                    return;
                }
            }
            Err(RecvError::Closed) | Err(RecvError::Io(_)) => return,
            Err(e) => {
                // Protocol-level failure: answer once (best effort), close.
                let (status, code) = match e {
                    RecvError::Timeout => (408, codes::TIMEOUT),
                    RecvError::BodyTooLarge => (413, codes::PAYLOAD_TOO_LARGE),
                    RecvError::UnsupportedEncoding => (501, codes::UNSUPPORTED_ENCODING),
                    _ => (400, codes::MALFORMED_REQUEST),
                };
                let response =
                    envelope::error_response(status, code, &e.to_string(), &trace::mint_trace_id())
                        .with_close();
                app.metrics.endpoint("other").record(status, 0);
                let _ = conn.write_response(&response);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn test_config() -> Config {
        Config {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            cache_entries: 8,
            cache_shards: 2,
            limits: Limits {
                max_body: 4096,
                read_timeout: Duration::from_millis(500),
                write_timeout: Duration::from_millis(500),
            },
            allow_shutdown: true,
            deadline: crate::api::DEFAULT_DEADLINE,
        }
    }

    fn roundtrip(addr: SocketAddr, request: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_healthz_and_shuts_down() {
        let server = Server::start(test_config()).unwrap();
        let addr = server.local_addr();
        let reply = roundtrip(addr, "GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains(r#""ok":true"#), "{reply}");
        server.shutdown();
        server.join();
        // The listener is gone: a fresh connection must fail (possibly
        // after the OS drains its backlog, so allow a couple of retries).
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200))
                .map(|mut s| {
                    // Even if the backlog accepted us, nobody will answer.
                    let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
                    let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
                    let mut buf = [0u8; 1];
                    !matches!(s.read(&mut buf), Ok(n) if n > 0)
                })
                .unwrap_or(true)
        );
    }

    #[test]
    fn post_shutdown_stops_the_server() {
        let server = Server::start(test_config()).unwrap();
        let addr = server.local_addr();
        let reply = roundtrip(addr, "POST /shutdown HTTP/1.1\r\nconnection: close\r\n\r\n");
        assert!(reply.contains("shutting_down"), "{reply}");
        server.join(); // returns because /shutdown triggered the signal
    }

    /// Reads exactly one HTTP response (head + content-length body).
    fn read_one_response(s: &mut TcpStream) -> String {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 512];
        let head_end = loop {
            if let Some(at) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break at + 4;
            }
            let n = s.read(&mut chunk).unwrap();
            assert!(n > 0, "eof before response head");
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
        let body_len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        while buf.len() < head_end + body_len {
            let n = s.read(&mut chunk).unwrap();
            assert!(n > 0, "eof before response body");
            buf.extend_from_slice(&chunk[..n]);
        }
        String::from_utf8_lossy(&buf[..head_end + body_len]).to_string()
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let server = Server::start(test_config()).unwrap();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        for _ in 0..3 {
            s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let text = read_one_response(&mut s);
            assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
            assert!(text.contains("connection: keep-alive"), "{text}");
        }
        server.shutdown();
        server.join();
    }
}
