//! A sharded LRU cache for threshold sweeps.
//!
//! A `/threshold` miss runs a full sweep — up to 4096 sizes × four timing
//! models — so repeated queries for the same (system, problem, precision,
//! sweep config) must hit memory instead. The cache is sharded by an
//! FNV-1a hash of the key so concurrent workers rarely contend on the same
//! mutex, and each shard evicts its least-recently-used entry on overflow.
//! Hits, misses, and evictions are counted for `/metrics`.
//!
//! Values are handed out as `Arc<V>` so a hit never copies the payload.
//! Two workers missing the same key concurrently may both compute it; the
//! second insert simply replaces the first — acceptable for an idempotent,
//! deterministic computation, and it keeps the fast path lock-short.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A point-in-time view of the cache counters, for `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Live entries right now.
    pub entries: usize,
    /// Total capacity across shards.
    pub capacity: usize,
}

struct Entry<V> {
    value: Arc<V>,
    last_used: u64,
}

struct Shard<V> {
    map: HashMap<String, Entry<V>>,
    /// Monotonic per-shard recency clock.
    tick: u64,
    capacity: usize,
}

impl<V> Shard<V> {
    fn touch(&mut self, key: &str) -> Option<Arc<V>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.value)
        })
    }

    fn insert(&mut self, key: String, value: Arc<V>) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let mut evicted = false;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            // Evict the least-recently-used entry. A linear scan is fine:
            // shards are small (capacity / shard count) and eviction only
            // happens on overflow.
            if let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&lru);
                evicted = true;
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
        evicted
    }
}

/// The sharded LRU cache.
pub struct ShardedCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    capacity: usize,
}

/// FNV-1a, the workspace's standard no-dependency string hash.
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl<V> ShardedCache<V> {
    /// A cache holding at most `capacity` entries across `shards` shards
    /// (both floored at 1; per-shard capacity is the ceiling division so
    /// the total is never below `capacity`).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let capacity = capacity.max(1);
        let per_shard = capacity.div_ceil(shards);
        Self {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        tick: 0,
                        capacity: per_shard,
                    })
                })
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            capacity: per_shard * shards,
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard<V>> {
        &self.shards[(fnv1a(key) as usize) % self.shards.len()]
    }

    fn lock(m: &Mutex<Shard<V>>) -> std::sync::MutexGuard<'_, Shard<V>> {
        // A poisoned shard only means another worker died mid-insert; the
        // map itself is still structurally sound, so keep serving.
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up `key`, refreshing its recency. Counts a hit or a miss.
    pub fn get(&self, key: &str) -> Option<Arc<V>> {
        let found = Self::lock(self.shard(key)).touch(key);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts (or replaces) `key`, evicting the shard's LRU entry when
    /// full. Returns the shared handle to the inserted value.
    pub fn insert(&self, key: String, value: V) -> Arc<V> {
        let value = Arc::new(value);
        let evicted = Self::lock(self.shard(&key)).insert(key, Arc::clone(&value));
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| Self::lock(s).map.len()).sum(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_and_counters() {
        let c: ShardedCache<String> = ShardedCache::new(8, 2);
        assert!(c.get("k").is_none());
        c.insert("k".to_string(), "v".to_string());
        assert_eq!(c.get("k").as_deref(), Some(&"v".to_string()));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.entries), (1, 1, 0, 1));
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        // Single shard so eviction order is fully deterministic.
        let c: ShardedCache<u32> = ShardedCache::new(2, 1);
        c.insert("a".to_string(), 1);
        c.insert("b".to_string(), 2);
        assert!(c.get("a").is_some()); // refresh a → b is now LRU
        c.insert("c".to_string(), 3); // evicts b
        assert!(c.get("b").is_none());
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn replacing_a_key_does_not_evict() {
        let c: ShardedCache<u32> = ShardedCache::new(1, 1);
        c.insert("a".to_string(), 1);
        c.insert("a".to_string(), 2);
        assert_eq!(c.get("a").as_deref(), Some(&2));
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn shards_split_capacity() {
        let c: ShardedCache<u32> = ShardedCache::new(8, 4);
        assert_eq!(c.stats().capacity, 8);
        // capacity 10 over 4 shards rounds up to 3 each
        let c: ShardedCache<u32> = ShardedCache::new(10, 4);
        assert_eq!(c.stats().capacity, 12);
        // degenerate arguments are floored, not panicked on
        let c: ShardedCache<u32> = ShardedCache::new(0, 0);
        assert_eq!(c.stats().capacity, 1);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let c = Arc::new(ShardedCache::<usize>::new(64, 8));
        let mut handles = Vec::new();
        for t in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let key = format!("k{}", (t * 7 + i) % 32);
                    if c.get(&key).is_none() {
                        c.insert(key, i);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 8 * 200);
        assert!(s.entries <= 64);
    }

    #[test]
    fn fnv_spreads_keys() {
        let h1 = fnv1a("dawn|gemm_square|f32");
        let h2 = fnv1a("dawn|gemm_square|f64");
        assert_ne!(h1, h2);
    }
}
