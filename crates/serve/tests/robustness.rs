//! Robustness tests against a real server over real sockets: every way a
//! client can misbehave must produce a clean HTTP error (never a worker
//! panic), and the server must keep serving afterwards.

use blob_core::wire::Json;
use blob_serve::http::Limits;
use blob_serve::{Config, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn start(read_timeout_ms: u64) -> Server {
    Server::start(Config {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        cache_entries: 16,
        cache_shards: 4,
        limits: Limits {
            max_body: 8 * 1024,
            read_timeout: Duration::from_millis(read_timeout_ms),
            write_timeout: Duration::from_millis(read_timeout_ms),
        },
        allow_shutdown: false,
        ..Config::default()
    })
    .expect("bind ephemeral port")
}

/// Sends raw bytes, reads until EOF, returns the whole reply.
fn raw_roundtrip(server: &Server, bytes: &[u8]) -> String {
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.write_all(bytes).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

fn post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

#[test]
fn oversized_body_gets_413_not_a_panic() {
    let server = start(2_000);
    // Declare far more than the 8 KiB limit — the server must answer from
    // the Content-Length header alone, without us sending a single body byte.
    let reply = raw_roundtrip(
        &server,
        b"POST /advise HTTP/1.1\r\ncontent-length: 10000000\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 413 "), "{reply}");
    assert!(reply.contains("connection: close"), "{reply}");
    // the server is still alive
    let reply = raw_roundtrip(
        &server,
        b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
    server.shutdown();
    server.join();
}

#[test]
fn malformed_json_gets_400_not_a_panic() {
    let server = start(2_000);
    for body in ["{\"system\": ", "not json at all", "[1,2,3]", "{}"] {
        let reply = raw_roundtrip(&server, &post("/advise", body));
        assert!(reply.starts_with("HTTP/1.1 400 "), "body {body:?}: {reply}");
        assert!(reply.contains("\"error\""), "{reply}");
    }
    let reply = raw_roundtrip(
        &server,
        b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
    server.shutdown();
    server.join();
}

#[test]
fn malformed_http_gets_400() {
    let server = start(2_000);
    let reply = raw_roundtrip(&server, b"NOT-EVEN HTTP\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 400 "), "{reply}");
    server.shutdown();
    server.join();
}

#[test]
fn unknown_route_404_wrong_method_405_chunked_501() {
    let server = start(2_000);
    let reply = raw_roundtrip(&server, &post("/frobnicate", "{}"));
    assert!(reply.starts_with("HTTP/1.1 404 "), "{reply}");
    let reply = raw_roundtrip(
        &server,
        b"DELETE /advise HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 405 "), "{reply}");
    let reply = raw_roundtrip(
        &server,
        b"POST /advise HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 501 "), "{reply}");
    server.shutdown();
    server.join();
}

/// Splits a raw HTTP reply into (head, parsed JSON body).
fn split_reply(reply: &str) -> (&str, Json) {
    let (head, body) = reply.split_once("\r\n\r\n").expect("complete response");
    (head, Json::parse(body).expect("JSON body"))
}

/// Asserts the uniform error envelope and that its `trace_id` matches the
/// `X-Blob-Trace` response header; returns the envelope's `code`.
fn assert_envelope(reply: &str) -> String {
    let (head, doc) = split_reply(reply);
    let header_id = head
        .lines()
        .find_map(|l| l.strip_prefix("x-blob-trace: "))
        .expect("x-blob-trace header")
        .trim()
        .to_string();
    let err = doc.get("error").expect("error envelope");
    assert_eq!(
        err.get("trace_id").and_then(Json::as_str),
        Some(header_id.as_str()),
        "{reply}"
    );
    assert!(
        err.get("message").and_then(Json::as_str).is_some(),
        "{reply}"
    );
    err.get("code").and_then(Json::as_str).unwrap().to_string()
}

#[test]
fn error_envelopes_are_uniform_across_every_layer() {
    let server = start(2_000);
    // 413: answered by the connection layer before the handler runs
    let reply = raw_roundtrip(
        &server,
        b"POST /v1/advise HTTP/1.1\r\ncontent-length: 10000000\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 413 "), "{reply}");
    assert_eq!(assert_envelope(&reply), "payload_too_large");
    // 400: handler-level validation
    let reply = raw_roundtrip(&server, &post("/v1/advise", "not json"));
    assert!(reply.starts_with("HTTP/1.1 400 "), "{reply}");
    assert_eq!(assert_envelope(&reply), "invalid_json");
    // 404: routing miss
    let reply = raw_roundtrip(&server, &post("/v1/frobnicate", "{}"));
    assert!(reply.starts_with("HTTP/1.1 404 "), "{reply}");
    assert_eq!(assert_envelope(&reply), "not_found");
    // 501: unsupported transfer-encoding, also from the connection layer
    let reply = raw_roundtrip(
        &server,
        b"POST /v1/advise HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 501 "), "{reply}");
    assert_eq!(assert_envelope(&reply), "unsupported_encoding");
    server.shutdown();
    server.join();
}

#[test]
fn deadline_exhaustion_envelope_is_a_503_over_a_real_socket() {
    let server = Server::start(Config {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cache_entries: 4,
        cache_shards: 2,
        allow_shutdown: false,
        deadline: Duration::ZERO,
        ..Config::default()
    })
    .expect("bind ephemeral port");
    let reply = raw_roundtrip(
        &server,
        &post(
            "/v1/threshold",
            r#"{"system":"lumi","problem":"gemm_square","max_dim":16,"iterations":1}"#,
        ),
    );
    assert!(reply.starts_with("HTTP/1.1 503 "), "{reply}");
    assert_eq!(assert_envelope(&reply), "deadline_exceeded");
    server.shutdown();
    server.join();
}

#[test]
fn v1_routes_serve_and_legacy_aliases_are_marked_deprecated() {
    let server = start(2_000);
    let reply = raw_roundtrip(
        &server,
        b"GET /v1/healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
    assert!(!reply.contains("deprecation:"), "{reply}");
    assert!(reply.contains("x-blob-trace: "), "{reply}");
    let reply = raw_roundtrip(
        &server,
        b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
    assert!(reply.contains("deprecation: true\r\n"), "{reply}");
    // the trace endpoint answers with a chrome://tracing document
    let reply = raw_roundtrip(
        &server,
        b"GET /v1/trace?last=32 HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
    let (_, doc) = split_reply(&reply);
    assert!(
        doc.get("traceEvents").and_then(Json::as_arr).is_some(),
        "{reply}"
    );
    server.shutdown();
    server.join();
}

#[test]
fn slow_loris_is_cut_off_by_the_read_timeout() {
    let server = start(300); // short timeout so the test is fast
    let started = Instant::now();
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    // drip one header fragment, then stall forever
    s.write_all(b"POST /advise HTTP/1.1\r\ncontent-le").unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out); // returns once the server gives up on us
    let reply = String::from_utf8_lossy(&out);
    // best-effort 408, and the connection was closed well before 10 s
    assert!(
        reply.is_empty() || reply.starts_with("HTTP/1.1 408 "),
        "{reply}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "server held a stalled connection for {:?}",
        started.elapsed()
    );
    // and it still serves the next client
    let reply = raw_roundtrip(
        &server,
        b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
    server.shutdown();
    server.join();
}

#[test]
fn concurrent_clients_all_complete() {
    let server = start(5_000);
    let addr = server.local_addr();
    let clients = 8;
    let per_client = 5;
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                let mut done = 0;
                for i in 0..per_client {
                    let body = format!(
                        r#"{{"system":"lumi","op":"gemm","m":{m},"n":{m},"k":{m},"precision":"f32","iterations":8}}"#,
                        m = 16 + c * per_client + i
                    );
                    let req = format!(
                        "POST /advise HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
                        body.len()
                    );
                    s.write_all(req.as_bytes()).unwrap();
                    // read one keep-alive response (head + body)
                    let mut buf = Vec::new();
                    let mut chunk = [0u8; 1024];
                    let head_end = loop {
                        if let Some(at) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                            break at + 4;
                        }
                        let n = s.read(&mut chunk).unwrap();
                        assert!(n > 0, "eof mid-response");
                        buf.extend_from_slice(&chunk[..n]);
                    };
                    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
                    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
                    let body_len: usize = head
                        .lines()
                        .find_map(|l| l.strip_prefix("content-length: "))
                        .unwrap()
                        .trim()
                        .parse()
                        .unwrap();
                    while buf.len() < head_end + body_len {
                        let n = s.read(&mut chunk).unwrap();
                        assert!(n > 0, "eof mid-body");
                        buf.extend_from_slice(&chunk[..n]);
                    }
                    let body_text = String::from_utf8_lossy(&buf[head_end..head_end + body_len]);
                    assert!(body_text.contains("\"verdict\""), "{body_text}");
                    done += 1;
                }
                done
            })
        })
        .collect();
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, clients * per_client);
    server.shutdown();
    server.join();
}
