//! Robustness tests against a real server over real sockets: every way a
//! client can misbehave must produce a clean HTTP error (never a worker
//! panic), and the server must keep serving afterwards.

use blob_serve::http::Limits;
use blob_serve::{Config, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn start(read_timeout_ms: u64) -> Server {
    Server::start(Config {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        cache_entries: 16,
        cache_shards: 4,
        limits: Limits {
            max_body: 8 * 1024,
            read_timeout: Duration::from_millis(read_timeout_ms),
            write_timeout: Duration::from_millis(read_timeout_ms),
        },
        allow_shutdown: false,
        ..Config::default()
    })
    .expect("bind ephemeral port")
}

/// Sends raw bytes, reads until EOF, returns the whole reply.
fn raw_roundtrip(server: &Server, bytes: &[u8]) -> String {
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.write_all(bytes).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    String::from_utf8_lossy(&out).into_owned()
}

fn post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

#[test]
fn oversized_body_gets_413_not_a_panic() {
    let server = start(2_000);
    // Declare far more than the 8 KiB limit — the server must answer from
    // the Content-Length header alone, without us sending a single body byte.
    let reply = raw_roundtrip(
        &server,
        b"POST /advise HTTP/1.1\r\ncontent-length: 10000000\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 413 "), "{reply}");
    assert!(reply.contains("connection: close"), "{reply}");
    // the server is still alive
    let reply = raw_roundtrip(
        &server,
        b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
    server.shutdown();
    server.join();
}

#[test]
fn malformed_json_gets_400_not_a_panic() {
    let server = start(2_000);
    for body in ["{\"system\": ", "not json at all", "[1,2,3]", "{}"] {
        let reply = raw_roundtrip(&server, &post("/advise", body));
        assert!(reply.starts_with("HTTP/1.1 400 "), "body {body:?}: {reply}");
        assert!(reply.contains("\"error\""), "{reply}");
    }
    let reply = raw_roundtrip(
        &server,
        b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
    server.shutdown();
    server.join();
}

#[test]
fn malformed_http_gets_400() {
    let server = start(2_000);
    let reply = raw_roundtrip(&server, b"NOT-EVEN HTTP\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 400 "), "{reply}");
    server.shutdown();
    server.join();
}

#[test]
fn unknown_route_404_wrong_method_405_chunked_501() {
    let server = start(2_000);
    let reply = raw_roundtrip(&server, &post("/frobnicate", "{}"));
    assert!(reply.starts_with("HTTP/1.1 404 "), "{reply}");
    let reply = raw_roundtrip(
        &server,
        b"DELETE /advise HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 405 "), "{reply}");
    let reply = raw_roundtrip(
        &server,
        b"POST /advise HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 501 "), "{reply}");
    server.shutdown();
    server.join();
}

#[test]
fn slow_loris_is_cut_off_by_the_read_timeout() {
    let server = start(300); // short timeout so the test is fast
    let started = Instant::now();
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    // drip one header fragment, then stall forever
    s.write_all(b"POST /advise HTTP/1.1\r\ncontent-le").unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out); // returns once the server gives up on us
    let reply = String::from_utf8_lossy(&out);
    // best-effort 408, and the connection was closed well before 10 s
    assert!(
        reply.is_empty() || reply.starts_with("HTTP/1.1 408 "),
        "{reply}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "server held a stalled connection for {:?}",
        started.elapsed()
    );
    // and it still serves the next client
    let reply = raw_roundtrip(
        &server,
        b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
    server.shutdown();
    server.join();
}

#[test]
fn concurrent_clients_all_complete() {
    let server = start(5_000);
    let addr = server.local_addr();
    let clients = 8;
    let per_client = 5;
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                let mut done = 0;
                for i in 0..per_client {
                    let body = format!(
                        r#"{{"system":"lumi","op":"gemm","m":{m},"n":{m},"k":{m},"precision":"f32","iterations":8}}"#,
                        m = 16 + c * per_client + i
                    );
                    let req = format!(
                        "POST /advise HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
                        body.len()
                    );
                    s.write_all(req.as_bytes()).unwrap();
                    // read one keep-alive response (head + body)
                    let mut buf = Vec::new();
                    let mut chunk = [0u8; 1024];
                    let head_end = loop {
                        if let Some(at) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                            break at + 4;
                        }
                        let n = s.read(&mut chunk).unwrap();
                        assert!(n > 0, "eof mid-response");
                        buf.extend_from_slice(&chunk[..n]);
                    };
                    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
                    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
                    let body_len: usize = head
                        .lines()
                        .find_map(|l| l.strip_prefix("content-length: "))
                        .unwrap()
                        .trim()
                        .parse()
                        .unwrap();
                    while buf.len() < head_end + body_len {
                        let n = s.read(&mut chunk).unwrap();
                        assert!(n > 0, "eof mid-body");
                        buf.extend_from_slice(&chunk[..n]);
                    }
                    let body_text = String::from_utf8_lossy(&buf[head_end..head_end + body_len]);
                    assert!(body_text.contains("\"verdict\""), "{body_text}");
                    done += 1;
                }
                done
            })
        })
        .collect();
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, clients * per_client);
    server.shutdown();
    server.join();
}
