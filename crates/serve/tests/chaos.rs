//! Chaos tests: the service must stay available — every request answered,
//! within the client's deadline — while the `blob_core::fault` plane
//! injects worker deaths, handler panics, cache failures, and transient
//! sweep-backend errors at double-digit probabilities.
//!
//! Every test takes `fault::CHAOS_LOCK` (plans are process-global) and
//! clears any plan on entry, so a panicking test cannot poison its
//! successors.

use blob_core::fault::{self, Plan};
use blob_core::wire::Json;
use blob_serve::http::{Limits, Request};
use blob_serve::{App, Config, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// Locks the chaos plane and starts from a clean (no-plan) state.
fn chaos_guard() -> std::sync::MutexGuard<'static, ()> {
    let guard = fault::CHAOS_LOCK
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    fault::clear();
    guard
}

fn install(spec: &str) {
    fault::install(&Plan::parse(spec).expect("valid plan spec"));
}

fn get(path: &str) -> Request {
    Request {
        method: "GET".to_string(),
        target: path.to_string(),
        headers: vec![],
        body: vec![],
    }
}

fn post(path: &str, body: &str) -> Request {
    Request {
        method: "POST".to_string(),
        target: path.to_string(),
        headers: vec![],
        body: body.as_bytes().to_vec(),
    }
}

fn body_json(r: &blob_serve::http::Response) -> Json {
    Json::parse_bytes(&r.body).expect("response body is JSON")
}

const TINY_SWEEP: &str =
    r#"{"system":"lumi","problem":"gemm_square","precision":"f32","iterations":1,"max_dim":16}"#;

#[test]
fn injected_handler_panic_is_contained_as_500() {
    let _g = chaos_guard();
    install("serve.handle:panic@1x1");
    let app = App::new(4, 1, false);
    let (r, label) = app.handle(&get("/healthz"));
    assert_eq!((r.status, label), (500, "other"));
    assert_eq!(
        app.metrics
            .robustness
            .handler_panics
            .load(Ordering::Relaxed),
        1
    );
    // the app keeps serving: the next request (budget spent) is normal,
    // and healthz reports the degradation without going un-ok
    let (r, _) = app.handle(&get("/healthz"));
    assert_eq!(r.status, 200);
    let j = body_json(&r);
    assert_eq!(j.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(j.get("degraded").and_then(Json::as_bool), Some(true));
    fault::clear();
}

#[test]
fn sweep_retries_recover_from_transient_faults() {
    let _g = chaos_guard();
    install("serve.sweep:error@1x2"); // first two attempts fail, third works
    let app = App::new(4, 1, false);
    let (r, _) = app.handle(&post("/threshold", TINY_SWEEP));
    assert_eq!(r.status, 200, "{}", String::from_utf8_lossy(&r.body));
    let j = body_json(&r);
    assert_eq!(j.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(app.metrics.robustness.retries.load(Ordering::Relaxed), 2);
    assert_eq!(
        app.metrics
            .robustness
            .retries_exhausted
            .load(Ordering::Relaxed),
        0
    );
    fault::clear();
}

#[test]
fn sweep_retry_exhaustion_is_a_503() {
    let _g = chaos_guard();
    install("serve.sweep:error@1"); // every attempt fails
    let app = App::new(4, 1, false);
    let (r, _) = app.handle(&post("/threshold", TINY_SWEEP));
    assert_eq!(r.status, 503);
    let err = body_json(&r).get("error").cloned().unwrap();
    assert_eq!(
        err.get("code").and_then(Json::as_str),
        Some("retries_exhausted")
    );
    let msg = err
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert!(msg.contains("attempts"), "{msg}");
    assert_eq!(
        app.metrics
            .robustness
            .retries_exhausted
            .load(Ordering::Relaxed),
        1
    );
    fault::clear();
}

#[test]
fn cache_read_fault_degrades_to_a_recompute() {
    let _g = chaos_guard();
    let app = App::new(16, 4, false);
    let (r1, _) = app.handle(&post("/threshold", TINY_SWEEP));
    assert_eq!(
        body_json(&r1).get("cached").and_then(Json::as_bool),
        Some(false)
    );
    let (r2, _) = app.handle(&post("/threshold", TINY_SWEEP));
    assert_eq!(
        body_json(&r2).get("cached").and_then(Json::as_bool),
        Some(true)
    );

    install("serve.cache:error@1");
    let (r3, _) = app.handle(&post("/threshold", TINY_SWEEP));
    assert_eq!(r3.status, 200);
    let j3 = body_json(&r3);
    // the broken cache was treated as a miss — recomputed, same numbers
    assert_eq!(j3.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(j3.get("thresholds"), body_json(&r1).get("thresholds"));
    fault::clear();
}

fn chaos_config(threads: usize, read_timeout: Duration) -> Config {
    Config {
        addr: "127.0.0.1:0".to_string(),
        threads,
        cache_entries: 32,
        cache_shards: 4,
        limits: Limits {
            max_body: 64 * 1024,
            read_timeout,
            write_timeout: read_timeout,
        },
        allow_shutdown: false,
        ..Config::default()
    }
}

/// Sends one request on a fresh connection and returns the status line's
/// code, failing the test if no complete response arrives in `deadline`.
fn roundtrip_status(addr: std::net::SocketAddr, request: &str, deadline: Duration) -> u16 {
    let started = Instant::now();
    let mut s = TcpStream::connect_timeout(&addr, deadline).expect("connect");
    s.set_read_timeout(Some(deadline)).unwrap();
    s.write_all(request.as_bytes()).expect("send request");
    let mut out = Vec::new();
    s.read_to_end(&mut out).expect("response within deadline");
    assert!(
        started.elapsed() < deadline,
        "request took {:?}, over the {:?} deadline",
        started.elapsed(),
        deadline
    );
    let text = String::from_utf8_lossy(&out);
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|w| w.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    status
}

#[test]
fn server_stays_available_under_a_mixed_fault_plan() {
    let _g = chaos_guard();
    // Double-digit failure probability at four independent layers.
    install(
        "seed=7;serve.handle:panic@0.12;serve.sweep:error@0.25;\
         serve.cache:error@0.3;serve.worker:error@0.1",
    );
    let server = Server::start(chaos_config(2, Duration::from_secs(2))).unwrap();
    let addr = server.local_addr();
    let deadline = Duration::from_secs(5);

    let threshold_body = r#"{"system":"dawn","problem":"gemm_square","precision":"f32","iterations":1,"max_dim":24}"#;
    let mut ok = 0;
    let mut served = 0;
    for i in 0..40 {
        let request = match i % 3 {
            0 => "GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n".to_string(),
            1 => {
                let body = r#"{"system":"lumi","op":"gemm","m":256,"n":256,"k":256,"precision":"f32"}"#;
                format!(
                    "POST /advise HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                    body.len()
                )
            }
            _ => format!(
                "POST /threshold HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{threshold_body}",
                threshold_body.len()
            ),
        };
        let status = roundtrip_status(addr, &request, deadline);
        assert!(
            status == 200 || status == 500 || status == 503,
            "request {i} got unexpected status {status}"
        );
        served += 1;
        if status == 200 {
            ok += 1;
        }
    }
    assert_eq!(served, 40, "every request must be answered");
    assert!(ok > 0, "some requests must still succeed under chaos");
    assert!(fault::injected_total() > 0, "the plan must actually fire");

    // With the plan cleared the service is fully healthy again (the
    // degraded flag stays sticky as a record of what it survived).
    fault::clear();
    let status = roundtrip_status(
        addr,
        "GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
        deadline,
    );
    assert_eq!(status, 200);
    server.shutdown();
    server.join();
}

#[test]
fn dead_http_workers_are_replaced() {
    let _g = chaos_guard();
    // Both initial workers die the moment they start; the budget is then
    // spent, so their replacements live.
    install("serve.worker:error@1x2");
    let server = Server::start(chaos_config(2, Duration::from_secs(2))).unwrap();
    let addr = server.local_addr();
    let deadline = Duration::from_secs(5);
    for _ in 0..3 {
        let status = roundtrip_status(
            addr,
            "GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n",
            deadline,
        );
        assert_eq!(status, 200);
    }
    assert_eq!(
        server
            .app()
            .metrics
            .robustness
            .workers_replaced
            .load(Ordering::Relaxed),
        2
    );
    fault::clear();
    server.shutdown();
    server.join();
}

#[test]
fn accept_queue_saturation_sheds_with_503() {
    let _g = chaos_guard();
    // One worker, queue capacity 2: occupy the worker with a silent
    // connection, fill the queue, and watch the overflow get shed.
    let server = Server::start(chaos_config(1, Duration::from_millis(500))).unwrap();
    let addr = server.local_addr();

    let busy = TcpStream::connect(addr).unwrap(); // worker blocks reading this
    std::thread::sleep(Duration::from_millis(100));
    let _queued_a = TcpStream::connect(addr).unwrap();
    let _queued_b = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // The queue is full now; the next connections must be shed.
    let mut shed_seen = 0;
    for _ in 0..2 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        let text = String::from_utf8_lossy(&out);
        if text.starts_with("HTTP/1.1 503 ") {
            assert!(text.contains("shed"), "{text}");
            shed_seen += 1;
        }
    }
    assert!(shed_seen >= 1, "at least one connection must be shed");
    assert!(server.app().metrics.robustness.shed.load(Ordering::Relaxed) >= 1);
    drop(busy);
    server.shutdown();
    server.join();
}
