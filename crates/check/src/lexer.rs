//! A hand-rolled Rust lexer — just enough token structure for the lint
//! rules, with none of `syn`'s weight (or its dependency tree, which the
//! offline build cannot fetch).
//!
//! The lexer's one hard job is *never misclassifying regions*: rules must
//! not fire inside comments or string literals, and must fire on code that
//! merely sits near them. That means handling the awkward corners for
//! real: nested block comments, raw strings with arbitrary `#` fences,
//! byte strings, and the lifetime-vs-char-literal ambiguity after `'`.
//!
//! Everything else is kept deliberately coarse — keywords are just
//! [`TokenKind::Ident`] tokens, and multi-character operators are fused
//! only for the handful the rules inspect (`==`, `!=`, `::`, `->`, …).

/// The coarse classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Lifetime such as `'a` (including `'static`).
    Lifetime,
    /// Character or byte literal: `'x'`, `b'\n'`.
    Char,
    /// String literal of any flavour: `"…"`, `r#"…"#`, `b"…"`.
    Str,
    /// Numeric literal, suffix included: `1_000`, `0x1F`, `1.5e-3f64`.
    Num,
    /// `// …` comment that is not a doc comment.
    LineComment,
    /// `/// …`, `//! …`, `/** … */` or `/*! … */` doc comment.
    DocComment,
    /// `/* … */` comment (nesting handled) that is not a doc comment.
    BlockComment,
    /// Punctuation; multi-character operators are fused (`==`, `::`, …).
    Punct,
}

/// One lexed token with its 1-based starting line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    fn new(kind: TokenKind, text: &str, line: usize) -> Self {
        Token {
            kind,
            text: text.to_string(),
            line,
        }
    }
}

/// Multi-character operators the rules care about, longest first so the
/// greedy match is unambiguous.
const OPERATORS: [&str; 21] = [
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "::", "..", "+=",
    "-=", "*=", "/=", "<<", ">>", "|=",
];

/// Lexes `src` into a token stream. Unterminated literals and comments are
/// tolerated (the token simply runs to end of input) — the checker must
/// degrade gracefully on code that `rustc` would reject, since it may run
/// before the compiler does.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;

    // Counts newlines in b[from..to] into `line`.
    fn advance_lines(b: &[u8], from: usize, to: usize, line: &mut usize) {
        *line += b[from..to].iter().filter(|&&c| c == b'\n').count();
    }

    while i < b.len() {
        let c = b[i];
        let start = i;
        let start_line = line;

        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }

        // comments
        if c == b'/' && i + 1 < b.len() {
            if b[i + 1] == b'/' {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start..i];
                let is_doc = (text.starts_with("///") && !text.starts_with("////"))
                    || text.starts_with("//!");
                let kind = if is_doc {
                    TokenKind::DocComment
                } else {
                    TokenKind::LineComment
                };
                tokens.push(Token::new(kind, text, start_line));
                continue;
            }
            if b[i + 1] == b'*' {
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if i + 1 < b.len() && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < b.len() && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let is_doc =
                    (text.starts_with("/**") && !text.starts_with("/***") && text != "/**/")
                        || text.starts_with("/*!");
                let kind = if is_doc {
                    TokenKind::DocComment
                } else {
                    TokenKind::BlockComment
                };
                advance_lines(b, start, i, &mut line);
                tokens.push(Token::new(kind, text, start_line));
                continue;
            }
        }

        // raw / byte string prefixes: r", r#…#", br", b", and b'…'
        if c == b'r' || c == b'b' {
            let mut j = i;
            let mut is_raw = false;
            if b[j] == b'b'
                && j + 1 < b.len()
                && (b[j + 1] == b'r' || b[j + 1] == b'"' || b[j + 1] == b'\'')
            {
                if b[j + 1] == b'r' {
                    is_raw = true;
                    j += 2;
                } else {
                    j += 1;
                }
            } else if b[j] == b'r' && j + 1 < b.len() && (b[j + 1] == b'"' || b[j + 1] == b'#') {
                is_raw = true;
                j += 1;
            } else {
                j = i; // plain identifier starting with r/b
            }
            if j > i {
                if is_raw {
                    // count fence hashes
                    let mut hashes = 0;
                    while j < b.len() && b[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'"' {
                        j += 1;
                        // scan to closing quote + matching hashes
                        'scan: while j < b.len() {
                            if b[j] == b'"' {
                                let mut k = 0;
                                while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == b'#' {
                                    k += 1;
                                }
                                if k == hashes {
                                    j += 1 + hashes;
                                    break 'scan;
                                }
                            }
                            j += 1;
                        }
                        advance_lines(b, start, j, &mut line);
                        tokens.push(Token::new(TokenKind::Str, &src[start..j], start_line));
                        i = j;
                        continue;
                    }
                    // `r#ident` raw identifier, or stray `r#` — fall through
                    // to identifier lexing below.
                } else if b[j - 1] == b'"' || b[j] == b'"' || b[j] == b'\'' {
                    // b"…" or b'…' — rewind to the quote and use the normal
                    // string/char scanners with the prefix attached
                    let quote_at = if b[j] == b'"' || b[j] == b'\'' {
                        j
                    } else {
                        j - 1
                    };
                    let quote = b[quote_at];
                    let mut k = quote_at + 1;
                    while k < b.len() {
                        if b[k] == b'\\' {
                            k += 2;
                        } else if b[k] == quote {
                            k += 1;
                            break;
                        } else {
                            k += 1;
                        }
                    }
                    advance_lines(b, start, k, &mut line);
                    let kind = if quote == b'"' {
                        TokenKind::Str
                    } else {
                        TokenKind::Char
                    };
                    tokens.push(Token::new(kind, &src[start..k], start_line));
                    i = k;
                    continue;
                }
            }
        }

        // plain string
        if c == b'"' {
            let mut j = i + 1;
            while j < b.len() {
                if b[j] == b'\\' {
                    j += 2;
                } else if b[j] == b'"' {
                    j += 1;
                    break;
                } else {
                    j += 1;
                }
            }
            advance_lines(b, start, j.min(b.len()), &mut line);
            tokens.push(Token::new(
                TokenKind::Str,
                &src[start..j.min(b.len())],
                start_line,
            ));
            i = j;
            continue;
        }

        // lifetime vs char literal
        if c == b'\'' {
            // lifetime: 'ident NOT followed by a closing quote ('a' is a char)
            let is_lifetime =
                i + 1 < b.len() && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_') && {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    !(j < b.len() && b[j] == b'\'')
                };
            if is_lifetime {
                let mut j = i + 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                tokens.push(Token::new(TokenKind::Lifetime, &src[start..j], start_line));
                i = j;
                continue;
            }
            // char literal with escapes: '\'' '\\' '\x41' '\u{1F600}' 'q'
            let mut j = i + 1;
            while j < b.len() {
                if b[j] == b'\\' {
                    j += 2;
                } else if b[j] == b'\'' {
                    j += 1;
                    break;
                } else {
                    j += 1;
                }
            }
            advance_lines(b, start, j.min(b.len()), &mut line);
            tokens.push(Token::new(
                TokenKind::Char,
                &src[start..j.min(b.len())],
                start_line,
            ));
            i = j;
            continue;
        }

        // number: decimal/hex/octal/binary, underscores, `.` fraction,
        // exponent, and type suffix all folded into one token
        if c.is_ascii_digit() {
            let mut j = i + 1;
            let hex = c == b'0' && j < b.len() && (b[j] | 0x20) == b'x';
            while j < b.len() {
                let d = b[j];
                if d.is_ascii_alphanumeric() || d == b'_' {
                    // exponent sign: 1e-3 / 1E+5 (not for hex)
                    if !hex
                        && (d | 0x20) == b'e'
                        && j + 1 < b.len()
                        && (b[j + 1] == b'+' || b[j + 1] == b'-')
                    {
                        j += 2;
                        continue;
                    }
                    j += 1;
                } else if d == b'.' && !hex {
                    // fraction only if followed by a digit (`1..n` is a range,
                    // `1.` at expression end is rare and safe to fold)
                    if j + 1 < b.len() && b[j + 1] == b'.' {
                        break;
                    }
                    j += 1;
                } else {
                    break;
                }
            }
            tokens.push(Token::new(TokenKind::Num, &src[start..j], start_line));
            i = j;
            continue;
        }

        // identifier / keyword
        if c.is_ascii_alphabetic() || c == b'_' {
            let mut j = i + 1;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            tokens.push(Token::new(TokenKind::Ident, &src[start..j], start_line));
            i = j;
            continue;
        }

        // fused operators, longest first
        let rest = &src[i..];
        if let Some(op) = OPERATORS.iter().find(|op| rest.starts_with(**op)) {
            tokens.push(Token::new(TokenKind::Punct, op, start_line));
            i += op.len();
            continue;
        }

        // single punctuation (covers non-ASCII bytes too, one char at a time)
        let ch_len = src[i..].chars().next().map(char::len_utf8).unwrap_or(1);
        tokens.push(Token::new(
            TokenKind::Punct,
            &src[i..i + ch_len],
            start_line,
        ));
        i += ch_len;
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let t = kinds("a /* outer /* inner */ still */ b");
        assert_eq!(t.len(), 3);
        assert_eq!(t[1].0, TokenKind::BlockComment);
        assert_eq!(t[0].1, "a");
        assert_eq!(t[2].1, "b");
    }

    #[test]
    fn doc_comments_are_distinguished() {
        let t = kinds(
            "/// doc\n//! inner\n// plain\n//// not doc\n/** block */\n/*! inner */\n/* p */",
        );
        let expect = [
            TokenKind::DocComment,
            TokenKind::DocComment,
            TokenKind::LineComment,
            TokenKind::LineComment,
            TokenKind::DocComment,
            TokenKind::DocComment,
            TokenKind::BlockComment,
        ];
        assert_eq!(t.iter().map(|x| x.0).collect::<Vec<_>>(), expect);
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        // a raw string containing what would otherwise be a comment + unwrap
        let t = kinds(r####"let s = r#"// .unwrap() /* "# ; x"####);
        assert!(t
            .iter()
            .any(|x| x.0 == TokenKind::Str && x.1.contains("unwrap")));
        assert!(!t.iter().any(|x| x.1 == "unwrap"));
        // fences with more hashes
        let t = kinds("r##\"quote \"# inside\"## y");
        assert_eq!(t[0].0, TokenKind::Str);
        assert_eq!(t[1].1, "y");
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let t = kinds("&'a str; 'x'; '\\''; b'z'; 'static");
        let lifetimes: Vec<_> = t.iter().filter(|x| x.0 == TokenKind::Lifetime).collect();
        let chars: Vec<_> = t.iter().filter(|x| x.0 == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{t:?}");
        assert_eq!(lifetimes[0].1, "'a");
        assert_eq!(lifetimes[1].1, "'static");
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0].1, "'x'");
        assert_eq!(chars[1].1, "'\\''");
        assert_eq!(chars[2].1, "b'z'");
    }

    #[test]
    fn numbers_fold_fraction_exponent_suffix() {
        let t = kinds("1.5e-3f64 0x1F 1_000 1..3 2.");
        assert_eq!(t[0].1, "1.5e-3f64");
        assert_eq!(t[1].1, "0x1F");
        assert_eq!(t[2].1, "1_000");
        assert_eq!(t[3].1, "1");
        assert_eq!(t[4].1, "..");
        assert_eq!(t[5].1, "3");
    }

    #[test]
    fn operators_fuse() {
        let t = kinds("a == b != c :: d -> e .. f");
        let puncts: Vec<_> = t
            .iter()
            .filter(|x| x.0 == TokenKind::Punct)
            .map(|x| x.1.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "::", "->", ".."]);
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "a\n/* two\nlines */\nb \"str\nacross\" c";
        let t = lex(src);
        let find = |s: &str| t.iter().find(|x| x.text == s).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 5);
    }

    #[test]
    fn strings_with_escapes_terminate_correctly() {
        let t = kinds(r#"let a = "q\"uote"; b"#);
        assert!(t
            .iter()
            .any(|x| x.0 == TokenKind::Str && x.1.contains("uote")));
        assert_eq!(t.last().unwrap().1, "b");
    }
}
