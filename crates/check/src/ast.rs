//! The AST for the Rust subset this workspace uses.
//!
//! [`crate::parser`] produces these nodes from the token stream. The shape
//! is deliberately shallow where the analyses don't need depth: types,
//! generics, and patterns are kept as opaque token text (mirroring how
//! Rust itself treats macro interiors as token trees), while the
//! constructs the interprocedural analyses reason about — items, impls,
//! functions, blocks, closures, `match`, calls, method calls, indexing,
//! paths, macro invocations — are real nodes with source lines.
//!
//! Every node that an analysis can anchor a finding to carries the
//! 1-based line it starts on.

/// One parsed source file.
#[derive(Debug, Clone)]
pub struct File {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// An item with its attributes and visibility.
#[derive(Debug, Clone)]
pub struct Item {
    /// 1-based line of the item keyword.
    pub line: usize,
    /// `pub` without a restriction (`pub(crate)` counts as private).
    pub vis_pub: bool,
    /// Outer attribute texts, delimiters stripped: `cfg(test)`, `test`,
    /// `derive(Debug)`, `inline`, …
    pub attrs: Vec<String>,
    /// What the item is.
    pub kind: ItemKind,
}

impl Item {
    /// True when the item carries `#[cfg(test)]` or `#[test]`.
    pub fn is_test_only(&self) -> bool {
        self.attrs
            .iter()
            .any(|a| a == "test" || a.starts_with("cfg(test") || a.contains("cfg(test)"))
    }
}

/// The item kinds the workspace grammar distinguishes.
#[derive(Debug, Clone)]
pub enum ItemKind {
    /// `use …;` (tree imports included).
    Use,
    /// `extern crate …;`
    ExternCrate,
    /// `type Name = …;`
    TypeAlias {
        /// Alias name.
        name: String,
    },
    /// `macro_rules! name { … }` — body kept opaque.
    MacroDef {
        /// Macro name.
        name: String,
    },
    /// `mod name;` or `mod name { … }`.
    Mod {
        /// Module name.
        name: String,
        /// Inline body, `None` for out-of-line `mod name;`.
        items: Option<Vec<Item>>,
    },
    /// A free function, method, or trait method.
    Fn(FnDecl),
    /// `struct Name …` with named fields captured (types as text).
    Struct {
        /// Type name.
        name: String,
        /// Named fields; empty for tuple/unit structs.
        fields: Vec<FieldDecl>,
    },
    /// `enum Name { … }` — variants opaque.
    Enum {
        /// Type name.
        name: String,
    },
    /// `union Name { … }`.
    Union {
        /// Type name.
        name: String,
        /// Named fields.
        fields: Vec<FieldDecl>,
    },
    /// `trait Name { … }` with its associated items.
    Trait {
        /// Trait name.
        name: String,
        /// Associated items (methods may lack bodies).
        items: Vec<Item>,
    },
    /// `impl Type { … }` or `impl Trait for Type { … }`.
    Impl {
        /// The `Self` type's last path segment (`ApiError` in
        /// `impl From<SchemaError> for ApiError`).
        type_name: String,
        /// The implemented trait's last plain segment, if any.
        trait_name: Option<String>,
        /// Associated items.
        items: Vec<Item>,
    },
    /// `const NAME: Ty = …;`
    Const {
        /// Constant name.
        name: String,
        /// Type as token text.
        ty: String,
        /// Initializer (absent only in trait declarations).
        init: Option<Expr>,
    },
    /// `static NAME: Ty = …;`
    Static {
        /// Static name.
        name: String,
        /// Type as token text.
        ty: String,
        /// Initializer.
        init: Option<Expr>,
    },
    /// An item-position macro invocation such as `thread_local! { … }`.
    MacroItem {
        /// Macro name (last path segment).
        name: String,
        /// Interior items when the body parses as items (e.g.
        /// `thread_local!` statics), otherwise `None`.
        items: Option<Vec<Item>>,
        /// Interior expressions recovered best-effort when the body is
        /// not item-shaped.
        exprs: Vec<Expr>,
    },
}

/// A named struct/union field.
#[derive(Debug, Clone)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Type as token text, e.g. `Mutex < QueueState >`.
    pub ty: String,
    /// 1-based line.
    pub line: usize,
}

/// A function or method.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// Body; `None` for trait method declarations.
    pub body: Option<Block>,
}

/// A `{ … }` block.
#[derive(Debug, Clone)]
pub struct Block {
    /// 1-based line of the opening brace.
    pub line: usize,
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

/// A statement inside a block.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let PAT = expr;` (pattern and type kept opaque) with an optional
    /// `else { … }` diverging block.
    Let {
        /// Initializer, absent for `let x;`.
        init: Option<Expr>,
        /// The `let … else` block.
        else_block: Option<Block>,
        /// 1-based line of `let`.
        line: usize,
    },
    /// A nested item (fn, use, const, …).
    Item(Item),
    /// An expression statement (trailing `;` or not).
    Expr(Expr),
}

/// An expression. Operands the analyses never inspect collapse to
/// [`Expr::Opaque`]; everything that can call, panic, lock, or spawn is
/// structural.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Literal (string/char/number).
    Lit {
        /// Literal token text (used for float/zero classification).
        text: String,
        /// 1-based line.
        line: usize,
    },
    /// A path such as `Ordering::Relaxed` or a bare identifier.
    Path {
        /// Segments, turbofish generics dropped.
        segs: Vec<String>,
        /// 1-based line of the first segment.
        line: usize,
    },
    /// Binary / assignment / range operation. `rhs` is absent for
    /// open-ended ranges (`1..`).
    Binary {
        /// Operator token text (`/`, `%`, `..`, `=`, …).
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Option<Box<Expr>>,
        /// 1-based line of the operator.
        line: usize,
    },
    /// Prefix `-`/`!`/`*`/`&`/range expression.
    Unary {
        /// Operand.
        expr: Box<Expr>,
    },
    /// `callee(args…)`.
    Call {
        /// Callee (usually a [`Expr::Path`]).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// 1-based line of the opening parenthesis.
        line: usize,
    },
    /// `recv.name(args…)`.
    MethodCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// 1-based line of the method name.
        line: usize,
    },
    /// `recv.name` field access (tuple indices included as text).
    Field {
        /// Receiver.
        recv: Box<Expr>,
        /// Field name or tuple index.
        name: String,
    },
    /// `recv[index]`.
    Index {
        /// Receiver.
        recv: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// 1-based line of the opening bracket.
        line: usize,
    },
    /// `expr as Ty`.
    Cast {
        /// Operand.
        expr: Box<Expr>,
        /// Target type as token text.
        ty: String,
    },
    /// `expr?`.
    Try {
        /// Operand.
        expr: Box<Expr>,
    },
    /// `|args| body` / `move || body` (parameters opaque).
    Closure {
        /// Body expression (often a [`Expr::Block`]).
        body: Box<Expr>,
        /// 1-based line of the opening `|`.
        line: usize,
    },
    /// `{ … }`.
    Block(Block),
    /// `unsafe { … }`.
    Unsafe(Block),
    /// `if cond { … } else …` (`if let` folds the scrutinee into `cond`).
    If {
        /// Condition (or `if let` scrutinee).
        cond: Box<Expr>,
        /// Then-block.
        then: Block,
        /// `else` expression (block or chained `if`).
        else_: Option<Box<Expr>>,
    },
    /// `while cond { … }` (`while let` folds the scrutinee into `cond`).
    While {
        /// Condition (or `while let` scrutinee).
        cond: Box<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `for PAT in iter { … }` (pattern opaque).
    For {
        /// Iterated expression.
        iter: Box<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `loop { … }`.
    Loop {
        /// Loop body.
        body: Block,
    },
    /// `match scrutinee { arms… }` (patterns and guards opaque).
    Match {
        /// Scrutinee.
        scrutinee: Box<Expr>,
        /// Arm value expressions in source order.
        arms: Vec<Expr>,
        /// 1-based line of `match`.
        line: usize,
    },
    /// `return expr?`.
    Return {
        /// Returned value.
        value: Option<Box<Expr>>,
    },
    /// `break 'label? expr?`.
    Break {
        /// Break value.
        value: Option<Box<Expr>>,
    },
    /// `continue 'label?`.
    Continue,
    /// `Path { field: expr, … }` struct literal.
    StructLit {
        /// Struct path segments.
        path: Vec<String>,
        /// Field value expressions (shorthand fields become paths).
        fields: Vec<Expr>,
        /// 1-based line.
        line: usize,
    },
    /// `name!(args…)` macro invocation. `args` hold the interior
    /// expressions when the token tree parses as a comma-separated
    /// expression list, else `raw` keeps `(text, line)` pairs for the
    /// lexical fallback scan inside this one macro body.
    Macro {
        /// Macro path segments (`name` is the last).
        path: Vec<String>,
        /// Parsed interior expressions (best-effort).
        args: Vec<Expr>,
        /// Raw interior tokens when `args` could not be recovered.
        raw: Vec<(String, usize)>,
        /// 1-based line of the macro name.
        line: usize,
    },
    /// `(a, b, …)` tuple or parenthesised expression.
    Tuple {
        /// Elements.
        items: Vec<Expr>,
    },
    /// `[a, b, …]` / `[x; n]` array literal.
    Array {
        /// Elements (the repeat count of `[x; n]` is the second item).
        items: Vec<Expr>,
    },
    /// Anything the grammar models as an opaque leaf (e.g. a lone `_`).
    Opaque,
}

impl Expr {
    /// The trailing identifier chain of a receiver expression, used to
    /// label locks and atomics: `self.queue.alive` → `["self", "queue",
    /// "alive"]`, `ACTIVE` → `["ACTIVE"]`. Empty when the expression is
    /// not a plain path/field/reference chain.
    pub fn path_hint(&self) -> Vec<String> {
        match self {
            Expr::Path { segs, .. } => segs.clone(),
            Expr::Field { recv, name } => {
                let mut h = recv.path_hint();
                if h.is_empty() {
                    return Vec::new();
                }
                h.push(name.clone());
                h
            }
            Expr::Unary { expr } | Expr::Try { expr } => expr.path_hint(),
            Expr::Tuple { items } if items.len() == 1 => items[0].path_hint(),
            _ => Vec::new(),
        }
    }

    /// Best-effort source line of the expression.
    pub fn line(&self) -> Option<usize> {
        match self {
            Expr::Lit { line, .. }
            | Expr::Path { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Index { line, .. }
            | Expr::Closure { line, .. }
            | Expr::Match { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::Macro { line, .. } => Some(*line),
            Expr::Block(b) | Expr::Unsafe(b) => Some(b.line),
            Expr::Unary { expr } | Expr::Cast { expr, .. } | Expr::Try { expr } => expr.line(),
            Expr::Field { recv, .. } => recv.line(),
            Expr::If { cond, .. } | Expr::While { cond, .. } => cond.line(),
            Expr::For { iter, .. } => iter.line(),
            Expr::Loop { body } => Some(body.line),
            _ => None,
        }
    }
}

/// Calls `f` on `expr` and every sub-expression, in source order.
pub fn walk_expr(expr: &Expr, f: &mut impl FnMut(&Expr)) {
    f(expr);
    match expr {
        Expr::Lit { .. } | Expr::Path { .. } | Expr::Continue | Expr::Opaque => {}
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            if let Some(r) = rhs {
                walk_expr(r, f);
            }
        }
        Expr::Unary { expr } | Expr::Cast { expr, .. } | Expr::Try { expr } => walk_expr(expr, f),
        Expr::Call { callee, args, .. } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Field { recv, .. } => walk_expr(recv, f),
        Expr::Index { recv, index, .. } => {
            walk_expr(recv, f);
            walk_expr(index, f);
        }
        Expr::Closure { body, .. } => walk_expr(body, f),
        Expr::Block(b) | Expr::Unsafe(b) | Expr::Loop { body: b } => walk_block(b, f),
        Expr::If { cond, then, else_ } => {
            walk_expr(cond, f);
            walk_block(then, f);
            if let Some(e) = else_ {
                walk_expr(e, f);
            }
        }
        Expr::While { cond, body } => {
            walk_expr(cond, f);
            walk_block(body, f);
        }
        Expr::For { iter, body } => {
            walk_expr(iter, f);
            walk_block(body, f);
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            walk_expr(scrutinee, f);
            for a in arms {
                walk_expr(a, f);
            }
        }
        Expr::Return { value } | Expr::Break { value } => {
            if let Some(v) = value {
                walk_expr(v, f);
            }
        }
        Expr::StructLit { fields, .. } => {
            for e in fields {
                walk_expr(e, f);
            }
        }
        Expr::Macro { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Tuple { items } | Expr::Array { items } => {
            for e in items {
                walk_expr(e, f);
            }
        }
    }
}

/// Calls `f` on every expression in a block, in source order.
pub fn walk_block(block: &Block, f: &mut impl FnMut(&Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let {
                init, else_block, ..
            } => {
                if let Some(e) = init {
                    walk_expr(e, f);
                }
                if let Some(b) = else_block {
                    walk_block(b, f);
                }
            }
            Stmt::Item(item) => walk_item_exprs(item, f),
            Stmt::Expr(e) => walk_expr(e, f),
        }
    }
}

/// Calls `f` on every expression owned by an item (initializers and
/// nested bodies — but *not* nested `fn` bodies, which belong to their
/// own function for the interprocedural analyses).
pub fn walk_item_exprs(item: &Item, f: &mut impl FnMut(&Expr)) {
    match &item.kind {
        ItemKind::Const { init, .. } | ItemKind::Static { init, .. } => {
            if let Some(e) = init {
                walk_expr(e, f);
            }
        }
        ItemKind::MacroItem { items, exprs, .. } => {
            if let Some(items) = items {
                for it in items {
                    walk_item_exprs(it, f);
                }
            }
            for e in exprs {
                walk_expr(e, f);
            }
        }
        _ => {}
    }
}
