//! The `blob-check` binary: run the workspace's static-analysis rules.
//!
//! ```text
//! cargo run -p blob-check                       # check, human output
//! cargo run -p blob-check -- --json             # machine-readable findings
//! cargo run -p blob-check -- --write-baseline blob-check-baseline.json
//! cargo run -p blob-check -- --baseline blob-check-baseline.json
//! cargo run -p blob-check -- --list-rules
//! cargo run -p blob-check -- --explain lock-order
//! cargo run -p blob-check -- --call-graph       # dump the resolved call graph
//! cargo run -p blob-check -- --max-ms 5000      # fail if the run exceeds a budget
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error (including a blown
//! `--max-ms` budget — a checker too slow for CI is an infrastructure
//! failure, not a lint finding).

use blob_check::{
    apply_baseline, call_graph_dump, check_workspace, find_workspace_root, parse_baseline,
    rules::{EXPLAIN, RULES, RULE_ALIASES},
    to_json,
};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Options {
    json: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    list_rules: bool,
    call_graph: bool,
    explain: Option<String>,
    max_ms: Option<u64>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        root: None,
        baseline: None,
        write_baseline: None,
        list_rules: false,
        call_graph: false,
        explain: None,
        max_ms: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--call-graph" => opts.call_graph = true,
            "--explain" => opts.explain = Some(args.next().ok_or("--explain needs a rule name")?),
            "--max-ms" => {
                let v = args.next().ok_or("--max-ms needs a millisecond budget")?;
                opts.max_ms = Some(
                    v.parse::<u64>()
                        .map_err(|_| format!("--max-ms: `{v}` is not a number"))?,
                );
            }
            "--root" => {
                opts.root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a directory")?,
                ))
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a file")?))
            }
            "--write-baseline" => {
                opts.write_baseline = Some(PathBuf::from(
                    args.next().ok_or("--write-baseline needs a file")?,
                ))
            }
            "--help" | "-h" => {
                return Err("usage: blob-check [--json] [--root DIR] [--baseline FILE] \
                            [--write-baseline FILE] [--list-rules] [--explain RULE] \
                            [--call-graph] [--max-ms N]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

/// `--list-rules`: one rule per line, with deprecation notes for aliases.
fn list_rules() {
    for r in RULES {
        match RULE_ALIASES.iter().find(|(_, new)| *new == r) {
            Some((old, _)) => println!("{r} (supersedes `{old}`; old suppressions still honoured)"),
            None => println!("{r}"),
        }
    }
}

/// `--explain RULE`: the rule's rationale paragraph. Deprecated aliases
/// redirect to their successor.
fn explain(rule: &str) -> ExitCode {
    let target = RULE_ALIASES
        .iter()
        .find(|(old, _)| *old == rule)
        .map(|(_, new)| *new)
        .unwrap_or(rule);
    match EXPLAIN.iter().find(|(r, _)| *r == target) {
        Some((r, text)) => {
            if target != rule {
                println!("`{rule}` is deprecated — superseded by `{r}`.\n");
            }
            println!("{r}\n\n{text}");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown rule `{rule}` (try --list-rules)");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let started = Instant::now();
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        list_rules();
        return ExitCode::SUCCESS;
    }
    if let Some(rule) = &opts.explain {
        return explain(rule);
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match opts.root.or_else(|| find_workspace_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("error: no workspace root found above {}", cwd.display());
            return ExitCode::from(2);
        }
    };
    if opts.call_graph {
        return match call_graph_dump(&root) {
            Ok(text) => {
                // tolerate a closed pipe (`--call-graph | head`)
                let _ = writeln!(std::io::stdout(), "{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }
    let (mut findings, files) = match check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.write_baseline {
        if let Err(e) = std::fs::write(path, to_json(&findings)) {
            eprintln!("error: writing baseline: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "wrote baseline with {} finding(s) to {}",
            findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &opts.baseline {
        match std::fs::read_to_string(path) {
            Ok(text) => findings = apply_baseline(findings, &parse_baseline(&text)),
            Err(e) => {
                eprintln!("error: reading baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    // findings go through `writeln!` with the error dropped so a closed
    // pipe (`blob-check --json | head`) ends the output, not the process
    let mut out = std::io::stdout();
    if opts.json {
        let _ = writeln!(out, "{}", to_json(&findings));
    } else if findings.is_empty() {
        let _ = writeln!(out, "blob-check: {files} files clean");
    } else {
        for f in &findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        }
        let _ = writeln!(
            out,
            "blob-check: {} finding(s) in {files} files",
            findings.len()
        );
    }
    if let Some(budget) = opts.max_ms {
        let elapsed = started.elapsed().as_millis() as u64;
        if elapsed > budget {
            eprintln!("error: run took {elapsed} ms, over the --max-ms {budget} budget");
            return ExitCode::from(2);
        }
        eprintln!("blob-check: {elapsed} ms (budget {budget} ms)");
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
