//! The `blob-check` binary: run the workspace's static-analysis rules.
//!
//! ```text
//! cargo run -p blob-check                       # check, human output
//! cargo run -p blob-check -- --json             # machine-readable findings
//! cargo run -p blob-check -- --write-baseline blob-check-baseline.json
//! cargo run -p blob-check -- --baseline blob-check-baseline.json
//! cargo run -p blob-check -- --list-rules
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

use blob_check::{
    apply_baseline, check_workspace, find_workspace_root, parse_baseline, rules::RULES, to_json,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    json: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        root: None,
        baseline: None,
        write_baseline: None,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                opts.root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a directory")?,
                ))
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a file")?))
            }
            "--write-baseline" => {
                opts.write_baseline = Some(PathBuf::from(
                    args.next().ok_or("--write-baseline needs a file")?,
                ))
            }
            "--help" | "-h" => {
                return Err("usage: blob-check [--json] [--root DIR] [--baseline FILE] [--write-baseline FILE] [--list-rules]".to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        for r in RULES {
            println!("{r}");
        }
        return ExitCode::SUCCESS;
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match opts.root.or_else(|| find_workspace_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("error: no workspace root found above {}", cwd.display());
            return ExitCode::from(2);
        }
    };
    let (mut findings, files) = match check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));

    if let Some(path) = &opts.write_baseline {
        if let Err(e) = std::fs::write(path, to_json(&findings)) {
            eprintln!("error: writing baseline: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "wrote baseline with {} finding(s) to {}",
            findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &opts.baseline {
        match std::fs::read_to_string(path) {
            Ok(text) => findings = apply_baseline(findings, &parse_baseline(&text)),
            Err(e) => {
                eprintln!("error: reading baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    if opts.json {
        println!("{}", to_json(&findings));
    } else if findings.is_empty() {
        println!("blob-check: {files} files clean");
    } else {
        for f in &findings {
            println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        }
        println!("blob-check: {} finding(s) in {files} files", findings.len());
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
