//! Workspace call graph over the [`crate::symbols`] index.
//!
//! Resolution is heuristic and deliberately *over*-approximates — a
//! missing edge silently hides a panic path, a spurious edge only costs a
//! justification comment — with one exception: a qualified path whose
//! qualifier matches nothing in the workspace (`std::fs::read`,
//! `io::Error::new`) is external and produces **no** edge, otherwise
//! every `new` in the standard library would alias every `new` here.
//!
//! The rules, in order:
//!
//! 1. **Method calls** (`recv.name(…)`) edge to every workspace method of
//!    that name (any `impl`, any file) — receiver types are not inferred —
//!    *unless* the name collides with the standard library's common
//!    surface ([`STD_METHOD_NAMES`]): `.load(…)` is an atomic, not
//!    `Checkpoint::load`; `.wait(…)` is a condvar, not
//!    `BatchHandle::wait`. Workspace methods with colliding names are
//!    still reachable through qualified paths (`Checkpoint::load(…)`),
//!    which is the workspace's own idiom for them. This exclusion list is
//!    the analysis's main documented unsoundness.
//! 2. **Qualified path calls** (`a::b::name(…)`) edge to workspace
//!    functions named `name` whose *file stem* or *impl owner* matches a
//!    path segment; `self`/`crate`-qualified paths resolve within the
//!    caller's crate, `Self::name` within the caller's impl owner.
//! 3. **Bare calls** (`name(…)`) resolve to *free* functions only
//!    (methods require a receiver or a qualified path in real Rust),
//!    preferring the caller's file.
//!
//! Test-only functions are invisible: they neither appear as callees nor
//! contribute edges.

use crate::symbols::{file_stem, EventKind, FnSym, Workspace};
use std::collections::HashMap;

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Callee function id (index into [`Workspace::fns`]).
    pub callee: usize,
    /// 1-based call-site line in the caller's file.
    pub line: usize,
    /// The call sits behind a `catch_unwind` boundary.
    pub in_catch: bool,
}

/// The workspace call graph: `edges[f]` are `f`'s resolved outgoing
/// calls, in body order.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Outgoing edges per function id.
    pub edges: Vec<Vec<Edge>>,
}

/// Method names owned by the standard library's everyday surface —
/// atomics, locks, condvars, channels, iterators, collections, `Option`/
/// `Result` combinators, formatting and conversion traits. A bare
/// `.name(…)` with one of these names is assumed to be the std method;
/// workspace methods sharing the name resolve only via qualified paths.
const STD_METHOD_NAMES: [&str; 74] = [
    // atomics
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    // sync primitives & threads
    "lock",
    "try_lock",
    "read",
    "write",
    "wait",
    "wait_timeout",
    "wait_while",
    "notify_one",
    "notify_all",
    "join",
    "send",
    "recv",
    "try_recv",
    // ubiquitous traits
    "clone",
    "drop",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "default",
    "from",
    "into",
    "try_from",
    "try_into",
    "as_ref",
    "as_mut",
    "deref",
    "index",
    // collections & iterators
    "len",
    "is_empty",
    "get",
    "get_mut",
    "first",
    "last",
    "push",
    "pop",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "iter",
    "next",
    "peek",
    "extend",
    "take",
    "replace",
    "fill",
    // Option/Result combinators
    "map",
    "and_then",
    "or_else",
    "ok",
    "err",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    // io / strings / paths
    "flush",
    "display",
    "parse",
    "to_string",
    "as_str",
    "line",
];

/// `crates/serve/src/server.rs` → `serve`.
fn crate_of(path: &str) -> &str {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(krate)) => krate,
        _ => "",
    }
}

/// Builds the call graph for every non-test function.
pub fn build(ws: &Workspace) -> CallGraph {
    // name → candidate callee ids (non-test only)
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if !f.is_test && !f.is_spawn_body {
            by_name.entry(f.name.as_str()).or_default().push(id);
        }
    }
    let mut graph = CallGraph {
        edges: vec![Vec::new(); ws.fns.len()],
    };
    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        for ev in &f.events {
            let EventKind::Call {
                path, is_method, ..
            } = &ev.kind
            else {
                continue;
            };
            let Some(name) = path.last() else { continue };
            let Some(cands) = by_name.get(name.as_str()) else {
                continue;
            };
            let resolved = resolve(ws, f, path, *is_method, cands);
            for callee in resolved {
                if callee != id {
                    graph.edges[id].push(Edge {
                        callee,
                        line: ev.line,
                        in_catch: ev.in_catch,
                    });
                }
            }
        }
    }
    for edges in &mut graph.edges {
        edges.dedup();
    }
    graph
}

fn resolve(
    ws: &Workspace,
    caller: &FnSym,
    path: &[String],
    is_method: bool,
    cands: &[usize],
) -> Vec<usize> {
    let name = path.last().map(String::as_str).unwrap_or("");
    if is_method {
        // every workspace method of that name, unless the name belongs
        // to std's everyday surface
        if STD_METHOD_NAMES.contains(&name) {
            return Vec::new();
        }
        return cands
            .iter()
            .copied()
            .filter(|&c| ws.fns[c].owner.is_some())
            .collect();
    }
    if path.len() == 1 {
        // bare call: free functions only, same file preferred
        let free: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| ws.fns[c].owner.is_none())
            .collect();
        let same_file: Vec<usize> = free
            .iter()
            .copied()
            .filter(|&c| ws.fns[c].file == caller.file)
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        return free;
    }
    let caller_crate = crate_of(&ws.paths[caller.file]);
    let quals = &path[..path.len() - 1];
    if quals.iter().any(|q| q == "Self") {
        return cands
            .iter()
            .copied()
            .filter(|&c| ws.fns[c].owner == caller.owner && ws.fns[c].file == caller.file)
            .collect();
    }
    let filtered: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| {
            let callee = &ws.fns[c];
            let stem = file_stem(&ws.paths[callee.file]);
            let callee_crate = crate_of(&ws.paths[callee.file]);
            quals.iter().any(|q| {
                q == stem
                    || Some(q) == callee.owner.as_ref()
                    || q.strip_prefix("blob_") == Some(callee_crate)
            }) || (quals.iter().all(|q| q == "self" || q == "crate")
                && callee_crate == caller_crate)
        })
        .collect();
    // qualified but unresolved → external (std / core / alloc): no edge
    filtered
}

/// Renders the graph as deterministic `caller -> callee (line N)` text,
/// one edge per line, for `--call-graph`.
pub fn dump(ws: &Workspace, graph: &CallGraph) -> String {
    let mut lines = Vec::new();
    for (id, edges) in graph.edges.iter().enumerate() {
        let caller = ws.display(id);
        if ws.fns[id].is_test {
            continue;
        }
        for e in edges {
            lines.push(format!(
                "{caller} -> {}{} ({}:{})",
                ws.display(e.callee),
                if e.in_catch { " [caught]" } else { "" },
                ws.path_of(&ws.fns[id]),
                e.line
            ));
        }
    }
    lines.sort();
    lines.dedup();
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::build_workspace;

    /// A two-file fixture exercising every resolution rule.
    fn fixture() -> Workspace {
        build_workspace(&[
            (
                "crates/alpha/src/engine.rs".to_string(),
                "pub fn start() { helper(); worker::tick(); other::tick(); Self::nope(); }\n\
                 fn helper() { std::fs::read(\"x\"); }\n\
                 pub struct Engine;\n\
                 impl Engine {\n\
                     pub fn run(&self) { self.step(); Engine::finish(); }\n\
                     fn step(&self) {}\n\
                     fn finish() {}\n\
                 }\n"
                .to_string(),
            ),
            (
                "crates/alpha/src/worker.rs".to_string(),
                "pub fn tick() { crate::engine::start(); }\n\
                 #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { tick(); }\n}\n"
                    .to_string(),
            ),
        ])
    }

    fn id_of(ws: &Workspace, name: &str) -> usize {
        ws.fns.iter().position(|f| f.name == name).unwrap()
    }

    fn callees(ws: &Workspace, g: &CallGraph, name: &str) -> Vec<String> {
        g.edges[id_of(ws, name)]
            .iter()
            .map(|e| ws.display(e.callee))
            .collect()
    }

    #[test]
    fn bare_calls_prefer_same_file() {
        let ws = fixture();
        let g = build(&ws);
        let cs = callees(&ws, &g, "start");
        assert!(cs.contains(&"engine::helper".to_string()), "{cs:?}");
    }

    #[test]
    fn qualified_calls_filter_by_file_stem() {
        let ws = fixture();
        let g = build(&ws);
        let cs = callees(&ws, &g, "start");
        // worker::tick resolves, other::tick does not (no `other` stem)
        assert_eq!(
            cs.iter().filter(|c| c.as_str() == "worker::tick").count(),
            1,
            "{cs:?}"
        );
    }

    #[test]
    fn external_qualified_calls_produce_no_edge() {
        let ws = fixture();
        let g = build(&ws);
        let cs = callees(&ws, &g, "helper");
        assert!(
            cs.is_empty(),
            "std::fs::read must not edge anywhere: {cs:?}"
        );
    }

    #[test]
    fn method_calls_and_owner_qualified_paths_resolve() {
        let ws = fixture();
        let g = build(&ws);
        let cs = callees(&ws, &g, "run");
        assert!(cs.contains(&"engine::Engine::step".to_string()), "{cs:?}");
        assert!(cs.contains(&"engine::Engine::finish".to_string()), "{cs:?}");
    }

    #[test]
    fn crate_qualified_calls_stay_in_crate() {
        let ws = fixture();
        let g = build(&ws);
        let cs = callees(&ws, &g, "tick");
        assert_eq!(cs, ["engine::start".to_string()], "{cs:?}");
    }

    #[test]
    fn test_fns_are_invisible() {
        let ws = fixture();
        let g = build(&ws);
        let t = id_of(&ws, "t");
        assert!(g.edges[t].is_empty(), "test fns contribute no edges");
        for edges in &g.edges {
            assert!(
                edges.iter().all(|e| e.callee != t),
                "test fns must not be callees"
            );
        }
    }

    #[test]
    fn dump_is_deterministic_text() {
        let ws = fixture();
        let g = build(&ws);
        let d = dump(&ws, &g);
        assert!(
            d.contains("engine::start -> engine::helper (crates/alpha/src/engine.rs:1)"),
            "{d}"
        );
        let mut lines: Vec<&str> = d.lines().collect();
        let sorted = {
            let mut s = lines.clone();
            s.sort();
            s
        };
        lines.sort();
        assert_eq!(lines, sorted);
    }
}
