//! The lint rules and the per-file checking driver.
//!
//! Every rule works on the token stream from [`crate::lexer`] plus a
//! [`FileClass`] derived from the file's repo-relative path. Rules are
//! deliberately lexical: they trade a little precision for zero
//! dependencies and total predictability — each rule documents exactly
//! what pattern it fires on.

use crate::lexer::{lex, Token, TokenKind};

/// A rule violation (or a problem with a suppression comment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier, e.g. `no-unwrap-in-lib`.
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line of the violation.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

/// All rule identifiers, for `--list-rules` and suppression validation.
///
/// `no-unwrap-in-serve` is a deprecated alias: the lexical rule was
/// subsumed by the interprocedural `panic-reachability` analysis, and a
/// suppression naming the old rule still silences the new findings.
pub const RULES: [&str; 14] = [
    "no-unsafe",
    "unsafe-needs-safety-comment",
    "no-unwrap-in-lib",
    "no-unwrap-in-serve",
    "no-float-eq",
    "pub-item-docs",
    "contract-guard",
    "no-adhoc-scope",
    "no-raw-error-body",
    "panic-reachability",
    "lock-order",
    "atomic-ordering",
    "parse-coverage",
    "suppression",
];

/// Deprecated rule → the analysis that replaced it. A suppression naming
/// the old rule also silences findings of the new one.
pub const RULE_ALIASES: [(&str, &str); 1] = [("no-unwrap-in-serve", "panic-reachability")];

/// One paragraph per rule for `--explain <rule>`.
pub const EXPLAIN: [(&str, &str); 14] = [
    (
        "no-unsafe",
        "Fires on any `unsafe` token, everywhere (tests included). The workspace is a \
         from-scratch numeric stack whose whole value is being auditable; a single unsafe \
         block reopens every aliasing/validity question the design closed. If an unsafe \
         site is ever justified, suppress it with a reason AND satisfy \
         `unsafe-needs-safety-comment`.",
    ),
    (
        "unsafe-needs-safety-comment",
        "Every `unsafe` occurrence must have a `// SAFETY: …` comment on the same line or \
         within the two lines above (attributes may sit between). The comment states the \
         invariant that makes the block sound — the reviewer's checklist, not a waiver. \
         This rule complements `no-unsafe`: suppressing the ban does not waive the \
         obligation to write the proof down.",
    ),
    (
        "no-unwrap-in-lib",
        "Library code (any `src/` file that is not a binary) must not `.unwrap()`, \
         `.expect(…)`, or `panic!`: libraries return typed errors and let callers decide. \
         `#[cfg(test)]` regions and test-like files are exempt.",
    ),
    (
        "no-unwrap-in-serve",
        "DEPRECATED alias of `panic-reachability`. The old lexical rule flagged \
         unwrap/expect/panic in serve/cli binary files; the call-graph analysis now covers \
         those same sites (and everything reachable from the worker loops). Existing \
         `allow(no-unwrap-in-serve)` suppressions remain valid and apply to \
         `panic-reachability` findings on the same lines.",
    ),
    (
        "no-float-eq",
        "In kernel/model library code (blob-blas, blob-sim), `==`/`!=` against a float \
         literal is almost always a tolerance bug. Configured sentinels compared \
         bit-exactly are the legitimate exception — suppress with the reason spelled out.",
    ),
    (
        "pub-item-docs",
        "Public items and fields in the numeric core crates (blob-blas, blob-sim, \
         blob-core) need doc comments: these crates are the workspace's API surface and \
         `cargo doc` is the contract of record.",
    ),
    (
        "contract-guard",
        "Public kernel entry points must validate their call contract (dimensions, \
         leading strides) before the first slice index, directly or by delegating to a \
         function that does. Catches the 'index first, validate later' refactor hazard.",
    ),
    (
        "no-adhoc-scope",
        "`std::thread::scope` outside `pool.rs` reintroduces per-call spawns and dodges \
         the pool's crossover/panic/perturbation machinery. All parallelism dispatches \
         through `blob_blas::pool`.",
    ),
    (
        "no-raw-error-body",
        "Serve error responses must go through `envelope::error_response` so every error \
         carries the uniform JSON envelope and trace header. Hand-built \
         `Response::json(4xx/5xx, …)` bodies fork the wire contract.",
    ),
    (
        "panic-reachability",
        "Interprocedural: a panic source (`.unwrap()`, `.expect(…)`, panicking macros, \
         slice indexing, integer division with a non-constant divisor) must not be \
         reachable from a protected root — the serve accept/worker loops, the pool worker \
         loop and job body, or a `std::thread::spawn` closure in pool.rs/server.rs — \
         without crossing a `catch_unwind` boundary. Also flags direct unwrap/expect/panic \
         in serve/cli binaries (subsuming the old `no-unwrap-in-serve`). Findings anchor \
         to the escaping call in the root so a suppression sits on the exact edge being \
         accepted; the message spells out the call chain and the ultimate source.",
    ),
    (
        "lock-order",
        "Interprocedural: builds the 'acquired-while-holding' graph over every \
         Mutex/RwLock field or static (acquisitions seen through `.lock()/.read()/\
         .write()` and lock-helper calls, propagated over the call graph) and rejects \
         cycles — two code paths taking the same pair of locks in opposite orders is a \
         deadlock waiting for the right interleaving. Same-name self-edges are exempt \
         (sharded locks share one field name across instances).",
    ),
    (
        "atomic-ordering",
        "Every `Ordering::Relaxed` access to an atomic that is elsewhere accessed with a \
         stronger ordering — or that lives in pool.rs/server.rs shutdown and liveness \
         paths — must carry a `// relaxed: <why>` comment on the same line or the line \
         above. Mixed orderings are where unsynchronised reads silently race with \
         release/acquire protocols; the comment is the proof obligation.",
    ),
    (
        "parse-coverage",
        "Self-gate for the analysis engine: every workspace `.rs` file must parse into \
         the blob-check AST. A file that falls back out of the grammar is invisible to \
         the interprocedural analyses, so the fix is to extend the parser — never to \
         baseline the finding.",
    ),
    (
        "suppression",
        "Suppression comments (`// blob-check: allow(rule): reason`) are themselves \
         checked: naming an unknown rule or omitting the reason is a finding. The reason \
         is the audit trail that lets a future reader re-evaluate the exception.",
    ),
];

/// What kind of code a file holds, derived from its repo-relative path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Crate name for `crates/<name>/…` paths (`blob-<name>`), `gpu-blob`
    /// for the root package, `None` outside any crate.
    pub crate_name: Option<String>,
    /// Library code: under a `src/` that is not `src/bin/` or `src/main.rs`.
    pub is_lib: bool,
    /// Integration test, example, or bench code.
    pub is_test_like: bool,
}

/// Classifies a repo-relative path (`/`-separated).
pub fn classify(path: &str) -> FileClass {
    let parts: Vec<&str> = path.split('/').collect();
    let crate_name = match parts.as_slice() {
        ["crates", c, ..] => Some(format!("blob-{c}")),
        ["src", ..] | ["examples", ..] | ["tests", ..] | ["benches", ..] => {
            Some("gpu-blob".to_string())
        }
        _ => None,
    };
    let in_src = parts.contains(&"src");
    let is_bin = parts.contains(&"bin") || parts.last() == Some(&"main.rs");
    let is_test_like =
        parts.contains(&"tests") || parts.contains(&"benches") || parts.contains(&"examples");
    FileClass {
        crate_name,
        is_lib: in_src && !is_bin && !is_test_like,
        is_test_like,
    }
}

/// Byte-offset-free region of lines `[start, end]` covered by a
/// `#[cfg(test)]` item (the brace-matched block following the attribute).
fn cfg_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !is_comment(t))
        .collect();
    let mut i = 0;
    while i + 1 < code.len() {
        let (_, t) = code[i];
        if t.text == "#" && code[i + 1].1.text == "[" {
            // scan the attribute tokens to its closing `]`
            let mut j = i + 2;
            let mut depth = 1;
            let mut is_cfg = false;
            let mut mentions_test = false;
            while j < code.len() && depth > 0 {
                let txt = code[j].1.text.as_str();
                match txt {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "cfg" if j == i + 2 => is_cfg = true,
                    "test" => mentions_test = true,
                    _ => {}
                }
                j += 1;
            }
            if is_cfg && mentions_test {
                // brace-match the item body that follows
                while j < code.len() && code[j].1.text != "{" {
                    // a `;`-terminated item (e.g. `#[cfg(test)] use …;`) has
                    // no body — bail out of the region search
                    if code[j].1.text == ";" {
                        break;
                    }
                    j += 1;
                }
                if j < code.len() && code[j].1.text == "{" {
                    let start_line = t.line;
                    let mut braces = 1;
                    let mut k = j + 1;
                    while k < code.len() && braces > 0 {
                        match code[k].1.text.as_str() {
                            "{" => braces += 1,
                            "}" => braces -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    let end_line = code[k.saturating_sub(1).min(code.len() - 1)].1.line;
                    regions.push((start_line, end_line));
                    i = k;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    regions
}

fn in_regions(line: usize, regions: &[(usize, usize)]) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

fn is_comment(t: &Token) -> bool {
    matches!(
        t.kind,
        TokenKind::LineComment | TokenKind::BlockComment | TokenKind::DocComment
    )
}

/// A parsed suppression comment (see [`suppressions`] for the syntax).
#[derive(Debug, Clone)]
pub(crate) struct Suppression {
    pub(crate) rule: String,
    pub(crate) line: usize,
    pub(crate) has_reason: bool,
    pub(crate) known_rule: bool,
}

/// Extracts suppressions from comment tokens. Syntax, anywhere in a line
/// or block comment:
///
/// ```text
/// // blob-check: allow(no-float-eq): beta is a configured sentinel
/// ```
///
/// The reason after the closing `)` and `:` is mandatory; a bare
/// suppression is itself reported (rule `suppression`).
pub(crate) fn suppressions(tokens: &[Token]) -> Vec<Suppression> {
    suppressions_from(
        tokens
            .iter()
            .filter(|t| is_comment(t))
            .map(|t| (t.line, t.text.as_str())),
    )
}

/// [`suppressions`] over pre-extracted `(line, text)` comment pairs, so
/// the deep analyses can reuse the comments the symbol index already
/// collected instead of re-lexing.
pub(crate) fn suppressions_from<'a>(
    comments: impl Iterator<Item = (usize, &'a str)>,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (line, text) in comments {
        let Some(at) = text.find("blob-check:") else {
            continue;
        };
        let rest = text[at + "blob-check:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = args.find(')') else {
            continue;
        };
        let rule = args[..close].trim().to_string();
        let tail = args[close + 1..]
            .trim_start()
            .trim_start_matches(':')
            .trim();
        out.push(Suppression {
            known_rule: RULES.contains(&rule.as_str()),
            rule,
            line,
            has_reason: !tail.is_empty(),
        });
    }
    out
}

/// True when `lit` is a floating-point literal token text.
fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text.contains('e')
        || text.contains('E')
}

/// Shared context computed once per workspace run (for `contract-guard`).
#[derive(Debug, Default, Clone)]
pub struct Context {
    /// Names of functions in the guarded kernel files that are known to
    /// validate their contract (directly or by delegation) — calling one
    /// of these counts as guarding.
    pub guarded_fns: Vec<String>,
}

/// The files whose public kernels must validate the call contract before
/// touching any slice.
pub const GUARDED_FILES: [&str; 5] = [
    "crates/blas/src/gemm.rs",
    "crates/blas/src/gemv.rs",
    "crates/blas/src/level1.rs",
    "crates/blas/src/level23.rs",
    "crates/blas/src/batched.rs",
];

/// One function's lexical summary used by the guard fixpoint.
#[derive(Debug)]
struct FnInfo {
    name: String,
    line: usize,
    is_pub: bool,
    mentions_contract_error: bool,
    /// Token offsets (within the body slice) of guard-relevant events.
    direct_check_at: Option<usize>,
    first_index_at: Option<usize>,
    /// `(callee name, body offset)` of every call made in the body.
    calls: Vec<(String, usize)>,
}

/// Extracts every `fn` in a token stream with the lexical facts the
/// contract-guard rule needs. `skip_regions` excludes `#[cfg(test)]` code.
fn collect_fns(tokens: &[Token], skip_regions: &[(usize, usize)]) -> Vec<FnInfo> {
    const KEYWORDS: [&str; 14] = [
        "if", "while", "for", "match", "return", "loop", "let", "else", "fn", "move", "in", "as",
        "break", "continue",
    ];
    let code: Vec<&Token> = tokens.iter().filter(|t| !is_comment(t)).collect();
    let mut fns = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].text != "fn" || in_regions(code[i].line, skip_regions) {
            i += 1;
            continue;
        }
        let Some(name_tok) = code.get(i + 1) else {
            break;
        };
        // `pub` possibly with a `pub(crate)` restriction, scanning backwards
        let is_pub = {
            let mut j = i;
            let mut p = false;
            while j > 0 {
                j -= 1;
                match code[j].text.as_str() {
                    ")" => {
                        // skip back over a (crate)/(super) restriction
                        while j > 0 && code[j].text != "(" {
                            j -= 1;
                        }
                        if j == 0 {
                            break;
                        }
                        continue;
                    }
                    "pub" => {
                        // bare `pub` only: a restriction shows up as `(`
                        // immediately after, which we'd have skipped already
                        p = code.get(j + 1).map(|t| t.text != "(").unwrap_or(true);
                        break;
                    }
                    "const" | "unsafe" | "async" | "extern" => continue,
                    _ => break,
                }
            }
            p
        };
        // find the body `{`, brace-matching nothing in between (signatures
        // have no braces in this codebase; `;` means a trait method decl)
        let mut j = i + 2;
        let mut mentions_contract_error = false;
        while j < code.len() && code[j].text != "{" && code[j].text != ";" {
            if code[j].text == "ContractError" {
                mentions_contract_error = true;
            }
            j += 1;
        }
        if j >= code.len() || code[j].text == ";" {
            i = j;
            continue;
        }
        let body_start = j + 1;
        let mut depth = 1;
        let mut k = body_start;
        let mut direct_check_at = None;
        let mut first_index_at = None;
        let mut calls = Vec::new();
        while k < code.len() && depth > 0 {
            let txt = code[k].text.as_str();
            match txt {
                "{" => depth += 1,
                "}" => depth -= 1,
                "contract" => {
                    if code.get(k + 1).map(|t| t.text == "::").unwrap_or(false)
                        && direct_check_at.is_none()
                    {
                        direct_check_at = Some(k);
                    }
                }
                "[" => {
                    // expression indexing: `x[`, `)[`, `][` — not `#[`
                    // attributes, `&[T]` types, or array literals
                    let prev = code[k - 1];
                    let is_index = matches!(prev.kind, TokenKind::Ident)
                        && !KEYWORDS.contains(&prev.text.as_str())
                        || prev.text == ")"
                        || prev.text == "]";
                    if is_index && first_index_at.is_none() {
                        first_index_at = Some(k);
                    }
                }
                _ => {}
            }
            if code[k].kind == TokenKind::Ident
                && code.get(k + 1).map(|t| t.text == "(").unwrap_or(false)
                && !KEYWORDS.contains(&txt)
            {
                if txt.starts_with("check_") && direct_check_at.is_none() {
                    direct_check_at = Some(k);
                }
                calls.push((txt.to_string(), k));
            }
            k += 1;
        }
        fns.push(FnInfo {
            name: name_tok.text.clone(),
            line: code[i].line,
            is_pub,
            mentions_contract_error,
            direct_check_at,
            first_index_at,
            calls,
        });
        i = k;
    }
    fns
}

/// Builds the [`Context`] by fixpoint over the guarded kernel files: a
/// function is *guarding* if it directly calls `contract::…`/`check_…`, or
/// if every path to its data goes through a call to another guarding
/// function (approximated as: it calls one before any slice index).
pub fn build_context(files: &[(String, String)]) -> Context {
    let mut all: Vec<FnInfo> = Vec::new();
    for (path, text) in files {
        if !GUARDED_FILES.contains(&path.as_str()) {
            continue;
        }
        let tokens = lex(text);
        let regions = cfg_test_regions(&tokens);
        all.extend(collect_fns(&tokens, &regions));
    }
    let mut guarded: Vec<String> = all
        .iter()
        .filter(|f| f.direct_check_at.is_some())
        .map(|f| f.name.clone())
        .collect();
    // fixpoint: delegating wrappers become guarded once their callee is
    loop {
        let before = guarded.len();
        for f in &all {
            if guarded.contains(&f.name) {
                continue;
            }
            let delegates = f.calls.iter().any(|(callee, at)| {
                guarded.contains(callee) && f.first_index_at.map(|idx| *at < idx).unwrap_or(true)
            });
            if delegates {
                guarded.push(f.name.clone());
            }
        }
        if guarded.len() == before {
            break;
        }
    }
    Context {
        guarded_fns: guarded,
    }
}

/// Runs every rule over one file and returns unsuppressed findings plus
/// findings about the suppressions themselves.
pub fn check_file(path: &str, text: &str, ctx: &Context) -> Vec<Finding> {
    let tokens = lex(text);
    let class = classify(path);
    let test_regions = cfg_test_regions(&tokens);
    let sups = suppressions(&tokens);
    let mut findings = Vec::new();

    let code: Vec<&Token> = tokens.iter().filter(|t| !is_comment(t)).collect();

    // --- no-unsafe: applies everywhere, tests included -------------------
    for t in &code {
        if t.kind == TokenKind::Ident && t.text == "unsafe" {
            findings.push(Finding {
                rule: "no-unsafe",
                path: path.to_string(),
                line: t.line,
                message: "`unsafe` is forbidden in this workspace".to_string(),
            });
        }
    }

    // --- no-adhoc-scope: kernel code dispatches through pool.rs ----------
    // `std::thread::scope` is the one lifetime-erasure primitive the
    // workspace allows, and `blob_blas::pool` is its sole home: every other
    // call site would reintroduce per-call spawns on the hot path and dodge
    // the pool's crossover/panic/perturbation machinery. Fires on the token
    // sequence `thread :: scope (` anywhere in `crates/blas/src/` except
    // `pool.rs` itself (tests included — unit tests exercise the pool API).
    if path.starts_with("crates/blas/src/") && path != "crates/blas/src/pool.rs" {
        for (i, t) in code.iter().enumerate() {
            if t.kind == TokenKind::Ident
                && t.text == "scope"
                && i >= 2
                && code[i - 1].text == "::"
                && code[i - 2].text == "thread"
                && code.get(i + 1).map(|t| t.text == "(").unwrap_or(false)
            {
                findings.push(Finding {
                    rule: "no-adhoc-scope",
                    path: path.to_string(),
                    line: t.line,
                    message: "`std::thread::scope` outside `pool.rs` — dispatch through \
                              `blob_blas::pool` (`run_scoped`/`parallel_for`) instead"
                        .to_string(),
                });
            }
        }
    }

    // --- no-unwrap-in-lib: library code outside #[cfg(test)] -------------
    if class.is_lib {
        for (i, t) in code.iter().enumerate() {
            if in_regions(t.line, &test_regions) || t.kind != TokenKind::Ident {
                continue;
            }
            let prev_dot = i > 0 && code[i - 1].text == ".";
            let next = |o: usize| code.get(i + o).map(|t| t.text.as_str());
            let hit = match t.text.as_str() {
                "unwrap" | "expect" if prev_dot && next(1) == Some("(") => Some(format!(
                    "`.{}()` in library code — return a typed error instead",
                    t.text
                )),
                "panic" if next(1) == Some("!") => {
                    Some("`panic!` in library code — return a typed error instead".to_string())
                }
                _ => None,
            };
            if let Some(message) = hit {
                findings.push(Finding {
                    rule: "no-unwrap-in-lib",
                    path: path.to_string(),
                    line: t.line,
                    message,
                });
            }
        }
    }

    // (The lexical `no-unwrap-in-serve` rule that lived here was subsumed
    // by the interprocedural `panic-reachability` analysis — see
    // `crate::panics`. The rule id survives as a suppression alias.)

    // --- unsafe-needs-safety-comment: unsafe sites document soundness ----
    // Complements `no-unsafe`: even a *suppressed* unsafe block must state
    // the invariant that makes it sound. A `// SAFETY: …` comment on the
    // same line or within the two lines above (attributes may intervene)
    // satisfies the rule. Applies everywhere `no-unsafe` does, tests
    // included.
    for t in &code {
        if t.kind != TokenKind::Ident || t.text != "unsafe" {
            continue;
        }
        let documented = tokens.iter().filter(|c| is_comment(c)).any(|c| {
            let end = c.line + c.text.matches('\n').count();
            c.line <= t.line && end + 2 >= t.line && c.text.contains("SAFETY:")
        });
        if !documented {
            findings.push(Finding {
                rule: "unsafe-needs-safety-comment",
                path: path.to_string(),
                line: t.line,
                message: "`unsafe` without a `// SAFETY: …` comment stating the invariant \
                          that makes it sound"
                    .to_string(),
            });
        }
    }

    // --- no-float-eq: kernel/model code (blas + sim libraries) -----------
    let float_eq_scope = class.is_lib
        && matches!(
            class.crate_name.as_deref(),
            Some("blob-blas") | Some("blob-sim")
        );
    if float_eq_scope {
        for (i, t) in code.iter().enumerate() {
            if t.kind != TokenKind::Punct || (t.text != "==" && t.text != "!=") {
                continue;
            }
            if in_regions(t.line, &test_regions) {
                continue;
            }
            let neighbor_float = |o: &Option<&&Token>| {
                o.map(|t| {
                    (t.kind == TokenKind::Num && is_float_literal(&t.text))
                        || t.text == "f32"
                        || t.text == "f64"
                })
                .unwrap_or(false)
            };
            let prev = if i > 0 { code.get(i - 1) } else { None };
            if neighbor_float(&prev) || neighbor_float(&code.get(i + 1)) {
                findings.push(Finding {
                    rule: "no-float-eq",
                    path: path.to_string(),
                    line: t.line,
                    message: format!(
                        "`{}` against a float literal in kernel/model code — compare with a tolerance",
                        t.text
                    ),
                });
            }
        }
    }

    // --- pub-item-docs: numeric core crates need doc comments ------------
    let docs_scope = class.is_lib
        && matches!(
            class.crate_name.as_deref(),
            Some("blob-blas") | Some("blob-sim") | Some("blob-core")
        );
    if docs_scope {
        const ITEM_KEYWORDS: [&str; 9] = [
            "fn", "struct", "enum", "trait", "const", "static", "type", "mod", "union",
        ];
        // indices into `tokens` (comments kept — we need to see the docs)
        for (i, t) in tokens.iter().enumerate() {
            if t.text != "pub" || t.kind != TokenKind::Ident {
                continue;
            }
            if in_regions(t.line, &test_regions) {
                continue;
            }
            // `pub(crate)` and friends are not public API
            let mut j = i + 1;
            while j < tokens.len() && is_comment(&tokens[j]) {
                j += 1;
            }
            if tokens.get(j).map(|t| t.text == "(").unwrap_or(true) {
                continue;
            }
            // skip `unsafe`/`const`/`async` qualifiers to the item keyword
            let mut item = None;
            let mut probe = j;
            for _ in 0..3 {
                match tokens.get(probe).map(|t| t.text.as_str()) {
                    Some(k) if ITEM_KEYWORDS.contains(&k) => {
                        item = Some(k.to_string());
                        break;
                    }
                    Some("unsafe") | Some("const") | Some("async") | Some("extern") => probe += 1,
                    _ => break,
                }
            }
            let described = match item {
                Some(k) => {
                    // `pub mod name;` declarations carry their docs as `//!`
                    // inside the module file (rustc accepts that), which a
                    // single-file pass cannot see — skip them
                    if k == "mod"
                        && tokens
                            .get(probe + 2)
                            .map(|t| t.text == ";")
                            .unwrap_or(false)
                    {
                        continue;
                    }
                    let name = tokens
                        .get(probe + 1)
                        .map(|t| t.text.clone())
                        .unwrap_or_default();
                    format!("{k} `{name}`")
                }
                // `pub name: Type` struct field (skip `pub use` re-exports
                // and anything unrecognised)
                None => {
                    let is_field = tokens
                        .get(j)
                        .map(|t| t.kind == TokenKind::Ident)
                        .unwrap_or(false)
                        && tokens.get(j).map(|t| t.text != "use").unwrap_or(false)
                        && tokens.get(j + 1).map(|t| t.text == ":").unwrap_or(false);
                    if !is_field {
                        continue;
                    }
                    format!("field `{}`", tokens[j].text)
                }
            };
            // walk backwards over attributes to the nearest doc comment
            let mut b = i;
            let mut documented = false;
            while b > 0 {
                b -= 1;
                let bt = &tokens[b];
                match bt.kind {
                    TokenKind::DocComment => {
                        documented = true;
                        break;
                    }
                    TokenKind::LineComment | TokenKind::BlockComment => continue,
                    _ => {
                        if bt.text == "]" {
                            // skip back over one `#[…]` attribute
                            let mut depth = 1;
                            while b > 0 && depth > 0 {
                                b -= 1;
                                match tokens[b].text.as_str() {
                                    "]" => depth += 1,
                                    "[" => depth -= 1,
                                    _ => {}
                                }
                            }
                            if b > 0 && tokens[b - 1].text == "#" {
                                b -= 1;
                                continue;
                            }
                        }
                        break;
                    }
                }
            }
            if !documented {
                findings.push(Finding {
                    rule: "pub-item-docs",
                    path: path.to_string(),
                    line: t.line,
                    message: format!("public {described} has no doc comment"),
                });
            }
        }
    }

    // --- contract-guard: kernel entry points validate before indexing ----
    if GUARDED_FILES.contains(&path) {
        for f in collect_fns(&tokens, &test_regions) {
            if !f.is_pub {
                continue;
            }
            let first_guard = f
                .direct_check_at
                .into_iter()
                .chain(
                    f.calls
                        .iter()
                        .filter(|(name, _)| ctx.guarded_fns.contains(name))
                        .map(|&(_, at)| at),
                )
                .min();
            let violation = match (first_guard, f.first_index_at) {
                // indexes a slice before (or without) any validation
                (None, Some(_)) => Some("indexes a slice without validating the call contract"),
                (Some(g), Some(ix)) if g > ix => {
                    Some("indexes a slice before validating the call contract")
                }
                // returns ContractError but never validates anything
                (None, None) if f.mentions_contract_error => {
                    Some("returns ContractError but never validates the call contract")
                }
                _ => None,
            };
            if let Some(why) = violation {
                findings.push(Finding {
                    rule: "contract-guard",
                    path: path.to_string(),
                    line: f.line,
                    message: format!("pub fn `{}` {}", f.name, why),
                });
            }
        }
    }

    // --- no-raw-error-body: serve errors go through the envelope ---------
    // Every serve error response must carry the uniform JSON envelope
    // (`{"error":{"code","message","trace_id"}}`) and the `X-Blob-Trace`
    // header, both minted by `envelope::error_response`. A handler that
    // hand-builds an error via `Response::json(4xx…)`/`Response::text(5xx…)`
    // silently forks the wire contract. Fires on the token sequence
    // `Response :: json|text ( <int literal ≥ 400>` anywhere in
    // `crates/serve/src/` except the envelope module itself and the
    // transport layer (`http.rs`, which defines the constructors), tests
    // excluded.
    let raw_error_scope = path.starts_with("crates/serve/src/")
        && path != "crates/serve/src/envelope.rs"
        && path != "crates/serve/src/http.rs";
    if raw_error_scope {
        for (i, t) in code.iter().enumerate() {
            if t.kind != TokenKind::Ident || (t.text != "json" && t.text != "text") {
                continue;
            }
            if in_regions(t.line, &test_regions) {
                continue;
            }
            let is_ctor = i >= 2
                && code[i - 1].text == "::"
                && code[i - 2].text == "Response"
                && code.get(i + 1).map(|t| t.text == "(").unwrap_or(false);
            if !is_ctor {
                continue;
            }
            let status = code
                .get(i + 2)
                .filter(|t| t.kind == TokenKind::Num)
                .and_then(|t| t.text.parse::<u32>().ok());
            if let Some(s) = status {
                if s >= 400 {
                    findings.push(Finding {
                        rule: "no-raw-error-body",
                        path: path.to_string(),
                        line: t.line,
                        message: format!(
                            "`Response::{}({s}, …)` builds an error body outside the envelope — \
                             use `envelope::error_response` instead",
                            t.text
                        ),
                    });
                }
            }
        }
    }

    // --- suppression handling --------------------------------------------
    for s in &sups {
        if !s.known_rule {
            findings.push(Finding {
                rule: "suppression",
                path: path.to_string(),
                line: s.line,
                message: format!("suppression names unknown rule `{}`", s.rule),
            });
        } else if !s.has_reason {
            findings.push(Finding {
                rule: "suppression",
                path: path.to_string(),
                line: s.line,
                message: format!(
                    "suppression of `{}` must give a reason: `// blob-check: allow({}): <why>`",
                    s.rule, s.rule
                ),
            });
        }
    }
    findings.retain(|f| {
        f.rule == "suppression"
            || !sups.iter().any(|s| {
                s.known_rule
                    && s.has_reason
                    && s.rule == f.rule
                    && (s.line == f.line || s.line + 1 == f.line)
            })
    });
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_lib(src: &str) -> Vec<Finding> {
        check_file("crates/blas/src/demo.rs", src, &Context::default())
    }

    #[test]
    fn classify_paths() {
        assert!(classify("crates/blas/src/gemm.rs").is_lib);
        assert!(!classify("crates/cli/src/main.rs").is_lib);
        assert!(!classify("crates/core/src/bin/tool.rs").is_lib);
        assert!(!classify("crates/blas/tests/edge.rs").is_lib);
        assert!(classify("src/lib.rs").is_lib);
        assert_eq!(
            classify("crates/sim/src/call.rs").crate_name.as_deref(),
            Some("blob-sim")
        );
        assert_eq!(
            classify("examples/x.rs").crate_name.as_deref(),
            Some("gpu-blob")
        );
    }

    #[test]
    fn unsafe_is_flagged_everywhere() {
        let f = check_file(
            "crates/blas/tests/t.rs",
            "fn f() { unsafe { } }",
            &Context::default(),
        );
        // the ban fires, and so does the missing-SAFETY-comment companion
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|f| f.rule == "no-unsafe"));
        assert!(f.iter().any(|f| f.rule == "unsafe-needs-safety-comment"));
    }

    #[test]
    fn unwrap_in_lib_flagged_but_not_in_tests_or_comments() {
        let src = r#"
/// Doc mentioning .unwrap() freely.
fn f(x: Option<u32>) -> u32 { x.unwrap() }
// comment: .unwrap()
const S: &str = ".unwrap()";
#[cfg(test)]
mod tests {
    fn g(x: Option<u32>) -> u32 { x.unwrap() }
}
"#;
        let f = check_lib(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-unwrap-in-lib");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn expect_and_panic_flagged_in_lib_only() {
        let lib = check_lib("fn f() { x.expect(\"boom\"); panic!(\"no\"); }");
        assert_eq!(lib.len(), 2);
        let tests = check_file(
            "crates/blas/tests/t.rs",
            "fn f() { x.expect(\"fine in tests\"); }",
            &Context::default(),
        );
        assert!(tests.is_empty());
        // unwrap_or_else is a different identifier — not flagged
        assert!(check_lib("fn f() { x.unwrap_or_else(|| 3); }").is_empty());
    }

    #[test]
    fn lexical_serve_rule_is_retired_in_favour_of_the_analysis() {
        // the old per-file rule no longer fires — `panic-reachability`
        // (crate::panics) covers serve/cli binaries interprocedurally
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let f = check_file("crates/cli/src/main.rs", src, &Context::default());
        assert!(f.iter().all(|f| f.rule != "no-unwrap-in-serve"), "{f:?}");
        // …but the rule id stays valid for suppressions (alias), so a
        // comment naming it is not an "unknown rule" finding
        let sup = "// blob-check: allow(no-unwrap-in-serve): startup precondition\nfn f() {}";
        let f = check_file("crates/cli/src/main.rs", sup, &Context::default());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged_alongside_no_unsafe() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        let f = check_lib(src);
        assert!(f.iter().any(|f| f.rule == "no-unsafe"), "{f:?}");
        assert!(
            f.iter().any(|f| f.rule == "unsafe-needs-safety-comment"),
            "{f:?}"
        );
    }

    #[test]
    fn safety_comment_satisfies_the_comment_rule_but_not_the_ban() {
        let src = "fn f(p: *const u8) -> u8 {\n\
                   \x20   // SAFETY: caller guarantees p is valid for reads\n\
                   \x20   unsafe { *p }\n\
                   }";
        let f = check_lib(src);
        assert!(
            f.iter().all(|f| f.rule != "unsafe-needs-safety-comment"),
            "{f:?}"
        );
        assert!(
            f.iter().any(|f| f.rule == "no-unsafe"),
            "documented ≠ allowed: {f:?}"
        );
        // an attribute between the comment and the item is fine
        let gap = "// SAFETY: zeroed bytes are a valid Header\n\
                   #[inline]\n\
                   unsafe fn cast() {}";
        let f = check_lib(gap);
        assert!(
            f.iter().all(|f| f.rule != "unsafe-needs-safety-comment"),
            "{f:?}"
        );
        // a SAFETY comment three or more lines up is too far to bind
        let far = "// SAFETY: stale\n\nfn pad() {}\nfn f() { unsafe {} }";
        let f = check_lib(far);
        assert!(
            f.iter().any(|f| f.rule == "unsafe-needs-safety-comment"),
            "{f:?}"
        );
    }

    #[test]
    fn float_eq_flagged_in_kernel_code() {
        let f = check_lib("fn f(x: f64) -> bool { x == 0.0 }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-float-eq");
        // integer comparison is fine
        assert!(check_lib("fn f(x: usize) -> bool { x == 0 }").is_empty());
        // out of scope: core crate is not kernel/model code
        let core = check_file(
            "crates/core/src/x.rs",
            "fn f(x: f64) -> bool { x == 0.0 }",
            &Context::default(),
        );
        assert!(core.iter().all(|f| f.rule != "no-float-eq"));
    }

    #[test]
    fn float_eq_suppression_needs_reason() {
        let with_reason = check_lib(
            "fn f(b: f64) -> bool {\n    // blob-check: allow(no-float-eq): beta is a sentinel\n    b == 0.0\n}",
        );
        assert!(with_reason.is_empty(), "{with_reason:?}");
        let without = check_lib(
            "fn f(b: f64) -> bool {\n    // blob-check: allow(no-float-eq)\n    b == 0.0\n}",
        );
        // the violation stays AND the bare suppression is reported
        assert_eq!(without.len(), 2, "{without:?}");
        assert!(without.iter().any(|f| f.rule == "suppression"));
        assert!(without.iter().any(|f| f.rule == "no-float-eq"));
    }

    #[test]
    fn unknown_rule_suppression_reported() {
        let f = check_lib("// blob-check: allow(no-such-rule): whatever\nfn f() {}");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("unknown rule"));
    }

    #[test]
    fn pub_docs_required_in_core_crates() {
        let src = "pub fn undocumented() {}\n/// Documented.\npub fn documented() {}\n";
        let f = check_lib(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "pub-item-docs");
        assert!(f[0].message.contains("undocumented"));
        // attributes between doc and item are fine
        let attr =
            "/// Doc.\n#[derive(Debug)]\npub struct S {\n    /// Field doc.\n    pub x: u32,\n}\n";
        assert!(check_lib(attr).is_empty());
        // field without doc is flagged; pub(crate) and pub use are not
        let field =
            "/// Doc.\npub struct S { pub x: u32 }\npub(crate) fn h() {}\npub use std::mem;\n";
        let f = check_lib(field);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("field `x`"));
    }

    fn guard_findings(path: &str, src: &str, ctx: &Context) -> Vec<Finding> {
        check_file(path, src, ctx)
            .into_iter()
            .filter(|f| f.rule == "contract-guard")
            .collect()
    }

    #[test]
    fn contract_guard_detects_unvalidated_indexing() {
        let path = "crates/blas/src/gemm.rs";
        let bad = "pub fn kernel(a: &[f64]) -> f64 { a[0] }";
        let ctx = Context::default();
        assert_eq!(guard_findings(path, bad, &ctx).len(), 1);
        let good = "pub fn kernel(a: &[f64]) -> Result<f64, ContractError> {\n    contract::check_vector(\"a\", a.len(), 1, 1)?;\n    Ok(a[0])\n}";
        assert!(guard_findings(path, good, &ctx).is_empty());
        let late = "pub fn kernel(a: &[f64]) -> Result<f64, ContractError> {\n    let v = a[0];\n    contract::check_vector(\"a\", a.len(), 1, 1)?;\n    Ok(v)\n}";
        assert!(guard_findings(path, late, &ctx)
            .iter()
            .any(|f| f.message.contains("before validating")));
        // not a guarded file: same code passes
        assert!(guard_findings("crates/sim/src/cpu.rs", bad, &ctx).is_empty());
    }

    #[test]
    fn contract_guard_accepts_delegation() {
        let files = vec![(
            "crates/blas/src/gemm.rs".to_string(),
            "pub fn inner(a: &[f64]) -> Result<f64, ContractError> {\n    contract::check_vector(\"a\", a.len(), 1, 1)?;\n    Ok(a[0])\n}\npub fn outer(a: &[f64]) -> Result<f64, ContractError> {\n    inner(a)\n}\npub fn outer2(a: &[f64]) -> Result<f64, ContractError> {\n    outer(a)\n}\n"
                .to_string(),
        )];
        let ctx = build_context(&files);
        assert!(ctx.guarded_fns.contains(&"inner".to_string()));
        assert!(ctx.guarded_fns.contains(&"outer".to_string()));
        assert!(ctx.guarded_fns.contains(&"outer2".to_string()));
        let f = guard_findings(&files[0].0, &files[0].1, &ctx);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn adhoc_scope_flagged_in_blas_outside_pool() {
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }";
        let f = check_lib(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-adhoc-scope");
        // pool.rs is the one sanctioned home for the primitive
        let pool = check_file("crates/blas/src/pool.rs", src, &Context::default());
        assert!(pool.iter().all(|f| f.rule != "no-adhoc-scope"), "{pool:?}");
        // other crates are out of scope for this rule
        let core = check_file("crates/core/src/runner.rs", src, &Context::default());
        assert!(core.iter().all(|f| f.rule != "no-adhoc-scope"), "{core:?}");
        // a different `scope` identifier (no `thread ::` prefix) is fine
        assert!(check_lib("fn f(s: Scope) { s.scope(|x| x); }").is_empty());
        // `use`-imported `thread::scope(` still carries the prefix tokens
        let imported = check_lib("use std::thread;\nfn f() { thread::scope(|s| {}); }");
        assert_eq!(imported.len(), 1, "{imported:?}");
    }

    #[test]
    fn adhoc_scope_suppressible_with_reason() {
        let src = "fn f() {\n    // blob-check: allow(no-adhoc-scope): bootstrap before pool exists\n    std::thread::scope(|s| { s.spawn(|| {}); });\n}";
        let f = check_lib(src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn raw_error_body_flagged_in_serve_handlers() {
        let bad = "fn f() -> Response { Response::json(400, doc) }";
        let f = check_file("crates/serve/src/api.rs", bad, &Context::default());
        assert!(f.iter().any(|f| f.rule == "no-raw-error-body"), "{f:?}");
        let bad_text = "fn f() -> Response { Response::text(503, \"busy\".into()) }";
        let f = check_file("crates/serve/src/server.rs", bad_text, &Context::default());
        assert!(f.iter().any(|f| f.rule == "no-raw-error-body"), "{f:?}");
        // success responses are fine
        let ok = "fn f() -> Response { Response::json(200, doc) }";
        let f = check_file("crates/serve/src/api.rs", ok, &Context::default());
        assert!(f.iter().all(|f| f.rule != "no-raw-error-body"), "{f:?}");
        // a computed status is beyond a lexical rule — not flagged
        let dynamic = "fn f(s: u16) -> Response { Response::json(s, doc) }";
        let f = check_file("crates/serve/src/api.rs", dynamic, &Context::default());
        assert!(f.iter().all(|f| f.rule != "no-raw-error-body"), "{f:?}");
        // the envelope module and the transport layer are the sanctioned homes
        for exempt in ["crates/serve/src/envelope.rs", "crates/serve/src/http.rs"] {
            let f = check_file(exempt, bad, &Context::default());
            assert!(f.iter().all(|f| f.rule != "no-raw-error-body"), "{f:?}");
        }
        // other crates are out of scope
        let f = check_file("crates/cli/src/main.rs", bad, &Context::default());
        assert!(f.iter().all(|f| f.rule != "no-raw-error-body"), "{f:?}");
        // serve tests may hand-roll whatever they assert on
        let in_test =
            "#[cfg(test)]\nmod tests {\n    fn f() -> Response { Response::json(404, doc) }\n}";
        let f = check_file("crates/serve/src/api.rs", in_test, &Context::default());
        assert!(f.iter().all(|f| f.rule != "no-raw-error-body"), "{f:?}");
    }

    #[test]
    fn raw_error_body_suppressible_with_reason() {
        let src = "fn f() -> Response {\n    // blob-check: allow(no-raw-error-body): pre-envelope bootstrap reply\n    Response::json(500, doc)\n}";
        let f = check_file("crates/serve/src/server.rs", src, &Context::default());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cfg_test_region_spans_the_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c(x: Option<u32>) { x.unwrap(); }\n";
        let f = check_lib(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
    }
}
