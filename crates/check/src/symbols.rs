//! The workspace-wide symbol index: every function (free, method, trait
//! default, nested) with the per-function *facts* the interprocedural
//! analyses consume — calls made, panic sources contained, atomic
//! accesses, and lock-shaped declarations.
//!
//! Extraction is one traversal per function body. Three context bits are
//! tracked during the walk and stamped onto every event:
//!
//! - **`in_catch`** — the event sits inside the argument of a
//!   `catch_unwind(…)` call, i.e. behind an unwind boundary;
//! - **test scope** — the enclosing item (or file) is test-only, which
//!   excludes the function from the analyses entirely;
//! - **spawned bodies** — a closure passed to `std::thread::spawn`
//!   becomes its *own* synthetic function (`parent::<spawn@line>`),
//!   because its body runs on a detached thread where the parent's
//!   unwind boundaries do not apply.
//!
//! Closures that stay on the caller's thread (iterator adapters, scoped
//! `s.spawn`, pool jobs) keep their events in the enclosing function:
//! the inline-execution approximation the analyses document.

use crate::ast::{Block, Expr, File, Item, ItemKind, Stmt};
use crate::lexer::{lex, Token, TokenKind};
use crate::parser::{parse_file, ParseError};

/// How a panic can originate, syntactically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// `.unwrap()`
    Unwrap,
    /// `.expect(…)`
    Expect,
    /// `panic!` / `assert!` / `unreachable!` / `todo!` / … (name kept
    /// in the event description).
    PanicMacro,
    /// Slice/array/map indexing `x[i]` (full-range `x[..]` exempt).
    Index,
    /// Integer `/` or `%` with a non-literal divisor.
    Div,
}

impl SourceKind {
    /// Human label used in finding messages.
    pub fn label(self) -> &'static str {
        match self {
            SourceKind::Unwrap => "`.unwrap()`",
            SourceKind::Expect => "`.expect(…)`",
            SourceKind::PanicMacro => "panicking macro",
            SourceKind::Index => "slice indexing",
            SourceKind::Div => "integer division",
        }
    }
}

/// One analysis-relevant occurrence inside a function body.
#[derive(Debug, Clone)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// 1-based source line.
    pub line: usize,
    /// True when the event is behind a `catch_unwind` boundary.
    pub in_catch: bool,
    /// Lexical scope depth (fn body = 1; inner blocks and expression
    /// statements deeper). Paired with [`EventKind::ScopeEnd`] so the
    /// lock analysis can model guard drops: a `ScopeEnd` at depth `d`
    /// releases every acquisition made at depth ≥ `d`.
    pub depth: usize,
}

/// Event payloads.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A call: `path(…)` or `recv.name(…)`.
    Call {
        /// Path segments for path calls; `[name]` for method calls.
        path: Vec<String>,
        /// Method-call syntax (resolution differs).
        is_method: bool,
        /// Receiver identifier chain for method calls (lock labelling).
        recv_hint: Vec<String>,
        /// Trailing identifier chain of each argument (helper-based lock
        /// acquisition like `lock_ignore_poison(&self.jobs)`).
        arg_hints: Vec<Vec<String>>,
    },
    /// A syntactic panic source; `what` is the precise spelling
    /// (`assert_eq!`, `.unwrap()`, …).
    Source {
        /// Coarse kind.
        kind: SourceKind,
        /// Precise spelling for messages.
        what: String,
    },
    /// An atomic access that names a memory ordering.
    Atomic {
        /// Receiver's trailing identifier (the atomic's name).
        atom: String,
        /// `Relaxed`, `Acquire`, `Release`, `AcqRel`, or `SeqCst`.
        ordering: String,
    },
    /// A lexical scope (block or expression statement) closed; the
    /// event's `depth` is the scope that ended. Guards bound inside it
    /// are dead past this point.
    ScopeEnd,
}

/// One function in the workspace symbol index.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Index into [`Workspace::paths`].
    pub file: usize,
    /// Function name (synthetic `parent::<spawn@N>` for spawned bodies).
    pub name: String,
    /// `impl` type name when the function is a method.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword (or the spawn site).
    pub line: usize,
    /// Excluded from the analyses: `#[cfg(test)]`/`#[test]` scope or a
    /// test-like file (tests/, benches/, examples/).
    pub is_test: bool,
    /// Synthetic body of a closure handed to `std::thread::spawn`.
    pub is_spawn_body: bool,
    /// Ordered body events.
    pub events: Vec<Event>,
}

/// A `Mutex`/`RwLock` declaration (struct field or static) the lock-order
/// analysis labels acquisitions against.
#[derive(Debug, Clone)]
pub struct LockDef {
    /// Field or static name.
    pub name: String,
    /// Index into [`Workspace::paths`].
    pub file: usize,
    /// 1-based line.
    pub line: usize,
}

/// One comment's position and text, for justification lookups
/// (`// SAFETY:`, `// relaxed:`).
#[derive(Debug, Clone)]
pub struct CommentSpan {
    /// 1-based first line.
    pub start: usize,
    /// 1-based last line.
    pub end: usize,
    /// Raw comment text.
    pub text: String,
}

/// The parsed workspace: every file's AST-derived facts.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Repo-relative paths, index = `file` in the other tables.
    pub paths: Vec<String>,
    /// Every function, in deterministic (path, line) order.
    pub fns: Vec<FnSym>,
    /// Lock-shaped declarations.
    pub locks: Vec<LockDef>,
    /// Files that fell outside the AST grammar.
    pub parse_errors: Vec<(String, ParseError)>,
    /// Per-file comments (indexed like `paths`).
    pub comments: Vec<Vec<CommentSpan>>,
}

impl Workspace {
    /// Repo-relative path of a function's file.
    pub fn path_of(&self, f: &FnSym) -> &str {
        &self.paths[f.file]
    }

    /// `file-stem::name` display form used in dumps and messages.
    pub fn display(&self, id: usize) -> String {
        let f = &self.fns[id];
        let stem = file_stem(&self.paths[f.file]);
        match &f.owner {
            Some(o) => format!("{stem}::{o}::{}", f.name),
            None => format!("{stem}::{}", f.name),
        }
    }
}

/// `crates/core/src/fault.rs` → `fault`.
pub fn file_stem(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or(path)
}

/// Macro names that panic by design.
const PANIC_MACROS: [&str; 9] = [
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "unreachable",
    "todo",
];

/// Atomic accessor method names that carry an `Ordering` argument.
const ATOMIC_METHODS: [&str; 11] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
];

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Builds the full workspace index from `(path, text)` pairs.
pub fn build_workspace(files: &[(String, String)]) -> Workspace {
    let mut ws = Workspace::default();
    for (path, text) in files {
        let file_idx = ws.paths.len();
        ws.paths.push(path.clone());
        let tokens = lex(text);
        ws.comments.push(collect_comments(&tokens));
        match parse_file(&tokens) {
            Ok(ast) => index_file(&mut ws, file_idx, path, &ast),
            Err(e) => ws.parse_errors.push((path.clone(), e)),
        }
    }
    ws
}

fn collect_comments(tokens: &[Token]) -> Vec<CommentSpan> {
    tokens
        .iter()
        .filter(|t| {
            matches!(
                t.kind,
                TokenKind::LineComment | TokenKind::BlockComment | TokenKind::DocComment
            )
        })
        .map(|t| CommentSpan {
            start: t.line,
            end: t.line + t.text.matches('\n').count(),
            text: t.text.clone(),
        })
        .collect()
}

fn is_test_like_file(path: &str) -> bool {
    let parts: Vec<&str> = path.split('/').collect();
    parts.contains(&"tests") || parts.contains(&"benches") || parts.contains(&"examples")
}

fn index_file(ws: &mut Workspace, file: usize, path: &str, ast: &File) {
    let file_test = is_test_like_file(path);
    index_items(ws, file, &ast.items, None, file_test);
}

fn index_items(ws: &mut Workspace, file: usize, items: &[Item], owner: Option<&str>, test: bool) {
    for item in items {
        let test = test || item.is_test_only();
        match &item.kind {
            ItemKind::Fn(f) => {
                if let Some(body) = &f.body {
                    index_fn(ws, file, &f.name, owner, f.line, test, body);
                }
            }
            ItemKind::Impl {
                type_name, items, ..
            } => index_items(ws, file, items, Some(type_name), test),
            ItemKind::Trait { items, .. } => index_items(ws, file, items, owner, test),
            ItemKind::Mod {
                items: Some(items), ..
            } => index_items(ws, file, items, None, test),
            ItemKind::Struct { name: _, fields } | ItemKind::Union { name: _, fields } => {
                for fd in fields {
                    if is_lock_type(&fd.ty) {
                        ws.locks.push(LockDef {
                            name: fd.name.clone(),
                            file,
                            line: fd.line,
                        });
                    }
                }
            }
            ItemKind::Static { name, ty, .. } => {
                if is_lock_type(ty) {
                    ws.locks.push(LockDef {
                        name: name.clone(),
                        file,
                        line: item.line,
                    });
                }
            }
            ItemKind::MacroItem {
                items: Some(items), ..
            } => index_items(ws, file, items, owner, test),
            _ => {}
        }
    }
}

fn is_lock_type(ty: &str) -> bool {
    ty.split_whitespace().any(|t| t == "Mutex" || t == "RwLock")
}

fn index_fn(
    ws: &mut Workspace,
    file: usize,
    name: &str,
    owner: Option<&str>,
    line: usize,
    is_test: bool,
    body: &Block,
) {
    let mut ex = Extractor {
        events: Vec::new(),
        spawned: Vec::new(),
        in_catch: 0,
        depth: 0,
        nested: Vec::new(),
    };
    ex.block(body);
    let spawned = std::mem::take(&mut ex.spawned);
    let nested = std::mem::take(&mut ex.nested);
    ws.fns.push(FnSym {
        file,
        name: name.to_string(),
        owner: owner.map(str::to_string),
        line,
        is_test,
        is_spawn_body: false,
        events: ex.events,
    });
    for (sline, events) in spawned {
        ws.fns.push(FnSym {
            file,
            name: format!("{name}::<spawn@{sline}>"),
            owner: owner.map(str::to_string),
            line: sline,
            is_test,
            is_spawn_body: true,
            events,
        });
    }
    // nested `fn` items found in the body get their own symbols
    for item in nested {
        index_items(ws, file, &[item], owner, is_test);
    }
}

struct Extractor {
    events: Vec<Event>,
    spawned: Vec<(usize, Vec<Event>)>,
    in_catch: usize,
    depth: usize,
    nested: Vec<Item>,
}

impl Extractor {
    fn push(&mut self, kind: EventKind, line: usize) {
        self.events.push(Event {
            kind,
            line,
            in_catch: self.in_catch > 0,
            depth: self.depth,
        });
    }

    /// Emits the scope-closing marker for the current depth.
    fn scope_end(&mut self) {
        self.push(EventKind::ScopeEnd, 0);
    }

    fn block(&mut self, b: &Block) {
        self.depth += 1;
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let {
                    init, else_block, ..
                } => {
                    if let Some(e) = init {
                        if binds_guard(e) {
                            // `let g = m.lock()…` — the guard itself is
                            // bound and lives to the end of the block
                            self.expr(e);
                        } else {
                            // temporaries in the initialiser (e.g. the
                            // guard in `let j = lock(&q).pop_front()`)
                            // die at the end of the statement
                            self.depth += 1;
                            self.expr(e);
                            self.scope_end();
                            self.depth -= 1;
                        }
                    }
                    if let Some(b) = else_block {
                        self.block(b);
                    }
                }
                Stmt::Item(item) => self.nested.push(item.clone()),
                Stmt::Expr(e) => {
                    // expression statements: temporaries — including the
                    // guard behind a `for`-loop iterator or a `match`
                    // scrutinee — die when the statement ends
                    self.depth += 1;
                    self.expr(e);
                    self.scope_end();
                    self.depth -= 1;
                }
            }
        }
        self.scope_end();
        self.depth -= 1;
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Call { callee, args, line } => {
                let path = match callee.as_ref() {
                    Expr::Path { segs, .. } => segs.clone(),
                    _ => Vec::new(),
                };
                let last = path.last().map(String::as_str).unwrap_or("");
                if !path.is_empty() {
                    self.push(
                        EventKind::Call {
                            path: path.clone(),
                            is_method: false,
                            recv_hint: Vec::new(),
                            arg_hints: args.iter().map(Expr::path_hint).collect(),
                        },
                        *line,
                    );
                } else {
                    self.expr(callee);
                }
                if last == "catch_unwind" {
                    self.in_catch += 1;
                    for a in args {
                        self.expr(a);
                    }
                    self.in_catch -= 1;
                } else if last == "spawn" && path.contains(&"thread".to_string()) {
                    // std::thread::spawn — the closure body runs detached
                    for a in args {
                        if let Expr::Closure { body, line: cline } = a {
                            let mut sub = Extractor {
                                events: Vec::new(),
                                spawned: Vec::new(),
                                in_catch: 0,
                                depth: 0,
                                nested: Vec::new(),
                            };
                            sub.expr(body);
                            self.spawned.push((*cline, sub.events));
                            self.spawned.append(&mut sub.spawned);
                            self.nested.append(&mut sub.nested);
                        } else {
                            self.expr(a);
                        }
                    }
                } else {
                    for a in args {
                        self.expr(a);
                    }
                }
            }
            Expr::MethodCall {
                recv,
                name,
                args,
                line,
            } => {
                match name.as_str() {
                    "unwrap" => self.push(
                        EventKind::Source {
                            kind: SourceKind::Unwrap,
                            what: "`.unwrap()`".to_string(),
                        },
                        *line,
                    ),
                    "expect" => self.push(
                        EventKind::Source {
                            kind: SourceKind::Expect,
                            what: "`.expect(…)`".to_string(),
                        },
                        *line,
                    ),
                    _ => {}
                }
                if ATOMIC_METHODS.contains(&name.as_str()) {
                    let atom = recv.path_hint().last().cloned().unwrap_or_default();
                    if !atom.is_empty() {
                        for a in args {
                            if let Some(ord) = ordering_of(a) {
                                self.push(
                                    EventKind::Atomic {
                                        atom: atom.clone(),
                                        ordering: ord,
                                    },
                                    *line,
                                );
                            }
                        }
                    }
                }
                self.push(
                    EventKind::Call {
                        path: vec![name.clone()],
                        is_method: true,
                        recv_hint: recv.path_hint(),
                        arg_hints: args.iter().map(Expr::path_hint).collect(),
                    },
                    *line,
                );
                self.expr(recv);
                if name == "catch_unwind" {
                    self.in_catch += 1;
                    for a in args {
                        self.expr(a);
                    }
                    self.in_catch -= 1;
                } else if name == "spawn" && recv.path_hint().is_empty() {
                    // `Builder::new().name(…).spawn(closure)` — a chained
                    // receiver means the builder idiom, whose closure runs
                    // on a fresh detached thread. (Scoped `s.spawn(…)`
                    // keeps a plain-path receiver and stays inline: scoped
                    // threads re-throw panics at scope exit and share the
                    // caller's deadlock context at the join.)
                    for a in args {
                        if let Expr::Closure { body, line: cline } = a {
                            let mut sub = Extractor {
                                events: Vec::new(),
                                spawned: Vec::new(),
                                in_catch: 0,
                                depth: 0,
                                nested: Vec::new(),
                            };
                            sub.expr(body);
                            self.spawned.push((*cline, sub.events));
                            self.spawned.append(&mut sub.spawned);
                            self.nested.append(&mut sub.nested);
                        } else {
                            self.expr(a);
                        }
                    }
                } else {
                    for a in args {
                        self.expr(a);
                    }
                }
            }
            Expr::Macro {
                path,
                args,
                raw,
                line,
            } => {
                let name = path.last().map(String::as_str).unwrap_or("");
                if PANIC_MACROS.contains(&name) {
                    self.push(
                        EventKind::Source {
                            kind: SourceKind::PanicMacro,
                            what: format!("`{name}!`"),
                        },
                        *line,
                    );
                }
                for a in args {
                    self.expr(a);
                }
                // macro interiors that did not parse as expressions: a
                // lexical scan still surfaces `.unwrap()`/`.expect(`/
                // panicking macros hidden in the token tree
                for (i, (text, rline)) in raw.iter().enumerate() {
                    let next = raw.get(i + 1).map(|(t, _)| t.as_str());
                    let prev = i.checked_sub(1).map(|j| raw[j].0.as_str());
                    if (text == "unwrap" || text == "expect")
                        && prev == Some(".")
                        && next == Some("(")
                    {
                        let kind = if text == "unwrap" {
                            SourceKind::Unwrap
                        } else {
                            SourceKind::Expect
                        };
                        self.push(
                            EventKind::Source {
                                kind,
                                what: format!("`.{text}(…)`"),
                            },
                            *rline,
                        );
                    }
                    if PANIC_MACROS.contains(&text.as_str()) && next == Some("!") {
                        self.push(
                            EventKind::Source {
                                kind: SourceKind::PanicMacro,
                                what: format!("`{text}!`"),
                            },
                            *rline,
                        );
                    }
                }
            }
            Expr::Index { recv, index, line } => {
                if !is_full_range(index) {
                    self.push(
                        EventKind::Source {
                            kind: SourceKind::Index,
                            what: "indexing (`[…]`)".to_string(),
                        },
                        *line,
                    );
                }
                self.expr(recv);
                self.expr(index);
            }
            Expr::Binary { op, lhs, rhs, line } => {
                if matches!(op.as_str(), "/" | "%" | "/=" | "%=") {
                    if let Some(r) = rhs {
                        if divisor_can_be_zero(lhs, r) {
                            self.push(
                                EventKind::Source {
                                    kind: SourceKind::Div,
                                    what: format!("`{op}` with a non-constant divisor"),
                                },
                                *line,
                            );
                        }
                    }
                }
                self.expr(lhs);
                if let Some(r) = rhs {
                    self.expr(r);
                }
            }
            Expr::Closure { body, .. } => self.expr(body),
            Expr::Block(b) | Expr::Unsafe(b) | Expr::Loop { body: b } => self.block(b),
            Expr::If { cond, then, else_ } => {
                self.expr(cond);
                self.block(then);
                if let Some(e) = else_ {
                    self.expr(e);
                }
            }
            Expr::While { cond, body } => {
                self.expr(cond);
                self.block(body);
            }
            Expr::For { iter, body } => {
                self.expr(iter);
                self.block(body);
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.expr(scrutinee);
                for a in arms {
                    self.expr(a);
                }
            }
            Expr::Unary { expr } | Expr::Cast { expr, .. } | Expr::Try { expr } => self.expr(expr),
            Expr::Field { recv, .. } => self.expr(recv),
            Expr::Return { value } | Expr::Break { value } => {
                if let Some(v) = value {
                    self.expr(v);
                }
            }
            Expr::StructLit { fields, .. } => {
                for f in fields {
                    self.expr(f);
                }
            }
            Expr::Tuple { items } | Expr::Array { items } => {
                for i in items {
                    self.expr(i);
                }
            }
            Expr::Lit { .. } | Expr::Path { .. } | Expr::Continue | Expr::Opaque => {}
        }
    }
}

/// True when a `let` initialiser binds a lock guard itself — so the
/// guard lives to the end of the enclosing block — rather than a value
/// pulled *out of* a temporary guard, which dies with the statement.
/// `let g = m.lock().unwrap();` binds the guard;
/// `let job = lock_ignore_poison(&q).jobs.pop_front();` does not.
/// `unwrap`/`expect`/`unwrap_or_else` and `?` are guard-transparent.
fn binds_guard(e: &Expr) -> bool {
    match e {
        Expr::MethodCall { recv, name, .. } => match name.as_str() {
            "lock" | "try_lock" | "read" | "try_read" | "write" | "try_write" => true,
            "unwrap" | "expect" | "unwrap_or_else" => binds_guard(recv),
            _ => false,
        },
        Expr::Call { callee, .. } => match callee.as_ref() {
            Expr::Path { segs, .. } => segs
                .last()
                .is_some_and(|s| s.to_ascii_lowercase().contains("lock")),
            _ => false,
        },
        Expr::Try { expr } => binds_guard(expr),
        _ => false,
    }
}

/// `x[..]` — a full-range slice borrow cannot be out of bounds.
fn is_full_range(index: &Expr) -> bool {
    matches!(
        index,
        Expr::Binary { op, lhs, rhs: None, .. }
            if op == ".." && matches!(lhs.as_ref(), Expr::Opaque)
    )
}

/// True when `lhs / rhs` can be a zero-divisor integer division: the
/// divisor is not a non-zero literal and neither side is visibly a
/// float (float literal or `as f32`/`as f64` cast).
fn divisor_can_be_zero(lhs: &Expr, rhs: &Expr) -> bool {
    fn is_float(e: &Expr) -> bool {
        match e {
            Expr::Lit { text, .. } => {
                (text.contains('.') && !text.starts_with("0x"))
                    || text.ends_with("f32")
                    || text.ends_with("f64")
            }
            Expr::Cast { ty, .. } => {
                let t = ty.trim();
                t == "f32" || t == "f64"
            }
            Expr::Binary { lhs, rhs, .. } => {
                is_float(lhs) || rhs.as_deref().map(is_float).unwrap_or(false)
            }
            Expr::Unary { expr } | Expr::Try { expr } => is_float(expr),
            Expr::Tuple { items } if items.len() == 1 => is_float(&items[0]),
            _ => false,
        }
    }
    if is_float(lhs) || is_float(rhs) {
        return false;
    }
    match rhs {
        // a non-zero literal divisor cannot trap
        Expr::Lit { text, .. } => {
            let digits: String = text
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            digits.trim_start_matches('0').is_empty() && !digits.is_empty()
        }
        // an uppercase constant path (`MAX_RETAINED_BYTES`, `Self::BYTES`)
        // is a compile-time non-zero in this workspace's idiom
        Expr::Path { segs, .. } => segs
            .last()
            .map(|s| !s.chars().any(|c| c.is_ascii_uppercase()))
            .unwrap_or(true),
        Expr::Tuple { items } if items.len() == 1 => divisor_can_be_zero(lhs, &items[0]),
        Expr::Cast { expr, .. } => divisor_can_be_zero(lhs, expr),
        _ => true,
    }
}

fn ordering_of(arg: &Expr) -> Option<String> {
    if let Expr::Path { segs, .. } = arg {
        let last = segs.last()?;
        if ORDERINGS.contains(&last.as_str())
            && (segs.len() == 1 || segs[segs.len() - 2] == "Ordering")
        {
            return Some(last.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws_of(src: &str) -> Workspace {
        build_workspace(&[("crates/demo/src/lib.rs".to_string(), src.to_string())])
    }

    #[test]
    fn events_carry_catch_unwind_context() {
        let ws = ws_of(
            "fn f() {\n\
                let r = catch_unwind(AssertUnwindSafe(|| job()));\n\
                after();\n\
            }",
        );
        let f = &ws.fns[0];
        let calls: Vec<(&str, bool)> = f
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Call { path, .. } => {
                    Some((path.last().map(String::as_str).unwrap_or(""), e.in_catch))
                }
                _ => None,
            })
            .collect();
        assert!(calls.contains(&("job", true)), "{calls:?}");
        assert!(calls.contains(&("after", false)), "{calls:?}");
        assert!(calls.contains(&("catch_unwind", false)), "{calls:?}");
    }

    #[test]
    fn spawned_closures_become_synthetic_fns() {
        let ws = ws_of(
            "fn start() {\n\
                std::thread::spawn(move || loop { tick().unwrap(); });\n\
                inline_work();\n\
            }",
        );
        let names: Vec<&str> = ws.fns.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"start"), "{names:?}");
        assert!(
            names.iter().any(|n| n.starts_with("start::<spawn@")),
            "{names:?}"
        );
        let spawn = ws.fns.iter().find(|f| f.is_spawn_body).unwrap();
        assert!(spawn.events.iter().any(|e| matches!(
            &e.kind,
            EventKind::Source {
                kind: SourceKind::Unwrap,
                ..
            }
        )));
        // the parent keeps its own inline call but not the closure's
        let parent = ws.fns.iter().find(|f| f.name == "start").unwrap();
        assert!(!parent.events.iter().any(|e| matches!(
            &e.kind,
            EventKind::Source {
                kind: SourceKind::Unwrap,
                ..
            }
        )));
    }

    #[test]
    fn panic_sources_cover_macros_indexing_and_division() {
        let ws = ws_of(
            "fn f(xs: &[u64], n: u64) -> u64 {\n\
                assert!(n > 0);\n\
                let a = xs[0];\n\
                let b = &xs[..];\n\
                let c = a / n;\n\
                let d = a / 2;\n\
                let e = (a as f64) / (n as f64);\n\
                a + c + d + e as u64 + b.len() as u64\n\
            }",
        );
        let kinds: Vec<SourceKind> = ws.fns[0]
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Source { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        assert_eq!(
            kinds,
            [SourceKind::PanicMacro, SourceKind::Index, SourceKind::Div],
            "full-range slicing, literal and float division are exempt"
        );
    }

    #[test]
    fn atomics_and_locks_are_indexed() {
        let ws = ws_of(
            "use std::sync::Mutex;\n\
            struct Q { jobs: Mutex<Vec<u32>>, alive: AtomicUsize }\n\
            static HOOK: Mutex<Option<u32>> = Mutex::new(None);\n\
            impl Q {\n\
                fn tick(&self) {\n\
                    self.alive.fetch_add(1, Ordering::Relaxed);\n\
                    self.alive.load(Ordering::Acquire);\n\
                }\n\
            }",
        );
        let lock_names: Vec<&str> = ws.locks.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(lock_names, ["jobs", "HOOK"]);
        let atomics: Vec<(String, String)> = ws.fns[0]
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Atomic { atom, ordering } => Some((atom.clone(), ordering.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            atomics,
            [
                ("alive".to_string(), "Relaxed".to_string()),
                ("alive".to_string(), "Acquire".to_string())
            ]
        );
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let ws = ws_of(
            "fn real() {}\n\
            #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}",
        );
        let real = ws.fns.iter().find(|f| f.name == "real").unwrap();
        let t = ws.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(!real.is_test);
        assert!(t.is_test);
    }
}
