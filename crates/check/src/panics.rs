//! Interprocedural panic-reachability (rule `panic-reachability`).
//!
//! A *panic source* is any syntactic construct that can unwind:
//! `.unwrap()`, `.expect(…)`, the panicking macros, slice/array indexing,
//! and integer division by a non-constant divisor (see
//! [`crate::symbols::SourceKind`]). The analysis propagates "can this
//! function unwind?" bottom-up over the workspace call graph, cutting
//! every edge and event that sits behind a `catch_unwind` boundary.
//!
//! Two kinds of site are protected:
//!
//! 1. **Infrastructure roots** — the serve accept/worker loops, the pool
//!    worker loop and job body, and every closure handed to
//!    `std::thread::spawn` in `pool.rs`/`server.rs`. An uncontained
//!    unwind there kills a worker thread or the whole process, which is
//!    exactly what the self-healing plane exists to prevent.
//! 2. **Service/driver binaries** (the old lexical `no-unwrap-in-serve`
//!    scope, which this analysis subsumes): any *direct*
//!    unwrap/expect/panic in `crates/serve`/`crates/cli` binary code.
//!
//! Findings anchor to a line in the protected function itself — the
//! escaping call or the panic source — so a suppression comment can sit
//! on the exact edge being accepted, with the full call chain and the
//! ultimate source spelled out in the message.

use crate::callgraph::CallGraph;
use crate::rules::{classify, Finding};
use crate::symbols::{EventKind, SourceKind, Workspace};
use std::collections::HashSet;

/// `(file path, fn name, human description)` for the protected
/// infrastructure roots.
const PROTECTED: [(&str, &str, &str); 5] = [
    (
        "crates/blas/src/pool.rs",
        "worker_loop",
        "the pool worker loop",
    ),
    ("crates/blas/src/pool.rs", "run_job", "the pool job body"),
    (
        "crates/serve/src/server.rs",
        "worker_loop",
        "the serve worker loop",
    ),
    (
        "crates/serve/src/server.rs",
        "accept_loop",
        "the serve accept loop",
    ),
    (
        "crates/serve/src/server.rs",
        "serve_connection",
        "the serve connection handler",
    ),
];

/// Why a function can unwind: a direct source or a call to an
/// unwind-capable callee. Used to reconstruct one witness chain.
#[derive(Debug, Clone)]
enum Cause {
    Source { line: usize, what: String },
    Call { callee: usize },
}

/// Runs the analysis and returns its findings.
pub fn check(ws: &Workspace, graph: &CallGraph) -> Vec<Finding> {
    let cause = fixpoint(ws, graph);
    let mut findings = Vec::new();

    // 1. infrastructure roots
    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let path = ws.path_of(f);
        let desc = PROTECTED
            .iter()
            .find(|(p, n, _)| *p == path && *n == f.name)
            .map(|(_, _, d)| *d)
            .or_else(|| {
                (f.is_spawn_body && (path.ends_with("/pool.rs") || path.ends_with("/server.rs")))
                    .then_some("a spawned supervisor thread")
            });
        let Some(desc) = desc else { continue };
        let mut seen: HashSet<usize> = HashSet::new();
        // direct sources in the root body
        for ev in &f.events {
            if ev.in_catch {
                continue;
            }
            if let EventKind::Source { what, .. } = &ev.kind {
                if seen.insert(ev.line) {
                    findings.push(Finding {
                        rule: "panic-reachability",
                        path: path.to_string(),
                        line: ev.line,
                        message: format!(
                            "{what} in {desc} (`{}`) outside any `catch_unwind` — \
                             an unwind here kills the thread; contain it or suppress with a reason",
                            f.name
                        ),
                    });
                }
            }
        }
        // calls from the root body that can transitively unwind
        for e in &graph.edges[id] {
            if e.in_catch || cause[e.callee].is_none() || !seen.insert(e.line) {
                continue;
            }
            let (chain, source) = witness(ws, &cause, e.callee);
            findings.push(Finding {
                rule: "panic-reachability",
                path: path.to_string(),
                line: e.line,
                message: format!(
                    "a panic can reach {desc} (`{}`) outside any `catch_unwind`: \
                     {} → {chain} — {source}; contain the call or suppress with a reason",
                    f.name, f.name
                ),
            });
        }
    }

    // 2. service/driver binaries: direct sources, the old
    //    no-unwrap-in-serve scope
    for f in &ws.fns {
        let path = ws.path_of(f);
        let class = classify(path);
        let serve_scope = !class.is_lib
            && !class.is_test_like
            && (path.starts_with("crates/serve/") || path.starts_with("crates/cli/"));
        if !serve_scope || f.is_test {
            continue;
        }
        for ev in &f.events {
            if ev.in_catch {
                continue;
            }
            let EventKind::Source { kind, what } = &ev.kind else {
                continue;
            };
            // indexing/division in driver code is accepted — this arm
            // keeps exactly the old lexical rule's unwrap/expect/panic
            // scope so existing suppressions stay meaningful
            if matches!(kind, SourceKind::Index | SourceKind::Div) {
                continue;
            }
            findings.push(Finding {
                rule: "panic-reachability",
                path: path.to_string(),
                line: ev.line,
                message: format!(
                    "{what} in service/driver code — report the error and exit cleanly instead"
                ),
            });
        }
    }

    findings
}

/// Bottom-up "can unwind" fixpoint with witness causes.
fn fixpoint(ws: &Workspace, graph: &CallGraph) -> Vec<Option<Cause>> {
    let mut cause: Vec<Option<Cause>> = ws
        .fns
        .iter()
        .map(|f| {
            if f.is_test {
                return None;
            }
            f.events.iter().find_map(|ev| match &ev.kind {
                EventKind::Source { what, .. } if !ev.in_catch => Some(Cause::Source {
                    line: ev.line,
                    what: what.clone(),
                }),
                _ => None,
            })
        })
        .collect();
    loop {
        let mut changed = false;
        for id in 0..ws.fns.len() {
            if cause[id].is_some() || ws.fns[id].is_test {
                continue;
            }
            for e in &graph.edges[id] {
                if !e.in_catch && cause[e.callee].is_some() {
                    cause[id] = Some(Cause::Call { callee: e.callee });
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            return cause;
        }
    }
}

/// Follows witness causes from `start` to a concrete source, returning
/// `(call chain text, "source at file:line" text)`.
fn witness(ws: &Workspace, cause: &[Option<Cause>], start: usize) -> (String, String) {
    let mut names = vec![ws.display(start)];
    let mut at = start;
    for _ in 0..8 {
        match &cause[at] {
            Some(Cause::Source { line, what }) => {
                return (
                    names.join(" → "),
                    format!("{what} at {}:{line}", ws.paths[ws.fns[at].file]),
                );
            }
            Some(Cause::Call { callee }) => {
                at = *callee;
                names.push(ws.display(at));
            }
            None => break,
        }
    }
    (
        names.join(" → "),
        "a panic source deeper in the chain".to_string(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::symbols::build_workspace;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<(String, String)> = files
            .iter()
            .map(|(p, t)| (p.to_string(), t.to_string()))
            .collect();
        let ws = build_workspace(&files);
        assert!(ws.parse_errors.is_empty(), "{:?}", ws.parse_errors);
        let graph = callgraph::build(&ws);
        check(&ws, &graph)
    }

    #[test]
    fn unguarded_transitive_panic_reaches_the_worker_loop() {
        let fs = run(&[(
            "crates/blas/src/pool.rs",
            "pub fn worker_loop() {\n\
                 step();\n\
             }\n\
             fn step() { deep(); }\n\
             fn deep() { helper_config().unwrap(); }\n\
             fn helper_config() -> Option<u32> { None }\n",
        )]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        let f = &fs[0];
        assert_eq!(f.rule, "panic-reachability");
        assert_eq!(f.path, "crates/blas/src/pool.rs");
        assert_eq!(f.line, 2, "anchored at the escaping call in the root");
        assert!(
            f.message.contains("worker_loop → pool::step → pool::deep"),
            "{}",
            f.message
        );
        assert!(
            f.message
                .contains("`.unwrap()` at crates/blas/src/pool.rs:5"),
            "{}",
            f.message
        );
    }

    #[test]
    fn catch_unwind_cuts_the_path() {
        let fs = run(&[(
            "crates/blas/src/pool.rs",
            "pub fn worker_loop() {\n\
                 let _ = catch_unwind(AssertUnwindSafe(|| step()));\n\
             }\n\
             fn step() { x.unwrap(); }\n",
        )]);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn unprotected_fns_are_not_roots() {
        let fs = run(&[(
            "crates/blas/src/gemm.rs",
            "pub fn gemm(c: &mut [f64], i: usize) { c[i] = 0.0; }\n",
        )]);
        assert!(
            fs.is_empty(),
            "indexing in a plain kernel fn is not a root: {fs:?}"
        );
    }

    #[test]
    fn spawned_threads_in_server_are_roots() {
        let fs = run(&[(
            "crates/serve/src/server.rs",
            "pub fn start() {\n\
                 std::thread::spawn(move || {\n\
                     tick().expect(\"tick\");\n\
                 });\n\
             }\n\
             fn tick() -> Result<(), ()> { Ok(()) }\n",
        )]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].line, 3);
        assert!(
            fs[0].message.contains("spawned supervisor thread"),
            "{}",
            fs[0].message
        );
    }

    #[test]
    fn serve_binary_direct_sources_are_flagged() {
        let fs = run(&[(
            "crates/cli/src/main.rs",
            "fn main() {\n\
                 let cfg = std::env::args().nth(1).unwrap();\n\
                 let n: usize = cfg.parse().unwrap_or(0);\n\
                 drop(n);\n\
             }\n",
        )]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].line, 2);
        assert!(
            fs[0].message.contains("service/driver"),
            "{}",
            fs[0].message
        );
    }

    #[test]
    fn integer_division_counts_as_a_source_for_roots() {
        let fs = run(&[(
            "crates/serve/src/server.rs",
            "pub fn worker_loop(n: usize, d: usize) {\n\
                 let _ = n / d;\n\
             }\n",
        )]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(
            fs[0].message.contains("non-constant divisor"),
            "{}",
            fs[0].message
        );
    }
}
