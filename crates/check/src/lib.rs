//! # blob-check — from-scratch static analysis for this workspace
//!
//! A dependency-free checker that walks the workspace's own Rust sources
//! — no `syn`, no network, no compiler plumbing. Two layers:
//!
//! - **Lexical rules** over the hand-rolled [`lexer`]'s token stream
//!   (see [`rules`] for the catalogue).
//! - **Interprocedural analyses** over a real AST: [`parser`] builds
//!   [`ast`] values, [`symbols`] indexes every function with its
//!   panic/lock/atomic-relevant events, [`callgraph`] resolves calls
//!   across the workspace, and [`panics`]/[`locks`]/[`atomics`] run the
//!   `panic-reachability`, `lock-order`, and `atomic-ordering` analyses
//!   on top. A file the parser cannot handle is a `parse-coverage`
//!   finding, never a silent skip.
//!
//! Run it as a normal workspace member:
//!
//! ```text
//! cargo run -p blob-check                 # human output, exit 1 on findings
//! cargo run -p blob-check -- --json       # machine output
//! cargo run -p blob-check -- --explain lock-order   # one rule's rationale
//! cargo run -p blob-check -- --call-graph # dump the resolved call graph
//! ```
//!
//! ## Rules
//!
//! | rule | scope | fires on |
//! |------|-------|----------|
//! | `no-unsafe` | everywhere | any `unsafe` token |
//! | `unsafe-needs-safety-comment` | everywhere, tests included | `unsafe` without a `SAFETY:` comment directly above |
//! | `no-unwrap-in-lib` | library code, tests excluded | `.unwrap()`, `.expect(…)`, `panic!` |
//! | `no-unwrap-in-serve` | *deprecated alias* | superseded by `panic-reachability`; old suppressions still honoured |
//! | `no-float-eq` | `blob-blas`/`blob-sim` libraries | `==`/`!=` against a float literal |
//! | `pub-item-docs` | `blob-blas`/`blob-sim`/`blob-core` | public item/field without a doc comment |
//! | `contract-guard` | the five kernel files | `pub fn` indexing a slice before contract validation |
//! | `no-adhoc-scope` | `blob-blas` outside `pool.rs` | `std::thread::scope(` outside the pool |
//! | `no-raw-error-body` | `crates/serve/src/` outside `envelope.rs`/`http.rs` | `Response::json`/`text` with a literal status ≥ 400 |
//! | `panic-reachability` | whole-workspace call graph | a panic source reachable from a serve/pool loop or spawn body without `catch_unwind` |
//! | `lock-order` | whole-workspace call graph | a cycle in the held-while-taking graph over `Mutex`/`RwLock` names |
//! | `atomic-ordering` | every atomic access | `Ordering::Relaxed` mixed with stronger orderings (or in pool/server) without a `// relaxed:` justification |
//! | `parse-coverage` | every `.rs` file | a file the AST grammar cannot parse |
//! | `suppression` | every suppression comment | a reason-less or unknown-rule `allow` |
//!
//! `--explain <rule>` prints the full rationale for any of these.
//!
//! Violations that are intentional carry an inline suppression **with a
//! mandatory reason**:
//!
//! ```text
//! // blob-check: allow(no-float-eq): beta is a configured sentinel, not a computed value
//! ```
//!
//! A suppression without a reason (or naming an unknown rule) is itself a
//! finding. Legacy debt can be parked in a baseline file
//! (`--write-baseline`/`--baseline`) so new violations still fail while
//! old ones are burned down deliberately — this repository's baseline is
//! empty by design.

pub mod ast;
pub mod atomics;
pub mod callgraph;
pub mod lexer;
pub mod locks;
pub mod panics;
pub mod parser;
pub mod rules;
pub mod symbols;

use blob_core::wire::Json;
use rules::{build_context, check_file, Finding, RULE_ALIASES};
use std::path::{Path, PathBuf};

/// Recursively collects every `.rs` file under `root`, skipping
/// `target/`, `.git/`, and hidden directories. Paths come back
/// repo-relative with `/` separators, sorted for deterministic output.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                let text = std::fs::read_to_string(&path)?;
                files.push((rel, text));
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Checks every source file under `root` — the per-file lexical rules
/// *and* the workspace-wide interprocedural analyses — and returns
/// `(findings, files)` with findings sorted by `(path, line, rule)`.
pub fn check_workspace(root: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let files = collect_sources(root)?;
    let ctx = build_context(&files);
    let mut findings = Vec::new();
    for (path, text) in &files {
        findings.extend(check_file(path, text, &ctx));
    }
    findings.extend(deep_findings(&files));
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok((findings, files.len()))
}

/// Runs the AST-level pipeline over pre-collected sources: parse every
/// file (failures surface as `parse-coverage` findings — the analyses
/// cannot see an unparsed file, so the gate is absolute), build the
/// symbol index and call graph, then run the `panic-reachability`,
/// `lock-order`, and `atomic-ordering` analyses. Deep findings honour
/// the same suppression comments as the lexical rules (same line or the
/// line above), including the deprecated-alias mapping in
/// [`rules::RULE_ALIASES`].
pub fn deep_findings(files: &[(String, String)]) -> Vec<Finding> {
    let ws = symbols::build_workspace(files);
    let mut out = Vec::new();
    for (path, err) in &ws.parse_errors {
        out.push(Finding {
            rule: "parse-coverage",
            path: path.clone(),
            line: err.line,
            message: format!(
                "file falls outside the blob-check AST grammar ({err}) — \
                 extend the parser, do not baseline"
            ),
        });
    }
    let graph = callgraph::build(&ws);
    let mut deep = Vec::new();
    deep.extend(panics::check(&ws, &graph));
    deep.extend(locks::check(&ws, &graph));
    deep.extend(atomics::check(&ws));
    let path_index: std::collections::HashMap<&str, usize> = ws
        .paths
        .iter()
        .enumerate()
        .map(|(i, p)| (p.as_str(), i))
        .collect();
    for f in deep {
        let suppressed = path_index.get(f.path.as_str()).is_some_and(|&i| {
            let sups =
                rules::suppressions_from(ws.comments[i].iter().map(|c| (c.start, c.text.as_str())));
            sups.iter().any(|s| {
                s.known_rule
                    && s.has_reason
                    && (s.rule == f.rule
                        || RULE_ALIASES
                            .iter()
                            .any(|(old, new)| *old == s.rule && *new == f.rule))
                    && (s.line == f.line || s.line + 1 == f.line)
            })
        });
        if !suppressed {
            out.push(f);
        }
    }
    out
}

/// Builds and renders the workspace call graph (`--call-graph`).
pub fn call_graph_dump(root: &Path) -> std::io::Result<String> {
    let files = collect_sources(root)?;
    let ws = symbols::build_workspace(&files);
    let graph = callgraph::build(&ws);
    Ok(callgraph::dump(&ws, &graph))
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Renders findings as a JSON array through the workspace's shared wire
/// encoder ([`blob_core::wire`]), so escaping behaviour is identical to
/// every other JSON the project emits.
pub fn to_json(findings: &[Finding]) -> String {
    let items: Vec<Json> = findings
        .iter()
        .map(|f| {
            Json::obj()
                .field("rule", f.rule)
                .field("path", f.path.as_str())
                .field("line", f.line as u64)
                .field("message", f.message.as_str())
                .build()
        })
        .collect();
    Json::Arr(items).encode_pretty()
}

/// Parses a baseline produced by [`to_json`] back into `(rule, path,
/// message)` keys with the shared wire parser. Objects missing one of the
/// three fields are skipped; unparseable text yields no keys (so a
/// corrupt baseline fails loud — every finding resurfaces).
pub fn parse_baseline(text: &str) -> Vec<(String, String, String)> {
    let Ok(Json::Arr(items)) = Json::parse(text) else {
        return Vec::new();
    };
    items
        .iter()
        .filter_map(|obj| {
            let field = |name: &str| obj.get(name).and_then(Json::as_str).map(str::to_string);
            Some((field("rule")?, field("path")?, field("message")?))
        })
        .collect()
}

/// Drops findings present in the baseline. Matching ignores line numbers
/// so unrelated edits above a parked violation don't resurface it.
pub fn apply_baseline(
    findings: Vec<Finding>,
    baseline: &[(String, String, String)],
) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            !baseline
                .iter()
                .any(|(r, p, m)| r == f.rule && p == &f.path && m == &f.message)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: usize, message: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message: message.to_string(),
        }
    }

    #[test]
    fn json_round_trips_through_baseline_parser() {
        let fs = vec![
            finding("no-unsafe", "a/b.rs", 3, "msg with \"quotes\" and \\slash"),
            finding("no-float-eq", "c.rs", 9, "line1\nline2"),
        ];
        let json = to_json(&fs);
        let keys = parse_baseline(&json);
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0].0, "no-unsafe");
        assert_eq!(keys[0].2, "msg with \"quotes\" and \\slash");
        assert_eq!(keys[1].2, "line1\nline2");
        // baseline suppresses exactly those findings, line-insensitively
        let mut shifted = fs.clone();
        shifted[0].line = 99;
        assert!(apply_baseline(shifted, &keys).is_empty());
        let fresh = vec![finding("no-unsafe", "a/b.rs", 1, "different message")];
        assert_eq!(apply_baseline(fresh, &keys).len(), 1);
    }

    #[test]
    fn empty_findings_serialise_to_empty_array() {
        assert_eq!(to_json(&[]), "[]");
        assert!(parse_baseline("[]").is_empty());
    }

    #[test]
    fn json_output_escapes_like_the_shared_wire_layer() {
        // control characters, quotes, backslashes, and non-ASCII all
        // survive the encode → parse round trip byte-for-byte
        let nasty = "tab\there \"quoted\" back\\slash ctrl\u{1} nul\u{0} grüße 日本語";
        let json = to_json(&[finding("no-unsafe", "päth/ünïcode.rs", 7, nasty)]);
        // the raw control bytes must not appear in the serialised form
        assert!(!json.contains('\u{1}'));
        assert!(!json.contains('\u{0}'));
        assert!(json.contains("\\u0001"));
        assert!(json.contains("\\u0000"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("back\\\\slash"));
        // non-ASCII passes through unescaped (UTF-8 output)
        assert!(json.contains("grüße 日本語"));
        let keys = parse_baseline(&json);
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].1, "päth/ünïcode.rs");
        assert_eq!(keys[0].2, nasty);
    }

    #[test]
    fn corrupt_baseline_yields_no_keys() {
        assert!(parse_baseline("{not json").is_empty());
        assert!(parse_baseline("{\"rule\": \"x\"}").is_empty()); // not an array
                                                                 // array entries missing a field are skipped, valid ones kept
        let mixed = r#"[{"rule":"r","path":"p","message":"m"},{"rule":"only"}]"#;
        assert_eq!(parse_baseline(mixed).len(), 1);
    }
}
