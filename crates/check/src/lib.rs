//! # blob-check — from-scratch static analysis for this workspace
//!
//! A dependency-free checker that walks the workspace's own Rust sources
//! and enforces the project's safety and API-hygiene rules at the token
//! level (see [`rules`] for the rule catalogue and [`lexer`] for the
//! hand-rolled lexer underneath — no `syn`, no network, no compiler
//! plumbing).
//!
//! Run it as a normal workspace member:
//!
//! ```text
//! cargo run -p blob-check            # human output, exit 1 on findings
//! cargo run -p blob-check -- --json  # machine output
//! ```
//!
//! ## Rules
//!
//! | rule | scope | fires on |
//! |------|-------|----------|
//! | `no-unsafe` | everywhere | any `unsafe` token |
//! | `no-unwrap-in-lib` | library code, tests excluded | `.unwrap()`, `.expect(…)`, `panic!` |
//! | `no-float-eq` | `blob-blas`/`blob-sim` libraries | `==`/`!=` against a float literal |
//! | `pub-item-docs` | `blob-blas`/`blob-sim`/`blob-core` | public item/field without a doc comment |
//! | `contract-guard` | the five kernel files | `pub fn` indexing a slice before contract validation |
//!
//! Violations that are intentional carry an inline suppression **with a
//! mandatory reason**:
//!
//! ```text
//! // blob-check: allow(no-float-eq): beta is a configured sentinel, not a computed value
//! ```
//!
//! A suppression without a reason (or naming an unknown rule) is itself a
//! finding. Legacy debt can be parked in a baseline file
//! (`--write-baseline`/`--baseline`) so new violations still fail while
//! old ones are burned down deliberately — this repository's baseline is
//! empty by design.

pub mod lexer;
pub mod rules;

use rules::{build_context, check_file, Finding};
use std::path::{Path, PathBuf};

/// Recursively collects every `.rs` file under `root`, skipping
/// `target/`, `.git/`, and hidden directories. Paths come back
/// repo-relative with `/` separators, sorted for deterministic output.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                let text = std::fs::read_to_string(&path)?;
                files.push((rel, text));
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Checks every source file under `root` and returns `(findings, files)`.
pub fn check_workspace(root: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let files = collect_sources(root)?;
    let ctx = build_context(&files);
    let mut findings = Vec::new();
    for (path, text) in &files {
        findings.extend(check_file(path, text, &ctx));
    }
    Ok((findings, files.len()))
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Escapes a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON array (stable field order, no dependencies).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Parses a baseline produced by [`to_json`] back into `(rule, path,
/// message)` keys. The parser only needs to read its own output, so it is
/// a minimal scan for the three known string fields per object.
pub fn parse_baseline(text: &str) -> Vec<(String, String, String)> {
    let mut keys = Vec::new();
    for obj in text.split('{').skip(1) {
        let field = |name: &str| -> Option<String> {
            let tag = format!("\"{name}\": \"");
            let at = obj.find(&tag)? + tag.len();
            let rest = &obj[at..];
            let mut out = String::new();
            let mut chars = rest.chars();
            while let Some(c) = chars.next() {
                match c {
                    '"' => return Some(out),
                    '\\' => match chars.next() {
                        Some('n') => out.push('\n'),
                        Some('t') => out.push('\t'),
                        Some('r') => out.push('\r'),
                        Some(other) => out.push(other),
                        None => return Some(out),
                    },
                    c => out.push(c),
                }
            }
            Some(out)
        };
        if let (Some(rule), Some(path), Some(message)) =
            (field("rule"), field("path"), field("message"))
        {
            keys.push((rule, path, message));
        }
    }
    keys
}

/// Drops findings present in the baseline. Matching ignores line numbers
/// so unrelated edits above a parked violation don't resurface it.
pub fn apply_baseline(
    findings: Vec<Finding>,
    baseline: &[(String, String, String)],
) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            !baseline
                .iter()
                .any(|(r, p, m)| r == f.rule && p == &f.path && m == &f.message)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: usize, message: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message: message.to_string(),
        }
    }

    #[test]
    fn json_round_trips_through_baseline_parser() {
        let fs = vec![
            finding("no-unsafe", "a/b.rs", 3, "msg with \"quotes\" and \\slash"),
            finding("no-float-eq", "c.rs", 9, "line1\nline2"),
        ];
        let json = to_json(&fs);
        let keys = parse_baseline(&json);
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0].0, "no-unsafe");
        assert_eq!(keys[0].2, "msg with \"quotes\" and \\slash");
        assert_eq!(keys[1].2, "line1\nline2");
        // baseline suppresses exactly those findings, line-insensitively
        let mut shifted = fs.clone();
        shifted[0].line = 99;
        assert!(apply_baseline(shifted, &keys).is_empty());
        let fresh = vec![finding("no-unsafe", "a/b.rs", 1, "different message")];
        assert_eq!(apply_baseline(fresh, &keys).len(), 1);
    }

    #[test]
    fn empty_findings_serialise_to_empty_array() {
        assert_eq!(to_json(&[]), "[]");
        assert!(parse_baseline("[]").is_empty());
    }
}
