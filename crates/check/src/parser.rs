//! Recursive-descent parser from the [`crate::lexer`] token stream to the
//! [`crate::ast`] nodes.
//!
//! The grammar covers the Rust subset this workspace actually uses and is
//! exact about the things the interprocedural analyses depend on: item
//! structure, function bodies, blocks, closures, `match`, calls, method
//! calls, indexing, paths, and macro invocations. Three things are
//! *opaque by design*, mirroring Rust's own grammar where possible:
//!
//! - **generics** are skipped as balanced `<…>` token runs (turbofish
//!   included),
//! - **patterns and types** are consumed as balanced token runs,
//! - **macro interiors** are token trees (exactly as in `rustc`); the
//!   parser additionally recovers a comma-separated expression list from
//!   them when one parses, so `format!("{}", x.unwrap())` still exposes
//!   the `unwrap` to the analyses.
//!
//! There is no panic-and-recover or lexical fallback: a file either
//! parses into an AST or returns a [`ParseError`] with the offending
//! line, and the parse-coverage gate requires every workspace file to
//! take the first path.

use crate::ast::{Block, Expr, FieldDecl, File, FnDecl, Item, ItemKind, Stmt};
use crate::lexer::{lex, Token, TokenKind};

/// A parse failure: the file is outside the supported grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line the parser gave up on.
    pub line: usize,
    /// What the parser expected or could not model.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

/// Parses source text straight to a [`File`].
pub fn parse_source(src: &str) -> Result<File, ParseError> {
    parse_file(&lex(src))
}

/// Parses a lexed token stream to a [`File`]. Comment tokens are ignored
/// (suppressions and `SAFETY:` comments are read from the raw stream by
/// the lexical layer).
pub fn parse_file(tokens: &[Token]) -> Result<File, ParseError> {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::LineComment | TokenKind::BlockComment | TokenKind::DocComment
            )
        })
        .collect();
    let mut p = P { t: code, pos: 0 };
    let items = p.parse_items(None)?;
    Ok(File { items })
}

/// Keywords that begin an item in statement position.
const ITEM_STARTERS: [&str; 12] = [
    "use",
    "fn",
    "struct",
    "enum",
    "trait",
    "impl",
    "mod",
    "static",
    "type",
    "macro_rules",
    "extern",
    "union",
];

/// Infix operator token texts (precedence is irrelevant to the
/// analyses, so binaries chain left-associatively).
const BINOPS: [&str; 28] = [
    "+", "-", "*", "/", "%", "==", "!=", "<", ">", "<=", ">=", "&&", "||", "&", "|", "^", "<<",
    ">>", "=", "+=", "-=", "*=", "/=", "<<=", ">>=", "|=", "..", "..=",
];

struct P<'a> {
    t: Vec<&'a Token>,
    pos: usize,
}

impl<'a> P<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.t.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<&'a Token> {
        self.t.get(self.pos + off).copied()
    }

    fn text(&self) -> &str {
        self.peek().map(|t| t.text.as_str()).unwrap_or("")
    }

    fn text_at(&self, off: usize) -> &str {
        self.peek_at(off).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn line(&self) -> usize {
        self.peek()
            .or_else(|| self.t.last().copied())
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.peek();
        self.pos += 1;
        t
    }

    fn eat(&mut self, text: &str) -> bool {
        if self.text() == text {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn want(&mut self, text: &str, ctx: &str) -> Result<(), ParseError> {
        if self.eat(text) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{text}` {ctx}, found `{}`", self.text())))
        }
    }

    fn err(&self, msg: String) -> ParseError {
        ParseError {
            line: self.line(),
            msg,
        }
    }

    fn at_ident(&self) -> bool {
        self.peek()
            .map(|t| t.kind == TokenKind::Ident)
            .unwrap_or(false)
    }

    /// Consumes one identifier token and returns its text.
    fn ident(&mut self, ctx: &str) -> Result<String, ParseError> {
        if self.at_ident() {
            Ok(self.bump().map(|t| t.text.clone()).unwrap_or_default())
        } else {
            Err(self.err(format!(
                "expected identifier {ctx}, found `{}`",
                self.text()
            )))
        }
    }

    /// Skips a balanced `<…>` generics run, the `<` not yet consumed.
    /// `>>`/`<<` count twice; `(){}[]` nest opaquely inside.
    fn skip_angles(&mut self) -> Result<(), ParseError> {
        self.want("<", "to open generics")?;
        let mut depth: i32 = 1;
        while depth > 0 {
            match self.text() {
                "" => return Err(self.err("unclosed `<…>` generics".to_string())),
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                "(" | "{" | "[" => {
                    self.skip_delimited()?;
                    continue;
                }
                _ => {}
            }
            self.pos += 1;
        }
        Ok(())
    }

    /// Skips one balanced `(…)`/`[…]`/`{…}` group, the opener under the
    /// cursor.
    fn skip_delimited(&mut self) -> Result<(), ParseError> {
        let close = match self.text() {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            other => return Err(self.err(format!("expected a delimiter, found `{other}`"))),
        };
        let open = self.bump().map(|t| t.text.clone()).unwrap_or_default();
        while self.peek().is_some() {
            match self.text() {
                "(" | "[" | "{" => self.skip_delimited()?,
                t if t == close => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => {
                    self.pos += 1;
                }
            }
        }
        Err(self.err(format!("unclosed `{open}`")))
    }

    /// Consumes a balanced token run until one of `stops` appears at
    /// delimiter depth 0, returning the run's text. Angles are tracked
    /// when `angles` is set (type/generic positions), left alone
    /// otherwise (pattern positions, where `<` is rare but `a < b` guard
    /// comparisons are real).
    fn soup_until(&mut self, stops: &[&str], angles: bool) -> Result<String, ParseError> {
        let mut out = String::new();
        let mut angle: i32 = 0;
        loop {
            let txt = self.text();
            if txt.is_empty() {
                return Err(self.err(format!("ran out of input looking for one of {stops:?}")));
            }
            if angle == 0 && stops.contains(&txt) {
                return Ok(out);
            }
            match txt {
                "(" | "[" | "{" => {
                    let before = self.pos;
                    self.skip_delimited()?;
                    for t in &self.t[before..self.pos] {
                        if !out.is_empty() {
                            out.push(' ');
                        }
                        out.push_str(&t.text);
                    }
                    continue;
                }
                "<" if angles => angle += 1,
                "<<" if angles => angle += 2,
                ">" if angles && angle > 0 => angle -= 1,
                ">>" if angles && angle > 0 => angle -= 2,
                _ => {}
            }
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(txt);
            self.pos += 1;
        }
    }

    // ----- attributes ---------------------------------------------------

    /// Skips `#[…]` outer and `#![…]` inner attributes, returning the
    /// outer attribute texts (delimiters stripped, tokens joined).
    fn attrs(&mut self) -> Result<Vec<String>, ParseError> {
        let mut out = Vec::new();
        while self.text() == "#" {
            let inner = self.text_at(1) == "!";
            self.pos += if inner { 2 } else { 1 };
            if self.text() != "[" {
                return Err(self.err("expected `[` after `#`".to_string()));
            }
            let before = self.pos;
            self.skip_delimited()?;
            if !inner {
                let text: String = self.t[before + 1..self.pos - 1]
                    .iter()
                    .map(|t| t.text.as_str())
                    .collect();
                out.push(text);
            }
        }
        Ok(out)
    }

    // ----- items --------------------------------------------------------

    /// Parses items until `terminator` (or end of input).
    fn parse_items(&mut self, terminator: Option<&str>) -> Result<Vec<Item>, ParseError> {
        let mut items = Vec::new();
        loop {
            while self.eat(";") {}
            match (self.peek(), terminator) {
                (None, None) => return Ok(items),
                (None, Some(t)) => return Err(self.err(format!("expected `{t}`, found end"))),
                (Some(tok), Some(t)) if tok.text == t => return Ok(items),
                _ => {}
            }
            items.push(self.parse_item()?);
        }
    }

    fn parse_item(&mut self) -> Result<Item, ParseError> {
        let attrs = self.attrs()?;
        let line = self.line();
        let mut vis_pub = false;
        if self.eat("pub") {
            if self.text() == "(" {
                self.skip_delimited()?;
            } else {
                vis_pub = true;
            }
        }
        let mut is_unsafe = false;
        loop {
            match self.text() {
                "unsafe" => {
                    is_unsafe = true;
                    self.pos += 1;
                }
                "const" if self.text_at(1) == "fn" => {
                    self.pos += 1;
                }
                "async" => {
                    self.pos += 1;
                }
                "extern"
                    if self
                        .peek_at(1)
                        .map(|t| t.kind == TokenKind::Str)
                        .unwrap_or(false) =>
                {
                    self.pos += 2;
                }
                _ => break,
            }
        }
        let kind = match self.text() {
            "use" => {
                self.pos += 1;
                self.soup_until(&[";"], false)?;
                self.want(";", "after `use`")?;
                ItemKind::Use
            }
            "extern" if self.text_at(1) == "crate" => {
                self.soup_until(&[";"], false)?;
                self.want(";", "after `extern crate`")?;
                ItemKind::ExternCrate
            }
            "mod" => {
                self.pos += 1;
                let name = self.ident("after `mod`")?;
                if self.eat(";") {
                    ItemKind::Mod { name, items: None }
                } else {
                    self.want("{", "to open `mod`")?;
                    let items = self.parse_items(Some("}"))?;
                    self.want("}", "to close `mod`")?;
                    ItemKind::Mod {
                        name,
                        items: Some(items),
                    }
                }
            }
            "fn" => ItemKind::Fn(self.parse_fn(is_unsafe)?),
            "struct" | "union" => {
                let is_union = self.text() == "union";
                self.pos += 1;
                let name = self.ident("after `struct`")?;
                if self.text() == "<" {
                    self.skip_angles()?;
                }
                let mut fields = Vec::new();
                if self.text() == "(" {
                    // tuple struct
                    self.skip_delimited()?;
                    self.soup_until(&[";"], true)?;
                    self.want(";", "after tuple struct")?;
                } else if self.eat(";") {
                    // unit struct
                } else {
                    self.soup_until(&["{"], true)?; // where clause
                    self.want("{", "to open fields")?;
                    while !self.eat("}") {
                        self.attrs()?;
                        let fline = self.line();
                        if self.eat("pub") && self.text() == "(" {
                            self.skip_delimited()?;
                        }
                        let fname = self.ident("as field name")?;
                        self.want(":", "after field name")?;
                        let ty = self.soup_until(&[",", "}"], true)?;
                        fields.push(FieldDecl {
                            name: fname,
                            ty,
                            line: fline,
                        });
                        self.eat(",");
                    }
                }
                if is_union {
                    ItemKind::Union { name, fields }
                } else {
                    ItemKind::Struct { name, fields }
                }
            }
            "enum" => {
                self.pos += 1;
                let name = self.ident("after `enum`")?;
                if self.text() == "<" {
                    self.skip_angles()?;
                }
                self.soup_until(&["{"], true)?;
                self.skip_delimited()?;
                ItemKind::Enum { name }
            }
            "trait" => {
                self.pos += 1;
                let name = self.ident("after `trait`")?;
                if self.text() == "<" {
                    self.skip_angles()?;
                }
                self.soup_until(&["{"], true)?; // supertraits + where
                self.want("{", "to open trait")?;
                let items = self.parse_items(Some("}"))?;
                self.want("}", "to close trait")?;
                ItemKind::Trait { name, items }
            }
            "impl" => {
                self.pos += 1;
                if self.text() == "<" {
                    self.skip_angles()?;
                }
                let head = self.soup_until(&["{"], true)?;
                self.want("{", "to open impl")?;
                let items = self.parse_items(Some("}"))?;
                self.want("}", "to close impl")?;
                let (trait_name, type_part) = match head.split_once(" for ") {
                    Some((t, ty)) => (last_type_name(t), ty.to_string()),
                    None => (None, head),
                };
                let type_name = last_type_name(&type_part).unwrap_or_default();
                ItemKind::Impl {
                    type_name,
                    trait_name,
                    items,
                }
            }
            "const" | "static" => {
                let is_const = self.text() == "const";
                self.pos += 1;
                self.eat("mut");
                let name = if self.text() == "_" {
                    self.pos += 1;
                    "_".to_string()
                } else {
                    self.ident("after `const`/`static`")?
                };
                self.want(":", "after const/static name")?;
                let ty = self.soup_until(&["=", ";"], true)?;
                let init = if self.eat("=") {
                    Some(self.parse_expr(false)?)
                } else {
                    None
                };
                self.want(";", "after const/static")?;
                if is_const {
                    ItemKind::Const { name, ty, init }
                } else {
                    ItemKind::Static { name, ty, init }
                }
            }
            "type" => {
                self.pos += 1;
                let name = self.ident("after `type`")?;
                self.soup_until(&[";"], true)?;
                self.want(";", "after type alias")?;
                ItemKind::TypeAlias { name }
            }
            "macro_rules" => {
                self.pos += 1;
                self.want("!", "after `macro_rules`")?;
                let name = self.ident("as macro name")?;
                self.skip_delimited()?;
                ItemKind::MacroDef { name }
            }
            _ if self.at_ident()
                && (self.text_at(1) == "!"
                    || (self.text_at(1) == "::" && self.is_macro_path())) =>
            {
                // item-position macro invocation, e.g. `thread_local! { … }`
                let (path, _) = self.parse_path_segs()?;
                self.want("!", "after macro path")?;
                let name = path.last().cloned().unwrap_or_default();
                let brace = self.text() == "{";
                let before = self.pos;
                self.skip_delimited()?;
                let inner: Vec<&Token> = self.t[before + 1..self.pos - 1].to_vec();
                if !brace {
                    self.eat(";");
                }
                let mut sub = P {
                    t: inner.clone(),
                    pos: 0,
                };
                let items = sub.parse_items(None).ok();
                let exprs = if items.is_none() {
                    let mut sub = P { t: inner, pos: 0 };
                    sub.parse_expr_list_all().unwrap_or_default()
                } else {
                    Vec::new()
                };
                ItemKind::MacroItem { name, items, exprs }
            }
            other => {
                return Err(self.err(format!("expected an item, found `{other}`")));
            }
        };
        Ok(Item {
            line,
            vis_pub,
            attrs,
            kind,
        })
    }

    /// True when the cursor sits on `seg :: … :: name !` (macro path).
    fn is_macro_path(&self) -> bool {
        let mut off = 0;
        loop {
            if self
                .peek_at(off)
                .map(|t| t.kind != TokenKind::Ident)
                .unwrap_or(true)
            {
                return false;
            }
            match self.text_at(off + 1) {
                "!" => return true,
                "::" => off += 2,
                _ => return false,
            }
        }
    }

    fn parse_fn(&mut self, is_unsafe: bool) -> Result<FnDecl, ParseError> {
        let line = self.line();
        self.want("fn", "to start a function")?;
        let name = self.ident("as function name")?;
        if self.text() == "<" {
            self.skip_angles()?;
        }
        if self.text() != "(" {
            return Err(self.err(format!("expected `(` after `fn {name}`")));
        }
        self.skip_delimited()?; // parameters (patterns + types, opaque)
        if self.eat("->") {
            self.soup_until(&["{", ";", "where"], true)?;
        }
        if self.text() == "where" {
            self.soup_until(&["{", ";"], true)?;
        }
        let body = if self.eat(";") {
            None
        } else {
            Some(self.parse_block()?)
        };
        Ok(FnDecl {
            name,
            line,
            is_unsafe,
            body,
        })
    }

    // ----- statements ---------------------------------------------------

    fn parse_block(&mut self) -> Result<Block, ParseError> {
        let line = self.line();
        self.want("{", "to open a block")?;
        let mut stmts = Vec::new();
        loop {
            while self.eat(";") {}
            if self.eat("}") {
                return Ok(Block { line, stmts });
            }
            if self.peek().is_none() {
                return Err(self.err("unclosed block".to_string()));
            }
            stmts.push(self.parse_stmt()?);
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.text() == "let" {
            return self.parse_let();
        }
        // item in statement position?
        let is_item = match self.text() {
            "pub" => true,
            "unsafe" => matches!(self.text_at(1), "fn" | "impl" | "trait"),
            "const" => {
                self.peek_at(1)
                    .map(|t| t.kind == TokenKind::Ident)
                    .unwrap_or(false)
                    && self.text_at(1) != "fn"
                    || self.text_at(1) == "fn"
            }
            "union" => {
                self.peek_at(1)
                    .map(|t| t.kind == TokenKind::Ident)
                    .unwrap_or(false)
                    && self.text_at(2) == "{"
            }
            "type" => self
                .peek_at(1)
                .map(|t| t.kind == TokenKind::Ident)
                .unwrap_or(false),
            "#" => true,
            t => ITEM_STARTERS.contains(&t) && t != "union" && t != "type",
        };
        if is_item {
            return Ok(Stmt::Item(self.parse_item()?));
        }
        let e = self.parse_expr(false)?;
        self.eat(";");
        Ok(Stmt::Expr(e))
    }

    fn parse_let(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        self.want("let", "to start a binding")?;
        // pattern (+ optional type ascription), opaque
        self.soup_until(&["=", ";", "else"], true)?;
        let init = if self.eat("=") {
            Some(self.parse_expr(false)?)
        } else {
            None
        };
        let else_block = if self.eat("else") {
            Some(self.parse_block()?)
        } else {
            None
        };
        self.eat(";");
        Ok(Stmt::Let {
            init,
            else_block,
            line,
        })
    }

    // ----- expressions --------------------------------------------------

    fn parse_expr(&mut self, no_struct: bool) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_prefix(no_struct)?;
        loop {
            let txt = self.text();
            if txt == "as" {
                self.pos += 1;
                let ty = self.soup_until(
                    &[
                        ";", ",", ")", "]", "}", "{", "=>", "?", ".", "==", "!=", "&&", "||", "+",
                        "-", "/", "%", ">", ">=", "<=", "<<", ">>", "..", "..=", "=",
                    ],
                    true,
                )?;
                lhs = Expr::Cast {
                    expr: Box::new(lhs),
                    ty,
                };
                lhs = self.parse_postfix(lhs)?;
                continue;
            }
            let (op, extra) = match txt {
                "%" | "^" | "&" if self.text_at(1) == "=" => (format!("{txt}="), 1),
                t if BINOPS.contains(&t) => (t.to_string(), 0),
                _ => break,
            };
            let line = self.line();
            self.pos += 1 + extra;
            // open-ended range: `1..` before `)]};,=` or `{` of a loop body
            if (op == ".." || op == "..=") && self.range_has_no_rhs(no_struct) {
                lhs = Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: None,
                    line,
                };
                continue;
            }
            let rhs = self.parse_prefix(no_struct)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Some(Box::new(rhs)),
                line,
            };
        }
        Ok(lhs)
    }

    fn range_has_no_rhs(&self, no_struct: bool) -> bool {
        matches!(self.text(), ")" | "]" | "}" | "," | ";" | "=>" | "")
            || (no_struct && self.text() == "{")
    }

    fn parse_prefix(&mut self, no_struct: bool) -> Result<Expr, ParseError> {
        let tok = match self.peek() {
            Some(t) => t,
            None => return Err(self.err("expected an expression, found end".to_string())),
        };
        match (tok.kind, tok.text.as_str()) {
            (TokenKind::Num | TokenKind::Str | TokenKind::Char, _) => {
                let e = Expr::Lit {
                    text: tok.text.clone(),
                    line: tok.line,
                };
                self.pos += 1;
                self.parse_postfix(e)
            }
            (TokenKind::Lifetime, _) if self.text_at(1) == ":" => {
                // loop label
                self.pos += 2;
                self.parse_prefix(no_struct)
            }
            (_, "&") | (_, "&&") => {
                self.pos += 1;
                self.eat("mut");
                let inner = self.parse_prefix(no_struct)?;
                Ok(Expr::Unary {
                    expr: Box::new(inner),
                })
            }
            (_, "*") | (_, "-") | (_, "!") => {
                self.pos += 1;
                let inner = self.parse_prefix(no_struct)?;
                Ok(Expr::Unary {
                    expr: Box::new(inner),
                })
            }
            (_, "..") | (_, "..=") => {
                let line = tok.line;
                let op = tok.text.clone();
                self.pos += 1;
                let rhs = if self.range_has_no_rhs(no_struct) {
                    None
                } else {
                    Some(Box::new(self.parse_prefix(no_struct)?))
                };
                Ok(Expr::Binary {
                    op,
                    lhs: Box::new(Expr::Opaque),
                    rhs,
                    line,
                })
            }
            (_, "#") => {
                // expression-position attribute (e.g. on an array element)
                self.attrs()?;
                self.parse_prefix(no_struct)
            }
            (_, "move") => {
                self.pos += 1;
                self.parse_closure()
            }
            (_, "|") | (_, "||") => self.parse_closure(),
            (_, "if") => self.parse_if(),
            (_, "while") => {
                self.pos += 1;
                let cond = if self.eat("let") {
                    self.soup_until(&["="], false)?;
                    self.want("=", "in `while let`")?;
                    self.parse_expr(true)?
                } else {
                    self.parse_expr(true)?
                };
                let body = self.parse_block()?;
                Ok(Expr::While {
                    cond: Box::new(cond),
                    body,
                })
            }
            (_, "for") => {
                self.pos += 1;
                self.soup_until(&["in"], false)?;
                self.want("in", "in `for`")?;
                let iter = self.parse_expr(true)?;
                let body = self.parse_block()?;
                Ok(Expr::For {
                    iter: Box::new(iter),
                    body,
                })
            }
            (_, "loop") => {
                self.pos += 1;
                let body = self.parse_block()?;
                Ok(Expr::Loop { body })
            }
            (_, "match") => {
                let line = tok.line;
                self.pos += 1;
                let scrutinee = self.parse_expr(true)?;
                self.want("{", "to open `match`")?;
                let mut arms = Vec::new();
                loop {
                    while self.eat(",") {}
                    if self.eat("}") {
                        break;
                    }
                    self.attrs()?;
                    self.soup_until(&["=>"], false)?;
                    self.want("=>", "after match pattern")?;
                    arms.push(self.parse_expr(false)?);
                }
                Ok(Expr::Match {
                    scrutinee: Box::new(scrutinee),
                    arms,
                    line,
                })
            }
            (_, "unsafe") => {
                self.pos += 1;
                let b = self.parse_block()?;
                let e = Expr::Unsafe(b);
                self.parse_postfix(e)
            }
            (_, "const") if self.text_at(1) == "{" => {
                // inline-const block: `const { Cell::new(false) }`
                self.pos += 1;
                let b = self.parse_block()?;
                Ok(Expr::Block(b))
            }
            (_, "return") => {
                self.pos += 1;
                let value = if self.expr_follows() {
                    Some(Box::new(self.parse_expr(no_struct)?))
                } else {
                    None
                };
                Ok(Expr::Return { value })
            }
            (_, "break") => {
                self.pos += 1;
                if self
                    .peek()
                    .map(|t| t.kind == TokenKind::Lifetime)
                    .unwrap_or(false)
                {
                    self.pos += 1;
                }
                let value = if self.expr_follows() {
                    Some(Box::new(self.parse_expr(no_struct)?))
                } else {
                    None
                };
                Ok(Expr::Break { value })
            }
            (_, "continue") => {
                self.pos += 1;
                if self
                    .peek()
                    .map(|t| t.kind == TokenKind::Lifetime)
                    .unwrap_or(false)
                {
                    self.pos += 1;
                }
                Ok(Expr::Continue)
            }
            (_, "{") => {
                let b = self.parse_block()?;
                self.parse_postfix(Expr::Block(b))
            }
            (_, "(") => {
                self.pos += 1;
                let mut items = Vec::new();
                while !self.eat(")") {
                    items.push(self.parse_expr(false)?);
                    if !self.eat(",") {
                        self.want(")", "to close a parenthesised expression")?;
                        break;
                    }
                }
                self.parse_postfix(Expr::Tuple { items })
            }
            (_, "[") => {
                self.pos += 1;
                let mut items = Vec::new();
                while !self.eat("]") {
                    items.push(self.parse_expr(false)?);
                    if !self.eat(",") && !self.eat(";") {
                        self.want("]", "to close an array literal")?;
                        break;
                    }
                }
                self.parse_postfix(Expr::Array { items })
            }
            (_, "<") => {
                // qualified path: `<T as Trait>::method(…)`
                let line = tok.line;
                self.skip_angles()?;
                let mut segs = vec!["<qualified>".to_string()];
                while self.eat("::") {
                    if self.text() == "<" {
                        self.skip_angles()?;
                    } else {
                        segs.push(self.ident("in qualified path")?);
                    }
                }
                self.parse_postfix(Expr::Path { segs, line })
            }
            (TokenKind::Ident, "_") => {
                self.pos += 1;
                self.parse_postfix(Expr::Opaque)
            }
            (TokenKind::Ident, _) => self.parse_path_expr(no_struct),
            (_, other) => Err(self.err(format!("expected an expression, found `{other}`"))),
        }
    }

    /// True when the next token can begin an expression (for optional
    /// `return`/`break` values).
    fn expr_follows(&self) -> bool {
        match self.peek() {
            None => false,
            Some(t) => !matches!(t.text.as_str(), ";" | "}" | ")" | "]" | "," | "=>"),
        }
    }

    fn parse_closure(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        if !self.eat("||") {
            self.want("|", "to open closure parameters")?;
            // parameters: patterns + types, opaque, until the closing `|`
            loop {
                match self.text() {
                    "" => return Err(self.err("unclosed closure parameters".to_string())),
                    "|" => {
                        self.pos += 1;
                        break;
                    }
                    "(" | "[" | "{" => self.skip_delimited()?,
                    "<" => self.skip_angles()?,
                    _ => self.pos += 1,
                }
            }
        }
        if self.eat("->") {
            self.soup_until(&["{"], true)?;
        }
        let body = self.parse_expr(false)?;
        Ok(Expr::Closure {
            body: Box::new(body),
            line,
        })
    }

    fn parse_if(&mut self) -> Result<Expr, ParseError> {
        self.want("if", "to start `if`")?;
        let cond = if self.eat("let") {
            self.soup_until(&["="], false)?;
            self.want("=", "in `if let`")?;
            self.parse_expr(true)?
        } else {
            self.parse_expr(true)?
        };
        let then = self.parse_block()?;
        let else_ = if self.eat("else") {
            if self.text() == "if" {
                Some(Box::new(self.parse_if()?))
            } else {
                Some(Box::new(Expr::Block(self.parse_block()?)))
            }
        } else {
            None
        };
        Ok(Expr::If {
            cond: Box::new(cond),
            then,
            else_,
        })
    }

    /// Parses `seg(::seg)*`, skipping turbofish generics; returns the
    /// segments and the line of the first.
    fn parse_path_segs(&mut self) -> Result<(Vec<String>, usize), ParseError> {
        let line = self.line();
        let mut segs = vec![self.ident("to start a path")?];
        while self.text() == "::" {
            if self.text_at(1) == "<" {
                self.pos += 1;
                self.skip_angles()?;
            } else if self
                .peek_at(1)
                .map(|t| t.kind == TokenKind::Ident)
                .unwrap_or(false)
            {
                self.pos += 1;
                segs.push(self.ident("in path")?);
            } else {
                break;
            }
        }
        Ok((segs, line))
    }

    fn parse_path_expr(&mut self, no_struct: bool) -> Result<Expr, ParseError> {
        let (segs, line) = self.parse_path_segs()?;
        // macro invocation
        if self.text() == "!" && matches!(self.text_at(1), "(" | "[" | "{") {
            self.pos += 1;
            let before = self.pos;
            self.skip_delimited()?;
            let inner: Vec<&Token> = self.t[before + 1..self.pos - 1].to_vec();
            let mut sub = P {
                t: inner.clone(),
                pos: 0,
            };
            let args = sub.parse_expr_list_all();
            let (args, raw) = match args {
                Some(list) => (list, Vec::new()),
                None => (
                    Vec::new(),
                    inner.iter().map(|t| (t.text.clone(), t.line)).collect(),
                ),
            };
            let e = Expr::Macro {
                path: segs,
                args,
                raw,
                line,
            };
            return self.parse_postfix(e);
        }
        // struct literal
        if self.text() == "{" && !no_struct {
            self.pos += 1;
            let mut fields = Vec::new();
            loop {
                while self.eat(",") {}
                if self.eat("}") {
                    break;
                }
                self.attrs()?;
                if self.text() == ".." {
                    self.pos += 1;
                    if !matches!(self.text(), "}" | ",") {
                        fields.push(self.parse_expr(false)?);
                    }
                    continue;
                }
                if self.at_ident() && matches!(self.text_at(1), ":") {
                    self.pos += 2;
                    fields.push(self.parse_expr(false)?);
                } else {
                    // shorthand field
                    fields.push(self.parse_expr(false)?);
                }
            }
            let e = Expr::StructLit {
                path: segs,
                fields,
                line,
            };
            return self.parse_postfix(e);
        }
        self.parse_postfix(Expr::Path { segs, line })
    }

    fn parse_postfix(&mut self, mut e: Expr) -> Result<Expr, ParseError> {
        loop {
            match self.text() {
                "." => {
                    let name_tok = self.peek_at(1);
                    match name_tok {
                        Some(t) if t.kind == TokenKind::Ident => {
                            let name = t.text.clone();
                            let mline = t.line;
                            self.pos += 2;
                            // turbofish method generics
                            if self.text() == "::" && self.text_at(1) == "<" {
                                self.pos += 1;
                                self.skip_angles()?;
                            }
                            if self.text() == "(" {
                                let args = self.parse_call_args()?;
                                e = Expr::MethodCall {
                                    recv: Box::new(e),
                                    name,
                                    args,
                                    line: mline,
                                };
                            } else {
                                e = Expr::Field {
                                    recv: Box::new(e),
                                    name,
                                };
                            }
                        }
                        Some(t) if t.kind == TokenKind::Num => {
                            // tuple index `.0` (possibly `.0.1` lexed as `.0.1`? the
                            // lexer folds `0.1` — split back into two accesses)
                            let name = t.text.clone();
                            self.pos += 2;
                            for part in name.split('.') {
                                e = Expr::Field {
                                    recv: Box::new(e),
                                    name: part.to_string(),
                                };
                            }
                        }
                        _ => return Err(self.err("expected a name after `.`".to_string())),
                    }
                }
                "(" => {
                    let line = self.line();
                    let args = self.parse_call_args()?;
                    e = Expr::Call {
                        callee: Box::new(e),
                        args,
                        line,
                    };
                }
                "[" => {
                    let line = self.line();
                    self.pos += 1;
                    let index = self.parse_expr(false)?;
                    self.want("]", "to close indexing")?;
                    e = Expr::Index {
                        recv: Box::new(e),
                        index: Box::new(index),
                        line,
                    };
                }
                "?" => {
                    self.pos += 1;
                    e = Expr::Try { expr: Box::new(e) };
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.want("(", "to open arguments")?;
        let mut args = Vec::new();
        loop {
            while self.eat(",") {}
            if self.eat(")") {
                return Ok(args);
            }
            args.push(self.parse_expr(false)?);
            if !self.eat(",") {
                self.want(")", "to close arguments")?;
                return Ok(args);
            }
        }
    }

    /// Parses the whole remaining input as a comma-separated expression
    /// list; `None` when any part fails or input remains (used for macro
    /// interiors, where failure falls back to the raw token scan).
    fn parse_expr_list_all(&mut self) -> Option<Vec<Expr>> {
        let mut out = Vec::new();
        loop {
            while self.eat(",") {}
            if self.peek().is_none() {
                return Some(out);
            }
            match self.parse_expr(false) {
                Ok(e) => out.push(e),
                Err(_) => return None,
            }
            if !self.eat(",") && self.peek().is_some() {
                return None;
            }
        }
    }
}

/// Extracts the `Self`-type name from an impl-head type string: the last
/// plain identifier before any generic arguments (`ApiError` from
/// `From < SchemaError > for ApiError`, `Server` from `Server`).
fn last_type_name(soup: &str) -> Option<String> {
    let mut depth = 0i32;
    let mut name = None;
    for tok in soup.split_whitespace() {
        match tok {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            t if depth == 0 && t.chars().all(|c| c.is_alphanumeric() || c == '_') => {
                if t.chars().next().map(|c| c.is_alphabetic() || c == '_') == Some(true) {
                    name = Some(t.to_string());
                }
            }
            _ => {}
        }
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{walk_block, ItemKind};

    fn parse_ok(src: &str) -> File {
        match parse_source(src) {
            Ok(f) => f,
            Err(e) => panic!("parse failed: {e}\nsource:\n{src}"),
        }
    }

    fn fn_names(file: &File) -> Vec<String> {
        let mut out = Vec::new();
        fn rec(items: &[Item], out: &mut Vec<String>) {
            for it in items {
                match &it.kind {
                    ItemKind::Fn(f) => out.push(f.name.clone()),
                    ItemKind::Impl { items, .. }
                    | ItemKind::Trait { items, .. }
                    | ItemKind::Mod {
                        items: Some(items), ..
                    } => rec(items, out),
                    _ => {}
                }
            }
        }
        rec(&file.items, &mut out);
        out
    }

    #[test]
    fn parses_items_and_nested_fns() {
        let f = parse_ok(
            "use std::sync::Mutex;\n\
             pub struct S { pub x: u32, y: Mutex<Vec<u8>> }\n\
             impl S {\n    pub fn get(&self) -> u32 { self.x }\n}\n\
             mod inner { pub fn helper() {} }\n\
             pub enum E { A, B(u32) }\n\
             pub trait T { fn req(&self); fn def(&self) -> u32 { 1 } }\n",
        );
        assert_eq!(fn_names(&f), ["get", "helper", "req", "def"]);
        let ItemKind::Struct { name, fields } = &f.items[1].kind else {
            panic!("expected struct");
        };
        assert_eq!(name, "S");
        assert_eq!(fields.len(), 2);
        assert!(fields[1].ty.contains("Mutex"));
    }

    #[test]
    fn impl_head_names_resolve() {
        let f = parse_ok(
            "impl From<SchemaError> for ApiError { fn from(e: SchemaError) -> Self { todo!() } }",
        );
        let ItemKind::Impl {
            type_name,
            trait_name,
            ..
        } = &f.items[0].kind
        else {
            panic!("expected impl");
        };
        assert_eq!(type_name, "ApiError");
        assert_eq!(trait_name.as_deref(), Some("From"));
    }

    #[test]
    fn expression_forms_round_trip() {
        let src = r#"
fn f(xs: &[u32]) -> u32 {
    let a = xs[0] + xs.len() as u32;
    let b: Vec<u32> = xs.iter().map(|x| x * 2).collect::<Vec<_>>();
    let c = if a > 1 { a } else { b[0] };
    let d = match c {
        0 => 1,
        n if n < 10 => n,
        _ => c / 2,
    };
    for i in 0..d {
        println!("{}", i);
    }
    'outer: loop {
        break 'outer;
    }
    S { x: 1, ..Default::default() };
    (a, b.len() as u32, d).0
}
"#;
        let f = parse_ok(src);
        assert_eq!(fn_names(&f), ["f"]);
        // the method calls and index expressions are visible to a walker
        let ItemKind::Fn(decl) = &f.items[0].kind else {
            panic!("expected fn");
        };
        let mut methods = Vec::new();
        let mut indexes = 0;
        walk_block(decl.body.as_ref().unwrap(), &mut |e| match e {
            Expr::MethodCall { name, .. } => methods.push(name.clone()),
            Expr::Index { .. } => indexes += 1,
            _ => {}
        });
        assert!(methods.contains(&"len".to_string()));
        assert!(methods.contains(&"collect".to_string()));
        assert!(indexes >= 2, "found {indexes} index exprs");
    }

    #[test]
    fn closures_and_macros_expose_interiors() {
        let src = r#"
fn g(v: Vec<u32>) {
    let h = move || v.first().unwrap();
    std::thread::spawn(|| {
        format!("{}", h());
    });
    assert_eq!(v.len(), compute(v[0]));
    thread_local! { static X: Cell<bool> = const { Cell::new(false) }; }
}
"#;
        let f = parse_ok(src);
        let ItemKind::Fn(decl) = &f.items[0].kind else {
            panic!("expected fn");
        };
        let mut unwraps = 0;
        let mut calls = Vec::new();
        walk_block(decl.body.as_ref().unwrap(), &mut |e| match e {
            Expr::MethodCall { name, .. } if name == "unwrap" => unwraps += 1,
            Expr::Call { callee, .. } => {
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    calls.push(segs.join("::"));
                }
            }
            _ => {}
        });
        assert_eq!(unwraps, 1);
        assert!(calls.iter().any(|c| c.ends_with("spawn")), "{calls:?}");
        assert!(calls.contains(&"compute".to_string()), "{calls:?}");
    }

    #[test]
    fn let_else_and_while_let_parse() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
            let Some(v) = x else { return 0; };\n\
            while let Some(n) = next() { use_it(n); }\n\
            if let Ok(y) = parse(v) { y } else { v }\n\
        }";
        parse_ok(src);
    }

    #[test]
    fn qualified_paths_and_generics_skip() {
        let src = "fn f() -> usize {\n\
            let x = <f64 as Scalar>::BYTES;\n\
            let y: HashMap<TypeId, Box<dyn Any>> = HashMap::new();\n\
            Vec::<Vec<u8>>::with_capacity(x) . len ( )\n\
        }";
        parse_ok(src);
    }

    #[test]
    fn unparseable_macro_interiors_keep_raw_tokens() {
        // `0; n` is not a comma-separated expression list, so the macro
        // interior stays a raw token tree (as in Rust's own grammar)
        let src = "fn f(n: usize) -> Vec<u8> { vec![0; n] }";
        let f = parse_ok(src);
        let ItemKind::Fn(decl) = &f.items[0].kind else {
            panic!("expected fn");
        };
        let mut raw_len = 0;
        walk_block(decl.body.as_ref().unwrap(), &mut |e| {
            if let Expr::Macro { raw, .. } = e {
                raw_len = raw.len();
            }
        });
        assert!(raw_len > 0, "matches! interior should stay raw");
    }

    #[test]
    fn reports_line_of_a_real_syntax_error() {
        let err = parse_source("fn f() {\n    let = ;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn item_macros_with_item_bodies_parse_as_items() {
        let src = "thread_local! {\n    static BUF: RefCell<Vec<u8>> = RefCell::new(Vec::new());\n}\nmacro_rules! m { ($t:ty) => { impl X for $t {} }; }\nm!(f32);\n";
        let f = parse_ok(src);
        let ItemKind::MacroItem { name, items, .. } = &f.items[0].kind else {
            panic!("expected macro item, got {:?}", f.items[0].kind);
        };
        assert_eq!(name, "thread_local");
        assert!(items.is_some());
        assert!(matches!(&f.items[1].kind, ItemKind::MacroDef { name } if name == "m"));
    }
}
