//! Atomic-ordering audit (rule `atomic-ordering`).
//!
//! Every atomic access that names a memory ordering is indexed by the
//! receiver's trailing identifier (the atomic's name). A
//! `Ordering::Relaxed` access must carry a written justification when
//! either:
//!
//! - the same atomic is *also* accessed with a stronger ordering
//!   somewhere in the workspace (mixed orderings are where unsynchronised
//!   reads silently race with release/acquire protocols), or
//! - the access sits in `pool.rs` or `server.rs` — the shutdown and
//!   worker-liveness paths where a stale relaxed read can strand a
//!   thread.
//!
//! A justification is a comment on the same line or the line above that
//! contains the word `relaxed` (case-insensitive) — the convention is
//! `// relaxed: <why the ordering is sufficient>`.

use crate::rules::Finding;
use crate::symbols::{EventKind, Workspace};
use std::collections::{BTreeMap, BTreeSet};

const STRONG: [&str; 4] = ["Acquire", "Release", "AcqRel", "SeqCst"];

/// Runs the audit and returns its findings.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    // atom name → set of orderings used anywhere (non-test)
    let mut orderings: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for f in &ws.fns {
        if f.is_test {
            continue;
        }
        for ev in &f.events {
            if let EventKind::Atomic { atom, ordering } = &ev.kind {
                orderings.entry(atom).or_default().insert(ordering);
            }
        }
    }

    let mut findings = Vec::new();
    let mut seen: BTreeSet<(usize, usize, &str)> = BTreeSet::new();
    for f in &ws.fns {
        if f.is_test {
            continue;
        }
        let path = ws.path_of(f);
        let hot_file = path.ends_with("/pool.rs") || path.ends_with("/server.rs");
        for ev in &f.events {
            let EventKind::Atomic { atom, ordering } = &ev.kind else {
                continue;
            };
            if ordering != "Relaxed" {
                continue;
            }
            let stronger: Vec<&&str> = orderings
                .get(atom.as_str())
                .map(|set| set.iter().filter(|o| STRONG.contains(*o)).collect())
                .unwrap_or_default();
            if stronger.is_empty() && !hot_file {
                continue;
            }
            if justified(ws, f.file, ev.line) {
                continue;
            }
            if !seen.insert((f.file, ev.line, atom.as_str())) {
                continue;
            }
            let why = if !stronger.is_empty() {
                format!(
                    "`{atom}` is also accessed with {} elsewhere",
                    stronger
                        .iter()
                        .map(|o| format!("`{o}`"))
                        .collect::<Vec<_>>()
                        .join("/")
                )
            } else {
                format!("`{atom}` is read on a worker/shutdown path")
            };
            findings.push(Finding {
                rule: "atomic-ordering",
                path: path.to_string(),
                line: ev.line,
                message: format!(
                    "`Ordering::Relaxed` on `{atom}` without a written justification — {why}; \
                     add `// relaxed: <why this cannot race>` or strengthen the ordering"
                ),
            });
        }
    }
    findings
}

/// A comment containing "relaxed" on the same line or in the contiguous
/// run of comment lines ending directly above the access — a wrapped
/// `// relaxed: …` justification counts as one block.
fn justified(ws: &Workspace, file: usize, line: usize) -> bool {
    let mut cur = line;
    loop {
        let touching: Vec<_> = ws.comments[file]
            .iter()
            .filter(|c| c.start <= cur && c.end + 1 >= cur)
            .collect();
        if touching
            .iter()
            .any(|c| c.text.to_ascii_lowercase().contains("relaxed"))
        {
            return true;
        }
        // keep climbing through the comment run
        match touching.iter().map(|c| c.start).min() {
            Some(lo) if lo > 1 => cur = lo - 1,
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::build_workspace;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let ws = build_workspace(&[(path.to_string(), src.to_string())]);
        assert!(ws.parse_errors.is_empty(), "{:?}", ws.parse_errors);
        check(&ws)
    }

    #[test]
    fn mixed_orderings_without_justification_are_flagged() {
        let fs = run(
            "crates/demo/src/lib.rs",
            "fn arm(a: &AtomicBool) { a.store(true, Ordering::Release); }\n\
             fn poll(a: &AtomicBool) -> bool { a.load(Ordering::Relaxed) }\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].line, 2);
        assert!(
            fs[0].message.contains("also accessed with `Release`"),
            "{}",
            fs[0].message
        );
    }

    #[test]
    fn a_relaxed_comment_justifies_the_access() {
        let fs = run(
            "crates/demo/src/lib.rs",
            "fn arm(a: &AtomicBool) { a.store(true, Ordering::Release); }\n\
             fn poll(a: &AtomicBool) -> bool {\n\
                 // relaxed: monotonic flag, a stale read only delays one tick\n\
                 a.load(Ordering::Relaxed)\n\
             }\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn a_wrapped_multi_line_justification_counts() {
        let fs = run(
            "crates/demo/src/lib.rs",
            "fn arm(a: &AtomicBool) { a.store(true, Ordering::Release); }\n\
             fn poll(a: &AtomicBool) -> bool {\n\
                 // an unrelated comment line above the justification\n\
                 // must not shadow it when the checker climbs the run\n\
                 // relaxed: monotonic flag — a stale read only delays one\n\
                 // tick and the payload travels under the registry lock\n\
                 a.load(Ordering::Relaxed)\n\
             }\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn uniformly_relaxed_counters_outside_hot_files_are_fine() {
        let fs = run(
            "crates/demo/src/lib.rs",
            "fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n\
             fn read(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn pool_and_server_relaxed_always_needs_justification() {
        let fs = run(
            "crates/blas/src/pool.rs",
            "fn alive(f: &AtomicBool) -> bool { f.load(Ordering::Relaxed) }\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(
            fs[0].message.contains("worker/shutdown path"),
            "{}",
            fs[0].message
        );
    }

    #[test]
    fn distinct_atoms_do_not_contaminate_each_other() {
        let fs = run(
            "crates/demo/src/lib.rs",
            "fn a(x: &AtomicBool) { x.store(true, Ordering::SeqCst); }\n\
             fn b(y: &AtomicU64) { y.fetch_add(1, Ordering::Relaxed); }\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }
}
