//! Interprocedural lock-order analysis (rule `lock-order`).
//!
//! Every `Mutex`/`RwLock`-typed struct field or static in the workspace
//! is a *lock name*. An acquisition is `recv.lock()` / `.read()` /
//! `.write()` whose receiver's trailing identifier is a lock name, or a
//! call to a helper whose name contains `lock` with a lock-named
//! argument (the workspace's `lock_ignore_poison(&self.jobs)` idiom).
//!
//! The analysis builds a directed *acquired-while-holding* graph over
//! lock names: within one function, a forward walk tracks live guards
//! using the extractor's scope markers — a `let`-bound guard lives to
//! the end of its block, a temporary guard (a `for`-loop iterator, a
//! `match` scrutinee, a lock in the middle of a method chain) dies with
//! its statement ([`crate::symbols::EventKind::ScopeEnd`]). Explicit
//! early `drop(g)` is *not* modelled, so guards dropped by hand still
//! read as held to block end — scope the guard instead. Across
//! functions, a call made while holding `a` adds `a → l` for every lock
//! `l` the callee can transitively acquire. A cycle in that graph is a
//! potential deadlock and is reported once per strongly-connected
//! component, with one example site per edge.
//!
//! Deliberate soundness trade-off: same-name self-edges are ignored.
//! Sharded locks (`self.shards[i].lock()`) share one field name across
//! many instances, and the held-until-end approximation cannot tell
//! sequential re-acquisition from nested re-acquisition — both would be
//! false positives far more often than real self-deadlocks.

use crate::callgraph::CallGraph;
use crate::rules::Finding;
use crate::symbols::{EventKind, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// One `held → taken` edge with an example site.
#[derive(Debug, Clone)]
struct LockEdge {
    held: String,
    taken: String,
    /// `file:line` of the acquisition (or call) made while holding.
    site: String,
    file: usize,
    line: usize,
}

/// Runs the analysis and returns its findings.
pub fn check(ws: &Workspace, graph: &CallGraph) -> Vec<Finding> {
    let lock_names: BTreeSet<&str> = ws.locks.iter().map(|l| l.name.as_str()).collect();
    if lock_names.is_empty() {
        return Vec::new();
    }

    // transitive lock sets: everything a call into `f` may acquire
    // (scope-insensitive on purpose — a callee can take its locks at
    // any point while the caller's guard is live)
    let mut trans: Vec<BTreeSet<String>> = ws
        .fns
        .iter()
        .map(|f| {
            if f.is_test {
                return BTreeSet::new();
            }
            f.events
                .iter()
                .flat_map(|ev| acquired_by(&ev.kind, &lock_names))
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for id in 0..ws.fns.len() {
            for e in &graph.edges[id] {
                let callee_locks: Vec<String> = trans[e.callee].iter().cloned().collect();
                for l in callee_locks {
                    if trans[id].insert(l) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // held-while-taking edges
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut push_edge = |held: &str, taken: &str, file: usize, line: usize, ws: &Workspace| {
        if held != taken {
            edges.push(LockEdge {
                held: held.to_string(),
                taken: taken.to_string(),
                site: format!("{}:{line}", ws.paths[file]),
                file,
                line,
            });
        }
    };
    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        // call-site lines → resolved callees, for the via-call edges
        let mut by_line: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for e in &graph.edges[id] {
            by_line.entry(e.line).or_default().push(e.callee);
        }
        // forward walk with the live-guard set: (lock name, bind depth)
        let mut held: Vec<(String, usize)> = Vec::new();
        for ev in &f.events {
            if matches!(ev.kind, EventKind::ScopeEnd) {
                held.retain(|(_, d)| *d < ev.depth);
                continue;
            }
            if !matches!(ev.kind, EventKind::Call { .. }) {
                continue;
            }
            // a call made while holding may take the callee's locks
            if !held.is_empty() {
                if let Some(callees) = by_line.get(&ev.line) {
                    for &c in callees {
                        for taken in &trans[c] {
                            for (h, _) in &held {
                                push_edge(h, taken, f.file, ev.line, ws);
                            }
                        }
                    }
                }
            }
            for name in acquired_by(&ev.kind, &lock_names) {
                for (h, _) in &held {
                    push_edge(h, &name, f.file, ev.line, ws);
                }
                held.push((name, ev.depth));
            }
        }
    }

    // adjacency + one representative site per (held, taken)
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut sites: BTreeMap<(&str, &str), &LockEdge> = BTreeMap::new();
    for e in &edges {
        adj.entry(&e.held).or_default().insert(&e.taken);
        let key = (e.held.as_str(), e.taken.as_str());
        let better = sites
            .get(&key)
            .map(|old| (e.file, e.line) < (old.file, old.line))
            .unwrap_or(true);
        if better {
            sites.insert(key, e);
        }
    }

    // strongly-connected components of ≥ 2 locks are deadlock cycles
    let mut findings = Vec::new();
    for scc in sccs(&adj) {
        if scc.len() < 2 {
            continue;
        }
        let mut detail: Vec<String> = Vec::new();
        let mut anchor: Option<&LockEdge> = None;
        for ((h, t), e) in &sites {
            if scc.contains(h) && scc.contains(t) {
                detail.push(format!("`{h}` held while taking `{t}` at {}", e.site));
                let better = anchor
                    .map(|a| (e.file, e.line) < (a.file, a.line))
                    .unwrap_or(true);
                if better {
                    anchor = Some(e);
                }
            }
        }
        // an SCC of ≥ 2 nodes always has internal edges, but stay total
        let Some(anchor) = anchor else { continue };
        let locks: Vec<String> = scc.iter().map(|l| format!("`{l}`")).collect();
        findings.push(Finding {
            rule: "lock-order",
            path: ws.paths[anchor.file].clone(),
            line: anchor.line,
            message: format!(
                "lock-order cycle between {}: {} — pick one global acquisition order",
                locks.join(", "),
                detail.join("; ")
            ),
        });
    }
    findings
}

/// Lock names acquired by one event, if any.
fn acquired_by(kind: &EventKind, lock_names: &BTreeSet<&str>) -> Vec<String> {
    let EventKind::Call {
        path,
        is_method,
        recv_hint,
        arg_hints,
    } = kind
    else {
        return Vec::new();
    };
    let name = path.last().map(String::as_str).unwrap_or("");
    if *is_method && matches!(name, "lock" | "read" | "write") {
        if let Some(last) = recv_hint.last() {
            if lock_names.contains(last.as_str()) {
                return vec![last.clone()];
            }
        }
        return Vec::new();
    }
    if !is_method && name.contains("lock") {
        return arg_hints
            .iter()
            .filter_map(|h| h.last())
            .filter(|l| lock_names.contains(l.as_str()))
            .cloned()
            .collect();
    }
    Vec::new()
}

/// Kosaraju's algorithm over the lock-name graph (tiny: a handful of
/// nodes), returning each component as a sorted set.
fn sccs<'a>(adj: &BTreeMap<&'a str, BTreeSet<&'a str>>) -> Vec<BTreeSet<&'a str>> {
    let nodes: BTreeSet<&str> = adj
        .iter()
        .flat_map(|(k, vs)| std::iter::once(*k).chain(vs.iter().copied()))
        .collect();
    let mut order = Vec::new();
    let mut visited = BTreeSet::new();
    for &n in &nodes {
        post_order(n, adj, &mut visited, &mut order);
    }
    let mut radj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (&h, ts) in adj {
        for &t in ts {
            radj.entry(t).or_default().insert(h);
        }
    }
    let mut assigned = BTreeSet::new();
    let mut out = Vec::new();
    for &n in order.iter().rev() {
        if assigned.contains(n) {
            continue;
        }
        let mut comp = BTreeSet::new();
        let mut stack = vec![n];
        while let Some(v) = stack.pop() {
            if !assigned.insert(v) {
                continue;
            }
            comp.insert(v);
            if let Some(prevs) = radj.get(v) {
                stack.extend(prevs.iter().copied().filter(|p| !assigned.contains(*p)));
            }
        }
        out.push(comp);
    }
    out
}

fn post_order<'a>(
    n: &'a str,
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    visited: &mut BTreeSet<&'a str>,
    order: &mut Vec<&'a str>,
) {
    if !visited.insert(n) {
        return;
    }
    if let Some(nexts) = adj.get(n) {
        for &t in nexts {
            post_order(t, adj, visited, order);
        }
    }
    order.push(n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::symbols::build_workspace;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<(String, String)> = files
            .iter()
            .map(|(p, t)| (p.to_string(), t.to_string()))
            .collect();
        let ws = build_workspace(&files);
        assert!(ws.parse_errors.is_empty(), "{:?}", ws.parse_errors);
        let graph = callgraph::build(&ws);
        check(&ws, &graph)
    }

    #[test]
    fn two_fns_taking_two_locks_in_opposite_orders_is_a_cycle() {
        let fs = run(&[(
            "crates/demo/src/lib.rs",
            "use std::sync::Mutex;\n\
             pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 pub fn fwd(&self) {\n\
                     let ga = self.a.lock();\n\
                     let gb = self.b.lock();\n\
                     drop((ga, gb));\n\
                 }\n\
                 pub fn rev(&self) {\n\
                     let gb = self.b.lock();\n\
                     let ga = self.a.lock();\n\
                     drop((ga, gb));\n\
                 }\n\
             }\n",
        )]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        let f = &fs[0];
        assert_eq!(f.rule, "lock-order");
        assert_eq!(f.path, "crates/demo/src/lib.rs");
        assert_eq!(f.line, 6, "anchored at the first held-while-taking site");
        assert!(
            f.message
                .contains("`a` held while taking `b` at crates/demo/src/lib.rs:6"),
            "{}",
            f.message
        );
        assert!(
            f.message
                .contains("`b` held while taking `a` at crates/demo/src/lib.rs:11"),
            "{}",
            f.message
        );
    }

    #[test]
    fn consistent_global_order_is_clean() {
        let fs = run(&[(
            "crates/demo/src/lib.rs",
            "use std::sync::Mutex;\n\
             pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 pub fn one(&self) { let g = self.a.lock(); let h = self.b.lock(); drop((g, h)); }\n\
                 pub fn two(&self) { let g = self.a.lock(); let h = self.b.lock(); drop((g, h)); }\n\
             }\n",
        )]);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn cycles_through_a_callee_are_caught() {
        let fs = run(&[(
            "crates/demo/src/lib.rs",
            "use std::sync::Mutex;\n\
             static A: Mutex<u32> = Mutex::new(0);\n\
             static B: Mutex<u32> = Mutex::new(0);\n\
             pub fn fwd() {\n\
                 let g = A.lock();\n\
                 takes_b();\n\
                 drop(g);\n\
             }\n\
             fn takes_b() { let g = B.lock(); drop(g); }\n\
             pub fn rev() {\n\
                 let g = B.lock();\n\
                 takes_a();\n\
                 drop(g);\n\
             }\n\
             fn takes_a() { let g = A.lock(); drop(g); }\n",
        )]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(
            fs[0].message.contains("`A` held while taking `B`"),
            "{}",
            fs[0].message
        );
        assert!(
            fs[0].message.contains("`B` held while taking `A`"),
            "{}",
            fs[0].message
        );
    }

    #[test]
    fn helper_based_acquisition_is_seen() {
        // the workspace's lock_ignore_poison(&self.jobs) idiom
        let fs = run(&[(
            "crates/demo/src/lib.rs",
            "use std::sync::Mutex;\n\
             pub struct S { jobs: Mutex<u32>, state: Mutex<u32> }\n\
             impl S {\n\
                 pub fn fwd(&self) {\n\
                     let g = lock_ignore_poison(&self.jobs);\n\
                     let h = lock_ignore_poison(&self.state);\n\
                     drop((g, h));\n\
                 }\n\
                 pub fn rev(&self) {\n\
                     let h = lock_ignore_poison(&self.state);\n\
                     let g = lock_ignore_poison(&self.jobs);\n\
                     drop((g, h));\n\
                 }\n\
             }\n",
        )]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(
            fs[0]
                .message
                .contains("lock-order cycle between `jobs`, `state`"),
            "{}",
            fs[0].message
        );
    }

    #[test]
    fn scoped_and_temporary_guards_are_released() {
        // the ThreadPool::drop shape: a block-scoped guard, then a
        // for-iterator temporary, then a statement temporary — none of
        // the three overlaps, so opposite nesting elsewhere is fine
        let fs = run(&[(
            "crates/demo/src/lib.rs",
            "use std::sync::Mutex;\n\
             pub struct S { jobs: Mutex<u32>, workers: Mutex<Vec<u32>> }\n\
             impl S {\n\
                 pub fn shutdown(&self) {\n\
                     {\n\
                         let mut g = lock_ignore_poison(&self.jobs);\n\
                         *g = 1;\n\
                     }\n\
                     for w in lock_ignore_poison(&self.workers).drain(..) {\n\
                         let _ = w;\n\
                     }\n\
                     let job = lock_ignore_poison(&self.jobs).pop();\n\
                     drop(job);\n\
                 }\n\
             }\n",
        )]);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn block_scoped_guard_still_flags_a_real_nesting() {
        // sanity: the guard IS live across an acquisition inside its
        // own block, so a genuine inversion is still reported
        let fs = run(&[(
            "crates/demo/src/lib.rs",
            "use std::sync::Mutex;\n\
             pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 pub fn fwd(&self) {\n\
                     let g = self.a.lock();\n\
                     if true {\n\
                         let h = self.b.lock();\n\
                         drop(h);\n\
                     }\n\
                     drop(g);\n\
                 }\n\
                 pub fn rev(&self) {\n\
                     let h = self.b.lock();\n\
                     let g = self.a.lock();\n\
                     drop((g, h));\n\
                 }\n\
             }\n",
        )]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(
            fs[0].message.contains("`a` held while taking `b`"),
            "{}",
            fs[0].message
        );
    }

    #[test]
    fn same_name_reacquisition_is_not_reported() {
        // sharded locks share a field name across instances — exempt
        let fs = run(&[(
            "crates/demo/src/lib.rs",
            "use std::sync::Mutex;\n\
             pub struct S { shards: Vec<Mutex<u32>> }\n\
             impl S {\n\
                 pub fn sweep(&self) {\n\
                     let a = self.shards.lock();\n\
                     let b = self.shards.lock();\n\
                     drop((a, b));\n\
                 }\n\
             }\n",
        )]);
        assert!(fs.is_empty(), "{fs:?}");
    }
}
