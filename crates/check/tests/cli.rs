//! End-to-end tests for the `blob-check` binary: a seeded violation must
//! fail with machine-readable findings, the real workspace must be clean,
//! and a baseline must park known findings without hiding new ones.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// The workspace root (two levels above this crate's manifest).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/check sits two levels under the workspace root")
        .to_path_buf()
}

/// Runs the compiled `blob-check` binary with `args`.
fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_blob-check"))
        .args(args)
        .output()
        .expect("blob-check binary runs")
}

/// A scratch workspace on disk, removed on drop.
struct ScratchRepo {
    root: PathBuf,
}

impl ScratchRepo {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("blob-check-it-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create scratch root");
        std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
        Self { root }
    }

    fn write(&self, rel: &str, text: &str) {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().expect("file path has a parent"))
            .expect("create parent dirs");
        std::fs::write(path, text).expect("write scratch file");
    }

    fn root_arg(&self) -> String {
        self.root.display().to_string()
    }
}

impl Drop for ScratchRepo {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn real_workspace_is_clean() {
    let root = repo_root();
    let out = run(&["--root", &root.display().to_string()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "repo must be clean, got:\n{stdout}{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("files clean"), "got: {stdout}");
}

#[test]
fn seeded_violation_fails_with_json_findings() {
    let repo = ScratchRepo::new("seeded");
    // library code with an unwrap and an unsafe block: two rules must fire
    repo.write(
        "crates/demo/src/lib.rs",
        concat!(
            "pub fn first(xs: &[u32]) -> u32 {\n",
            "    let head = xs.first().unwrap();\n",
            "    unsafe { std::ptr::read(head) }\n",
            "}\n"
        ),
    );
    let out = run(&["--root", &repo.root_arg(), "--json"]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "findings must exit 1, stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let keys = blob_check::parse_baseline(&stdout);
    let rules: Vec<&str> = keys.iter().map(|(r, _, _)| r.as_str()).collect();
    assert!(rules.contains(&"no-unwrap-in-lib"), "json was: {stdout}");
    assert!(rules.contains(&"no-unsafe"), "json was: {stdout}");
    assert!(
        rules.contains(&"unsafe-needs-safety-comment"),
        "an unsafe block without a SAFETY comment trips the companion rule too: {stdout}"
    );
    assert!(
        keys.iter().all(|(_, p, _)| p == "crates/demo/src/lib.rs"),
        "paths are repo-relative: {stdout}"
    );
}

#[test]
fn unguarded_kernel_trips_contract_guard() {
    let repo = ScratchRepo::new("guard");
    // a public kernel entry point that indexes its slice without calling
    // the contract validator first
    repo.write(
        "crates/blas/src/gemm.rs",
        concat!(
            "/// Unguarded kernel.\n",
            "pub fn gemm_rogue(a: &[f64]) -> f64 {\n",
            "    a[0]\n",
            "}\n"
        ),
    );
    let out = run(&["--root", &repo.root_arg(), "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let keys = blob_check::parse_baseline(&stdout);
    assert!(
        keys.iter()
            .any(|(r, _, m)| *r == "contract-guard" && m.contains("gemm_rogue")),
        "json was: {stdout}"
    );
}

#[test]
fn suppression_without_reason_is_itself_a_finding() {
    let repo = ScratchRepo::new("bare-allow");
    repo.write(
        "crates/demo/src/lib.rs",
        concat!(
            "pub fn first(xs: &[u32]) -> u32 {\n",
            "    // blob-check: allow(no-unwrap-in-lib)\n",
            "    *xs.first().unwrap()\n",
            "}\n"
        ),
    );
    let out = run(&["--root", &repo.root_arg(), "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let keys = blob_check::parse_baseline(&stdout);
    assert!(
        keys.iter().any(|(r, _, _)| *r == "suppression"),
        "bare allow must be reported: {stdout}"
    );
}

#[test]
fn baseline_parks_old_findings_but_not_new_ones() {
    let repo = ScratchRepo::new("baseline");
    repo.write(
        "crates/demo/src/lib.rs",
        "pub fn boom() {\n    panic!(\"legacy\");\n}\n",
    );
    let baseline = repo.root.join("baseline.json");
    let baseline_arg = baseline.display().to_string();

    // park the existing finding
    let out = run(&[
        "--root",
        &repo.root_arg(),
        "--write-baseline",
        &baseline_arg,
    ]);
    assert!(out.status.success(), "--write-baseline exits 0");
    assert!(baseline.exists());

    // with the baseline applied the same tree is clean
    let out = run(&["--root", &repo.root_arg(), "--baseline", &baseline_arg]);
    assert!(
        out.status.success(),
        "parked finding must not fail the run: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // a new violation still fails even with the baseline
    repo.write(
        "crates/demo/src/extra.rs",
        "pub fn fresh(xs: &[u32]) -> u32 {\n    *xs.first().unwrap()\n}\n",
    );
    let out = run(&["--root", &repo.root_arg(), "--baseline", &baseline_arg]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "new violations must not hide behind the baseline"
    );
}

#[test]
fn list_rules_names_the_catalogue() {
    let out = run(&["--list-rules"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "no-unsafe",
        "unsafe-needs-safety-comment",
        "no-unwrap-in-lib",
        "no-float-eq",
        "pub-item-docs",
        "contract-guard",
        "panic-reachability",
        "lock-order",
        "atomic-ordering",
        "parse-coverage",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in: {stdout}");
    }
    assert!(
        stdout.contains("panic-reachability (supersedes `no-unwrap-in-serve`"),
        "the deprecation note must be visible: {stdout}"
    );
}

#[test]
fn explain_prints_a_rationale_and_redirects_aliases() {
    let out = run(&["--explain", "lock-order"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("lock-order"), "{stdout}");
    assert!(stdout.contains("cycle"), "{stdout}");

    let out = run(&["--explain", "no-unwrap-in-serve"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("deprecated") && stdout.contains("panic-reachability"),
        "aliases redirect to the successor: {stdout}"
    );

    let out = run(&["--explain", "no-such-rule"]);
    assert_eq!(out.status.code(), Some(2), "unknown rule is a usage error");
}

#[test]
fn call_graph_dump_shows_resolved_edges() {
    let repo = ScratchRepo::new("callgraph");
    repo.write(
        "crates/demo/src/lib.rs",
        "pub fn outer() { inner(); }\nfn inner() {}\n",
    );
    let out = run(&["--root", &repo.root_arg(), "--call-graph"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("lib::outer -> lib::inner (crates/demo/src/lib.rs:1)"),
        "edge with its call site: {stdout}"
    );
}

#[test]
fn max_ms_budget_gates_the_run() {
    let repo = ScratchRepo::new("budget");
    repo.write("crates/demo/src/lib.rs", "pub fn ok() {}\n");
    // a generous budget passes and reports the timing on stderr
    let out = run(&["--root", &repo.root_arg(), "--max-ms", "60000"]);
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("budget 60000 ms"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // an impossible budget fails with a usage/infrastructure error (the
    // real workspace cannot be analysed in under a millisecond; the
    // scratch repo above can, which is why it isn't used here)
    let root = repo_root();
    let out = run(&["--root", &root.display().to_string(), "--max-ms", "0"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = run(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}
