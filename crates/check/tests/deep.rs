//! End-to-end negative tests for the interprocedural analyses: each one
//! seeds a scratch workspace with a defect and asserts the binary reports
//! the right rule at the right file and line — and that suppressions
//! (including the deprecated `no-unwrap-in-serve` alias) silence them.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Runs the compiled `blob-check` binary with `args`.
fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_blob-check"))
        .args(args)
        .output()
        .expect("blob-check binary runs")
}

/// A scratch workspace on disk, removed on drop.
struct ScratchRepo {
    root: PathBuf,
}

impl ScratchRepo {
    fn new(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("blob-check-deep-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create scratch root");
        std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
        Self { root }
    }

    fn write(&self, rel: &str, text: &str) {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().expect("file path has a parent"))
            .expect("create parent dirs");
        std::fs::write(path, text).expect("write scratch file");
    }

    /// Findings as `(rule, path, line, message)` from a `--json` run.
    fn findings(&self) -> Vec<(String, String, u64, String)> {
        let out = run(&["--root", &self.root.display().to_string(), "--json"]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        let blob_core::wire::Json::Arr(items) =
            blob_core::wire::Json::parse(&stdout).expect("findings parse as JSON")
        else {
            panic!("findings are a JSON array: {stdout}");
        };
        items
            .iter()
            .map(|o| {
                let s = |k: &str| {
                    o.get(k)
                        .and_then(blob_core::wire::Json::as_str)
                        .expect("string field")
                        .to_string()
                };
                let line = o
                    .get("line")
                    .and_then(blob_core::wire::Json::as_u64)
                    .expect("line field");
                (s("rule"), s("path"), line, s("message"))
            })
            .collect()
    }
}

impl Drop for ScratchRepo {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn a_panic_reaching_the_serve_worker_loop_is_located_precisely() {
    let repo = ScratchRepo::new("panic");
    repo.write(
        "crates/serve/src/server.rs",
        concat!(
            "pub fn worker_loop() {\n",
            "    handle();\n",
            "}\n",
            "fn handle() {\n",
            "    let v: Vec<u32> = Vec::new();\n",
            "    let _ = v.first().unwrap();\n",
            "}\n"
        ),
    );
    let fs = repo.findings();
    let hit = fs
        .iter()
        .find(|(r, _, _, _)| r == "panic-reachability")
        .unwrap_or_else(|| panic!("panic-reachability must fire: {fs:?}"));
    assert_eq!(hit.1, "crates/serve/src/server.rs");
    assert_eq!(hit.2, 2, "anchored at the escaping call in the root");
    assert!(
        hit.3.contains("server::handle") && hit.3.contains("`.unwrap()`"),
        "witness chain names the callee and the source: {}",
        hit.3
    );
}

#[test]
fn catch_unwind_contains_the_panic_path() {
    let repo = ScratchRepo::new("caught");
    repo.write(
        "crates/serve/src/server.rs",
        concat!(
            "pub fn worker_loop() {\n",
            "    let _ = std::panic::catch_unwind(|| handle());\n",
            "}\n",
            "fn handle() {\n",
            "    let v: Vec<u32> = Vec::new();\n",
            "    let _ = v.first().unwrap();\n",
            "}\n"
        ),
    );
    let fs = repo.findings();
    assert!(
        !fs.iter().any(|(r, _, _, _)| r == "panic-reachability"),
        "a caught path is not a finding: {fs:?}"
    );
}

#[test]
fn the_deprecated_serve_alias_still_suppresses_the_analysis() {
    let repo = ScratchRepo::new("alias");
    repo.write(
        "crates/serve/src/server.rs",
        concat!(
            "pub fn worker_loop() {\n",
            "    // blob-check: allow(no-unwrap-in-serve): drill thread, death is supervised\n",
            "    handle();\n",
            "}\n",
            "fn handle() {\n",
            "    let v: Vec<u32> = Vec::new();\n",
            "    let _ = v.first().unwrap();\n",
            "}\n"
        ),
    );
    let fs = repo.findings();
    assert!(
        !fs.iter().any(|(r, _, _, _)| r == "panic-reachability"),
        "old suppressions stay valid through the alias: {fs:?}"
    );
}

#[test]
fn a_seeded_deadlock_cycle_is_reported_with_both_sites() {
    let repo = ScratchRepo::new("deadlock");
    repo.write(
        "crates/demo/src/lib.rs",
        concat!(
            "use std::sync::Mutex;\n",
            "pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n",
            "impl S {\n",
            "    pub fn fwd(&self) {\n",
            "        let ga = self.a.lock();\n",
            "        let gb = self.b.lock();\n",
            "        drop((ga, gb));\n",
            "    }\n",
            "    pub fn rev(&self) {\n",
            "        let gb = self.b.lock();\n",
            "        let ga = self.a.lock();\n",
            "        drop((ga, gb));\n",
            "    }\n",
            "}\n"
        ),
    );
    let fs = repo.findings();
    let hit = fs
        .iter()
        .find(|(r, _, _, _)| r == "lock-order")
        .unwrap_or_else(|| panic!("lock-order must fire: {fs:?}"));
    assert_eq!(hit.1, "crates/demo/src/lib.rs");
    assert_eq!(hit.2, 6, "anchored at the first held-while-taking site");
    assert!(
        hit.3.contains("crates/demo/src/lib.rs:6") && hit.3.contains("crates/demo/src/lib.rs:11"),
        "both inversion sites named: {}",
        hit.3
    );
}

#[test]
fn an_unjustified_relaxed_read_of_a_release_flag_is_flagged() {
    let repo = ScratchRepo::new("atomics");
    repo.write(
        "crates/demo/src/lib.rs",
        concat!(
            "use std::sync::atomic::{AtomicBool, Ordering};\n",
            "pub fn arm(f: &AtomicBool) { f.store(true, Ordering::Release); }\n",
            "pub fn poll(f: &AtomicBool) -> bool { f.load(Ordering::Relaxed) }\n"
        ),
    );
    let fs = repo.findings();
    let hit = fs
        .iter()
        .find(|(r, _, _, _)| r == "atomic-ordering")
        .unwrap_or_else(|| panic!("atomic-ordering must fire: {fs:?}"));
    assert_eq!((hit.1.as_str(), hit.2), ("crates/demo/src/lib.rs", 3));
    assert!(hit.3.contains("`Release`"), "{}", hit.3);
}

#[test]
fn an_unparsable_file_is_a_parse_coverage_finding_not_a_silent_skip() {
    let repo = ScratchRepo::new("parse");
    repo.write("crates/demo/src/lib.rs", "pub fn ok() {}\n");
    repo.write("crates/demo/src/broken.rs", "fn oops( {{{\n");
    let fs = repo.findings();
    assert!(
        fs.iter()
            .any(|(r, p, _, _)| r == "parse-coverage" && p == "crates/demo/src/broken.rs"),
        "unparsed files must surface: {fs:?}"
    );
}
