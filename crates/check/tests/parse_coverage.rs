//! Parse-coverage golden tests: the parser must produce an AST for 100%
//! of the workspace's own `.rs` files — zero lexical-fallback files —
//! and must see the known-tricky structures inside the hardest ones
//! (closures in `pool.rs`, the match-heavy `rules.rs`, macro-using test
//! files). This is the self-gate the CI stage relies on.

use blob_check::ast::{walk_block, Expr, File, Item, ItemKind};
use blob_check::{collect_sources, find_workspace_root, parser};
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    find_workspace_root(manifest).expect("workspace root above crates/check")
}

#[test]
fn every_workspace_file_parses_into_an_ast() {
    let root = workspace_root();
    let files = collect_sources(&root).expect("collect workspace sources");
    assert!(
        files.len() > 50,
        "expected a real workspace, got {} files",
        files.len()
    );
    let mut failures = Vec::new();
    for (path, text) in &files {
        if let Err(e) = parser::parse_source(text) {
            failures.push(format!("{path}: {e}"));
        }
    }
    assert!(
        failures.is_empty(),
        "{} file(s) fell back out of the AST grammar:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

fn parse_workspace_file(rel: &str) -> File {
    let path = workspace_root().join(rel);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    parser::parse_source(&text).unwrap_or_else(|e| panic!("parse {rel}: {e}"))
}

fn all_fns(items: &[Item], out: &mut Vec<(String, Option<blob_check::ast::Block>)>) {
    for it in items {
        match &it.kind {
            ItemKind::Fn(f) => out.push((f.name.clone(), f.body.clone())),
            ItemKind::Impl { items, .. }
            | ItemKind::Trait { items, .. }
            | ItemKind::Mod {
                items: Some(items), ..
            } => all_fns(items, out),
            _ => {}
        }
    }
}

#[test]
fn pool_rs_closures_and_locks_are_visible() {
    let f = parse_workspace_file("crates/blas/src/pool.rs");
    let mut fns = Vec::new();
    all_fns(&f.items, &mut fns);
    let names: Vec<&str> = fns.iter().map(|(n, _)| n.as_str()).collect();
    for expected in ["worker_loop", "run_job", "run_scoped", "parallel_for"] {
        assert!(
            names.contains(&expected),
            "missing fn {expected} in {names:?}"
        );
    }
    // run_scoped's body spawns closures — they must appear as Closure nodes
    let (_, body) = fns
        .iter()
        .find(|(n, _)| n == "run_scoped")
        .expect("run_scoped");
    let mut closures = 0;
    walk_block(body.as_ref().expect("body"), &mut |e| {
        if matches!(e, Expr::Closure { .. }) {
            closures += 1;
        }
    });
    assert!(closures >= 1, "run_scoped should contain closures");
}

#[test]
fn rules_rs_match_heavy_code_parses_with_matches_visible() {
    let f = parse_workspace_file("crates/check/src/rules.rs");
    let mut fns = Vec::new();
    all_fns(&f.items, &mut fns);
    let (_, body) = fns
        .iter()
        .find(|(n, _)| n == "check_file")
        .expect("check_file");
    let mut matches_seen = 0;
    walk_block(body.as_ref().expect("body"), &mut |e| {
        if matches!(e, Expr::Match { .. }) {
            matches_seen += 1;
        }
    });
    assert!(
        matches_seen >= 2,
        "check_file is match-heavy, saw {matches_seen}"
    );
}

#[test]
fn macro_using_files_parse() {
    // scalar.rs defines macro_rules! + invokes it at item position;
    // arena.rs and pool.rs use thread_local!; the chaos test file leans
    // on assert!/format! macro interiors.
    for rel in [
        "crates/blas/src/scalar.rs",
        "crates/blas/src/arena.rs",
        "crates/serve/tests/chaos.rs",
        "crates/blas/src/half.rs",
    ] {
        parse_workspace_file(rel);
    }
}
