//! The register-tiled GEMM micro-kernel.
//!
//! Computes an `MR × NR` tile of `C += A·B` from packed panel slivers. The
//! accumulator lives in a fixed-size array the compiler keeps in registers;
//! the inner loop is a rank-1 update per `k` step expressed with `mul_add`
//! so it autovectorizes to FMA instructions at `opt-level` ≥ 2.
//!
//! Tile sizes are chosen for the common 256-bit SIMD case: `MR = 8` rows
//! (two 4-wide f64 / one 8-wide f32 vector) by `NR = 4` columns, giving 32
//! accumulators — comfortably within 16 named vector registers after
//! unrolling.

use crate::scalar::Scalar;

/// Micro-tile rows.
pub const MR: usize = 8;
/// Micro-tile columns.
pub const NR: usize = 4;

/// Rank-`kc` update of an `MR × NR` accumulator from packed slivers.
///
/// `a` holds `kc` groups of `MR` consecutive elements (one per tile row);
/// `b` holds `kc` groups of `NR` consecutive elements (one per tile column).
/// `acc` is column-major: `acc[i + j * MR]` is tile element `(i, j)`.
#[inline]
pub fn ukernel<T: Scalar>(kc: usize, a: &[T], b: &[T], acc: &mut [T; MR * NR]) {
    debug_assert!(a.len() >= kc * MR, "packed A sliver too short");
    debug_assert!(b.len() >= kc * NR, "packed B sliver too short");
    for p in 0..kc {
        let ap = &a[p * MR..p * MR + MR];
        let bp = &b[p * NR..p * NR + NR];
        for j in 0..NR {
            let bv = bp[j];
            let col = &mut acc[j * MR..(j + 1) * MR];
            for i in 0..MR {
                col[i] = ap[i].mul_add(bv, col[i]);
            }
        }
    }
}

/// Writes an accumulator tile into `C` with BLAS beta semantics.
///
/// Only the `mr_eff × nr_eff` valid corner is stored (edge tiles have
/// zero-padded slivers whose extra rows/columns must not leak into `C`).
/// When `beta == 0`, `C` is overwritten without being read — required by
/// BLAS so an uninitialised `C` never contaminates the product.
#[inline]
pub fn store_tile<T: Scalar>(
    acc: &[T; MR * NR],
    c: &mut [T],
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
    beta: T,
) {
    debug_assert!(mr_eff <= MR && nr_eff <= NR);
    debug_assert!(
        (nr_eff == 0 && mr_eff == 0) || c.len() >= (nr_eff - 1) * ldc + mr_eff,
        "C tile slice too short"
    );
    if beta == T::ZERO {
        for j in 0..nr_eff {
            for i in 0..mr_eff {
                c[i + j * ldc] = acc[i + j * MR];
            }
        }
    } else if beta == T::ONE {
        for j in 0..nr_eff {
            for i in 0..mr_eff {
                c[i + j * ldc] += acc[i + j * MR];
            }
        }
    } else {
        for j in 0..nr_eff {
            for i in 0..mr_eff {
                let idx = i + j * ldc;
                c[idx] = c[idx].mul_add(beta, acc[i + j * MR]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Straightforward tile product for cross-checking.
    fn naive_tile(kc: usize, a: &[f64], b: &[f64]) -> [f64; MR * NR] {
        let mut out = [0.0; MR * NR];
        for p in 0..kc {
            for j in 0..NR {
                for i in 0..MR {
                    out[i + j * MR] += a[p * MR + i] * b[p * NR + j];
                }
            }
        }
        out
    }

    #[test]
    fn ukernel_matches_naive() {
        let kc = 13;
        let a: Vec<f64> = (0..kc * MR).map(|i| (i % 7) as f64 - 3.0).collect();
        let b: Vec<f64> = (0..kc * NR).map(|i| (i % 5) as f64 * 0.5).collect();
        let mut acc = [0.0; MR * NR];
        ukernel(kc, &a, &b, &mut acc);
        let expect = naive_tile(kc, &a, &b);
        for (got, want) in acc.iter().zip(expect.iter()) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn ukernel_accumulates_into_existing() {
        let kc = 4;
        let a = vec![1.0f64; kc * MR];
        let b = vec![1.0f64; kc * NR];
        let mut acc = [10.0; MR * NR];
        ukernel(kc, &a, &b, &mut acc);
        assert!(acc.iter().all(|&v| v == 10.0 + kc as f64));
    }

    #[test]
    fn ukernel_kc_zero_is_noop() {
        let mut acc = [5.0f32; MR * NR];
        ukernel::<f32>(0, &[], &[], &mut acc);
        assert!(acc.iter().all(|&v| v == 5.0));
    }

    #[test]
    fn store_beta_zero_overwrites_garbage() {
        let acc: [f64; MR * NR] = std::array::from_fn(|i| i as f64);
        let mut c = vec![f64::NAN; MR * NR];
        store_tile(&acc, &mut c, MR, MR, NR, 0.0);
        for j in 0..NR {
            for i in 0..MR {
                assert_eq!(c[i + j * MR], (i + j * MR) as f64);
            }
        }
    }

    #[test]
    fn store_beta_one_adds() {
        let acc = [2.0f64; MR * NR];
        let mut c = vec![1.0; MR * NR];
        store_tile(&acc, &mut c, MR, MR, NR, 1.0);
        assert!(c.iter().all(|&v| v == 3.0));
    }

    #[test]
    fn store_general_beta() {
        let acc = [1.0f64; MR * NR];
        let mut c = vec![2.0; MR * NR];
        store_tile(&acc, &mut c, MR, MR, NR, 3.0);
        assert!(c.iter().all(|&v| v == 7.0)); // 2*3 + 1
    }

    #[test]
    fn store_edge_tile_leaves_rest_untouched() {
        let acc = [9.0f64; MR * NR];
        let ldc = MR + 2;
        let mut c = vec![0.0; ldc * NR];
        store_tile(&acc, &mut c, ldc, 3, 2, 0.0);
        for j in 0..NR {
            for i in 0..ldc {
                let expect = if i < 3 && j < 2 { 9.0 } else { 0.0 };
                assert_eq!(c[i + j * ldc], expect, "({i},{j})");
            }
        }
    }
}
