//! Batched BLAS: many small GEMMs/GEMVs issued as one call — the extension
//! the paper names first in its future work (§V), citing that "batched
//! kernels can greatly improve GEMM performance for small problem sizes
//! *if* many can be computed concurrently".
//!
//! Strided-batch layout (the cuBLAS `gemmStridedBatched` convention): all
//! `batch` operand sets live in one buffer per matrix, instance `b` at
//! offset `b * stride`. Strides must be at least one full matrix so
//! instances never alias; output strides must make outputs disjoint.
//!
//! The parallel variants split the *batch* dimension across threads — each
//! instance is small by assumption, so inter-instance parallelism is the
//! only parallelism worth having (the same reasoning as the batched-BLAS
//! papers the paper cites).
//!
//! Every entry point validates its arguments through
//! [`contract`](crate::contract) before touching any buffer; stride layouts
//! that would alias instances come back as
//! [`ContractError::OverlappingBatchStride`].

use crate::contract::{self, ContractError};
use crate::gemm::gemm;
use crate::gemv::gemv_ref;
use crate::pool;
use crate::scalar::Scalar;

/// Arguments shared by every instance of a strided batched GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchedGemmDesc {
    /// Rows of each `A`/`C` instance.
    pub m: usize,
    /// Columns of each `B`/`C` instance.
    pub n: usize,
    /// Shared dimension of each instance.
    pub k: usize,
    /// Leading dimension of each `A` instance.
    pub lda: usize,
    /// Leading dimension of each `B` instance.
    pub ldb: usize,
    /// Leading dimension of each `C` instance.
    pub ldc: usize,
    /// Elements between consecutive A instances (≥ `lda * k`).
    pub stride_a: usize,
    /// Elements between consecutive B instances (≥ `ldb * n`).
    pub stride_b: usize,
    /// Elements between consecutive C instances (≥ `ldc * n`).
    pub stride_c: usize,
}

impl BatchedGemmDesc {
    /// A tight-layout descriptor for `batch` instances of `m×n×k`.
    pub fn tight(m: usize, n: usize, k: usize) -> Self {
        Self {
            m,
            n,
            k,
            lda: m.max(1),
            ldb: k.max(1),
            ldc: m.max(1),
            stride_a: m.max(1) * k,
            stride_b: k.max(1) * n,
            stride_c: m.max(1) * n,
        }
    }

    fn check<T>(&self, batch: usize, a: &[T], b: &[T], c: &[T]) -> Result<(), ContractError> {
        contract::check_batched_operand(
            "a",
            a.len(),
            batch,
            self.m,
            self.k,
            self.lda,
            self.stride_a,
        )?;
        contract::check_batched_operand(
            "b",
            b.len(),
            batch,
            self.k,
            self.n,
            self.ldb,
            self.stride_b,
        )?;
        contract::check_batched_operand(
            "c",
            c.len(),
            batch,
            self.m,
            self.n,
            self.ldc,
            self.stride_c,
        )
    }
}

/// Serial strided-batch GEMM: `C[i] ← α·A[i]·B[i] + β·C[i]` for each of
/// `batch` instances.
pub fn gemm_batched<T: Scalar>(
    desc: &BatchedGemmDesc,
    batch: usize,
    alpha: T,
    a: &[T],
    b: &[T],
    beta: T,
    c: &mut [T],
) -> Result<(), ContractError> {
    desc.check(batch, a, b, c)?;
    for i in 0..batch {
        // The batch contract covers each instance; per-instance calls on
        // the validated layout cannot fail.
        let _ = gemm(
            desc.m,
            desc.n,
            desc.k,
            alpha,
            &a[i * desc.stride_a..],
            desc.lda,
            &b[i * desc.stride_b..],
            desc.ldb,
            beta,
            &mut c[i * desc.stride_c..],
            desc.ldc,
        );
    }
    Ok(())
}

/// Parallel strided-batch GEMM: instances are distributed over workers
/// dispatched through [`pool::run_scoped`] (each instance runs the serial
/// kernel — batch-level parallelism is the point of batching). The worker
/// count is work-based ([`pool::effective_workers`] over the whole batch's
/// flops), so a handful of tiny instances runs serially inline instead of
/// paying dispatch.
pub fn gemm_batched_parallel<T: Scalar>(
    threads: usize,
    desc: &BatchedGemmDesc,
    batch: usize,
    alpha: T,
    a: &[T],
    b: &[T],
    beta: T,
    c: &mut [T],
) -> Result<(), ContractError> {
    desc.check(batch, a, b, c)?;
    if batch == 0 {
        return Ok(());
    }
    // Split C at instance boundaries (instances are stride_c apart) so
    // each thread exclusively owns a contiguous run of output instances.
    let stride_c = desc.stride_c.max(1);
    let mut chunks: Vec<&mut [T]> = c.chunks_mut(stride_c).take(batch).collect();
    if chunks.len() < batch {
        // Tail instance shorter than a full stride: possible when the last
        // instance's panel is tight. chunks_mut still yields it, so this
        // only fires for genuinely truncated buffers the contract rejects;
        // keep it as a defensive error rather than an index panic.
        return Err(ContractError::BufferTooShort {
            arg: "c",
            required: stride_c * batch,
            actual: chunks.iter().map(|ch| ch.len()).sum(),
        });
    }
    let flops = 2usize
        .saturating_mul(desc.m)
        .saturating_mul(desc.n)
        .saturating_mul(desc.k)
        .saturating_mul(batch);
    let runs = pool::effective_workers(threads, flops, pool::MIN_FLOPS_PER_THREAD).clamp(1, batch);
    let per = batch.div_ceil(runs);
    let mut jobs = Vec::with_capacity(runs);
    let mut i0 = 0usize;
    while !chunks.is_empty() {
        let take = per.min(chunks.len());
        let mine: Vec<&mut [T]> = chunks.drain(..take).collect();
        let base = i0;
        jobs.push(move || {
            for (j, ci) in mine.into_iter().enumerate() {
                let i = base + j;
                // Validated batch layout: per-instance call cannot fail.
                let _ = gemm(
                    desc.m,
                    desc.n,
                    desc.k,
                    alpha,
                    &a[i * desc.stride_a..],
                    desc.lda,
                    &b[i * desc.stride_b..],
                    desc.ldb,
                    beta,
                    ci,
                    desc.ldc,
                );
            }
        });
        i0 += take;
    }
    pool::run_scoped(jobs);
    Ok(())
}

/// Serial strided-batch GEMV: `y[i] ← α·A[i]·x[i] + β·y[i]`.
#[allow(clippy::too_many_arguments)]
pub fn gemv_batched<T: Scalar>(
    m: usize,
    n: usize,
    batch: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    stride_a: usize,
    x: &[T],
    stride_x: usize,
    beta: T,
    y: &mut [T],
    stride_y: usize,
) -> Result<(), ContractError> {
    contract::check_batched_operand("a", a.len(), batch, m, n, lda, stride_a)?;
    // Vectors are single-column batched operands.
    contract::check_batched_operand("x", x.len(), batch, n, 1, n.max(1), stride_x)?;
    contract::check_batched_operand("y", y.len(), batch, m, 1, m.max(1), stride_y)?;
    for i in 0..batch {
        // Validated batch layout: per-instance call cannot fail.
        let _ = gemv_ref(
            m,
            n,
            alpha,
            &a[i * stride_a..],
            lda,
            &x[i * stride_x..],
            1,
            beta,
            &mut y[i * stride_y..],
            1,
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_ref;

    fn filled(len: usize, seed: u64) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let h = seed
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add(i as u64)
                    .wrapping_mul(0xbf58476d1ce4e5b9);
                ((h >> 33) as f64 / (1u64 << 31) as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn batched_matches_instancewise_reference() {
        let desc = BatchedGemmDesc::tight(7, 5, 9);
        let batch = 6;
        let a = filled(desc.stride_a * batch, 1);
        let b = filled(desc.stride_b * batch, 2);
        let c0 = filled(desc.stride_c * batch, 3);

        let mut c_batched = c0.clone();
        gemm_batched(&desc, batch, 1.5, &a, &b, 0.5, &mut c_batched).unwrap();

        for i in 0..batch {
            let mut expect = c0[i * desc.stride_c..(i + 1) * desc.stride_c].to_vec();
            gemm_ref(
                desc.m,
                desc.n,
                desc.k,
                1.5,
                &a[i * desc.stride_a..],
                desc.lda,
                &b[i * desc.stride_b..],
                desc.ldb,
                0.5,
                &mut expect,
                desc.ldc,
            )
            .unwrap();
            for (got, want) in c_batched[i * desc.stride_c..(i + 1) * desc.stride_c]
                .iter()
                .zip(expect.iter())
            {
                assert!((got - want).abs() < 1e-12, "instance {i}");
            }
        }
    }

    #[test]
    fn parallel_matches_serial_batched() {
        let desc = BatchedGemmDesc::tight(16, 16, 16);
        for batch in [1usize, 2, 7, 32] {
            let a = filled(desc.stride_a * batch, 4);
            let b = filled(desc.stride_b * batch, 5);
            let mut c1 = vec![0.0; desc.stride_c * batch];
            let mut c2 = vec![0.0; desc.stride_c * batch];
            gemm_batched(&desc, batch, 1.0, &a, &b, 0.0, &mut c1).unwrap();
            for threads in [1usize, 3, 8] {
                c2.fill(0.0);
                gemm_batched_parallel(threads, &desc, batch, 1.0, &a, &b, 0.0, &mut c2).unwrap();
                assert_eq!(c1, c2, "batch {batch} threads {threads}");
            }
        }
    }

    #[test]
    fn padded_strides_leave_gaps_untouched() {
        let mut desc = BatchedGemmDesc::tight(4, 4, 4);
        desc.stride_c = 4 * 4 + 10; // 10-element gap between outputs
        let batch = 3;
        let a = filled(desc.stride_a * batch, 6);
        let b = filled(desc.stride_b * batch, 7);
        let mut c = vec![9.0; (batch - 1) * desc.stride_c + 16];
        gemm_batched(&desc, batch, 1.0, &a, &b, 0.0, &mut c).unwrap();
        // gap elements retain their sentinel value
        for i in 0..batch - 1 {
            for g in 16..desc.stride_c {
                assert_eq!(c[i * desc.stride_c + g], 9.0, "gap touched at {i},{g}");
            }
        }
    }

    #[test]
    fn batch_zero_is_noop() {
        let desc = BatchedGemmDesc::tight(4, 4, 4);
        let mut c: Vec<f64> = vec![];
        gemm_batched(&desc, 0, 1.0, &[], &[], 0.0, &mut c).unwrap();
        gemm_batched_parallel(2, &desc, 0, 1.0, &[], &[], 0.0, &mut c).unwrap();
    }

    #[test]
    fn aliasing_stride_rejected() {
        let mut desc = BatchedGemmDesc::tight(4, 4, 4);
        desc.stride_c = 8; // < ldc * n
        let a = vec![0.0; desc.stride_a * 2];
        let b = vec![0.0; desc.stride_b * 2];
        let mut c = vec![0.0; 64];
        let err = gemm_batched(&desc, 2, 1.0, &a, &b, 0.0, &mut c).unwrap_err();
        assert!(matches!(
            err,
            ContractError::OverlappingBatchStride {
                arg: "c",
                stride: 8,
                required: 16
            }
        ));
    }

    #[test]
    fn short_batch_buffer_rejected() {
        let desc = BatchedGemmDesc::tight(4, 4, 4);
        let a = vec![0.0; desc.stride_a]; // room for 1, batch of 2
        let b = vec![0.0; desc.stride_b * 2];
        let mut c = vec![0.0; desc.stride_c * 2];
        let err = gemm_batched(&desc, 2, 1.0, &a, &b, 0.0, &mut c).unwrap_err();
        assert!(matches!(
            err,
            ContractError::BufferTooShort { arg: "a", .. }
        ));
    }

    #[test]
    fn gemv_batched_matches_reference() {
        let (m, n, batch) = (9, 6, 5);
        let a = filled(m * n * batch, 8);
        let x = filled(n * batch, 9);
        let mut y = vec![0.0; m * batch];
        gemv_batched(m, n, batch, 2.0, &a, m, m * n, &x, n, 0.0, &mut y, m).unwrap();
        for i in 0..batch {
            let mut expect = vec![0.0; m];
            gemv_ref(
                m,
                n,
                2.0,
                &a[i * m * n..],
                m,
                &x[i * n..],
                1,
                0.0,
                &mut expect,
                1,
            )
            .unwrap();
            assert_eq!(&y[i * m..(i + 1) * m], expect.as_slice(), "instance {i}");
        }
    }

    #[test]
    fn gemv_batched_rejects_aliasing_y() {
        let (m, n, batch) = (4, 4, 3);
        let a = filled(m * n * batch, 10);
        let x = filled(n * batch, 11);
        let mut y = vec![0.0; m * batch];
        let err =
            gemv_batched(m, n, batch, 1.0, &a, m, m * n, &x, n, 0.0, &mut y, m - 1).unwrap_err();
        assert!(matches!(
            err,
            ContractError::OverlappingBatchStride { arg: "y", .. }
        ));
    }
}
