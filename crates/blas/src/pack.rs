//! Panel packing for the blocked GEMM.
//!
//! The Goto algorithm copies the current `A` block and `B` panel into
//! contiguous, micro-kernel-ordered buffers before the macro-kernel runs:
//! the micro-kernel then streams both operands with unit stride regardless
//! of the original leading dimensions, which is what makes the inner loop
//! bandwidth-friendly.
//!
//! Slivers are zero-padded to full `MR`/`NR` width so edge tiles need no
//! branches inside the micro-kernel; [`store_tile`](crate::microkernel::
//! store_tile) masks the padding when writing `C`.

use crate::microkernel::{MR, NR};
use crate::scalar::Scalar;

/// Packs an `mc × kc` block of `A` (column-major, leading dimension `lda`)
/// into `buf` as ceil(mc/MR) row slivers, scaling every element by `alpha`.
///
/// Sliver `s` occupies `buf[s * kc * MR ..]` and stores, for each `p` in
/// `0..kc`, the `MR` rows `s*MR .. s*MR+MR` of column `p` (zero-padded past
/// `mc`). Folding `alpha` into the packed copy means the micro-kernel never
/// multiplies by it — the same trick production BLAS use.
///
/// Returns the number of elements written (`ceil(mc/MR) * MR * kc`).
pub fn pack_a<T: Scalar>(
    mc: usize,
    kc: usize,
    a: &[T],
    lda: usize,
    alpha: T,
    buf: &mut Vec<T>,
) -> usize {
    debug_assert!(
        kc == 0 || mc == 0 || (kc - 1) * lda + mc <= a.len(),
        "A block out of range"
    );
    let slivers = mc.div_ceil(MR);
    let needed = slivers * MR * kc;
    buf.clear();
    buf.reserve(needed);
    for s in 0..slivers {
        let row0 = s * MR;
        let rows = MR.min(mc - row0);
        for p in 0..kc {
            let col = &a[p * lda + row0..p * lda + row0 + rows];
            if alpha == T::ONE {
                buf.extend_from_slice(col);
            } else {
                buf.extend(col.iter().map(|&v| v * alpha));
            }
            // zero-pad the sliver to full MR height
            buf.extend(std::iter::repeat_n(T::ZERO, MR - rows));
        }
    }
    debug_assert_eq!(buf.len(), needed);
    needed
}

/// Packs a `kc × nc` panel of `B` (column-major, leading dimension `ldb`)
/// into `buf` as ceil(nc/NR) column slivers.
///
/// Sliver `s` stores, for each `p` in `0..kc`, the `NR` elements
/// `B[p, s*NR .. s*NR+NR]` (zero-padded past `nc`).
///
/// Returns the number of elements written (`ceil(nc/NR) * NR * kc`).
pub fn pack_b<T: Scalar>(kc: usize, nc: usize, b: &[T], ldb: usize, buf: &mut Vec<T>) -> usize {
    debug_assert!(
        kc == 0 || nc == 0 || (nc - 1) * ldb + kc <= b.len(),
        "B panel out of range"
    );
    let slivers = nc.div_ceil(NR);
    let needed = slivers * NR * kc;
    buf.clear();
    buf.reserve(needed);
    for s in 0..slivers {
        let col0 = s * NR;
        let cols = NR.min(nc - col0);
        for p in 0..kc {
            for j in 0..cols {
                buf.push(b[(col0 + j) * ldb + p]);
            }
            buf.extend(std::iter::repeat_n(T::ZERO, NR - cols));
        }
    }
    debug_assert_eq!(buf.len(), needed);
    needed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_full_slivers() {
        // A is MR x 2 (one exact sliver), lda = MR
        let kc = 2;
        let a: Vec<f64> = (0..MR * kc).map(|i| i as f64).collect();
        let mut buf = Vec::new();
        let n = pack_a(MR, kc, &a, MR, 1.0, &mut buf);
        assert_eq!(n, MR * kc);
        // sliver layout: column 0's MR rows, then column 1's
        assert_eq!(&buf[..MR], &a[..MR]);
        assert_eq!(&buf[MR..], &a[MR..]);
    }

    #[test]
    fn pack_a_scales_by_alpha() {
        let a = vec![2.0f64; MR];
        let mut buf = Vec::new();
        pack_a(MR, 1, &a, MR, 0.5, &mut buf);
        assert!(buf.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn pack_a_zero_pads_edge_sliver() {
        // 3 rows => one sliver with MR-3 zeros per column
        let mc = 3;
        let kc = 2;
        let lda = 5; // padded leading dimension
        let mut a = vec![0.0f64; lda * kc];
        for p in 0..kc {
            for i in 0..mc {
                a[p * lda + i] = (10 * p + i) as f64 + 1.0;
            }
        }
        let mut buf = Vec::new();
        let n = pack_a(mc, kc, &a, lda, 1.0, &mut buf);
        assert_eq!(n, MR * kc);
        for p in 0..kc {
            let sl = &buf[p * MR..(p + 1) * MR];
            for (i, &v) in sl.iter().enumerate().take(mc) {
                assert_eq!(v, (10 * p + i) as f64 + 1.0);
            }
            assert!(sl[mc..].iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn pack_a_multiple_slivers() {
        let mc = MR + 2;
        let kc = 1;
        let a: Vec<f64> = (0..mc).map(|i| i as f64).collect();
        let mut buf = Vec::new();
        pack_a(mc, kc, &a, mc, 1.0, &mut buf);
        assert_eq!(buf.len(), 2 * MR);
        assert_eq!(&buf[..MR], &a[..MR]);
        assert_eq!(buf[MR], MR as f64);
        assert_eq!(buf[MR + 1], (MR + 1) as f64);
        assert!(buf[MR + 2..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pack_b_transposes_into_row_slivers() {
        // B is 2 x NR (kc=2, nc=NR), ldb = 2
        let kc = 2;
        let b: Vec<f64> = (0..kc * NR).map(|i| i as f64).collect();
        let mut buf = Vec::new();
        let n = pack_b(kc, NR, &b, kc, &mut buf);
        assert_eq!(n, NR * kc);
        // packed p=0 group: B[0, 0..NR] = elements 0, 2, 4, 6 (column-major)
        let row0: Vec<f64> = (0..NR).map(|j| b[j * kc]).collect();
        let row1: Vec<f64> = (0..NR).map(|j| b[j * kc + 1]).collect();
        assert_eq!(&buf[..NR], row0.as_slice());
        assert_eq!(&buf[NR..], row1.as_slice());
    }

    #[test]
    fn pack_b_zero_pads_edge_sliver() {
        let kc = 3;
        let nc = NR + 1; // second sliver has 1 live column
        let ldb = 4;
        let b: Vec<f64> = (0..ldb * nc).map(|i| i as f64 + 1.0).collect();
        let mut buf = Vec::new();
        let n = pack_b(kc, nc, &b, ldb, &mut buf);
        assert_eq!(n, 2 * NR * kc);
        let second = &buf[NR * kc..];
        for p in 0..kc {
            let group = &second[p * NR..(p + 1) * NR];
            assert_eq!(group[0], b[NR * ldb + p]);
            assert!(group[1..].iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn pack_empty_dims() {
        let mut buf = vec![1.0f64];
        assert_eq!(pack_a::<f64>(0, 0, &[], 1, 1.0, &mut buf), 0);
        assert!(buf.is_empty());
        assert_eq!(pack_b::<f64>(0, 0, &[], 1, &mut buf), 0);
        assert!(buf.is_empty());
    }
}
