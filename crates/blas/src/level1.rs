//! BLAS Level 1: vector-vector kernels.
//!
//! GPU-BLOB focuses its study on GEMM and GEMV, but those kernels — and many
//! others — are built out of the Level 1 set, so a complete substrate
//! provides it. All routines take an explicit element count `n` and strides
//! (`inc`), following the original 1979 interface semantics, including
//! negative increments: element `i` of an `n`-element vector with `inc < 0`
//! lives at `(n - 1 - i) * |inc|` (the vector is walked backwards).
//!
//! Every routine validates its arguments through
//! [`contract`](crate::contract) before touching any buffer; a zero
//! increment or short buffer comes back as a typed
//! [`ContractError`] rather than a panic.

use crate::contract::{self, vec_index, ContractError};
use crate::scalar::Scalar;

/// `dot`: returns `Σ x[i] * y[i]` over `n` logical elements.
pub fn dot<T: Scalar>(
    n: usize,
    x: &[T],
    incx: isize,
    y: &[T],
    incy: isize,
) -> Result<T, ContractError> {
    contract::check_vector("x", x.len(), n, incx)?;
    contract::check_vector("y", y.len(), n, incy)?;
    let mut acc = T::ZERO;
    if incx == 1 && incy == 1 {
        for i in 0..n {
            acc = x[i].mul_add(y[i], acc);
        }
    } else {
        for i in 0..n {
            acc = x[vec_index(i, n, incx)].mul_add(y[vec_index(i, n, incy)], acc);
        }
    }
    Ok(acc)
}

/// `axpy`: `y ← α x + y`.
pub fn axpy<T: Scalar>(
    n: usize,
    alpha: T,
    x: &[T],
    incx: isize,
    y: &mut [T],
    incy: isize,
) -> Result<(), ContractError> {
    contract::check_vector("x", x.len(), n, incx)?;
    contract::check_vector("y", y.len(), n, incy)?;
    if alpha == T::ZERO {
        return Ok(());
    }
    if incx == 1 && incy == 1 {
        for i in 0..n {
            y[i] = x[i].mul_add(alpha, y[i]);
        }
    } else {
        for i in 0..n {
            let at = vec_index(i, n, incy);
            y[at] = x[vec_index(i, n, incx)].mul_add(alpha, y[at]);
        }
    }
    Ok(())
}

/// `scal`: `x ← α x`.
pub fn scal<T: Scalar>(n: usize, alpha: T, x: &mut [T], incx: isize) -> Result<(), ContractError> {
    contract::check_vector("x", x.len(), n, incx)?;
    for i in 0..n {
        x[vec_index(i, n, incx)] *= alpha;
    }
    Ok(())
}

/// `nrm2`: Euclidean norm `‖x‖₂`, computed with scaling to avoid overflow
/// and underflow for extreme inputs (the classic LAPACK `dnrm2` approach).
pub fn nrm2<T: Scalar>(n: usize, x: &[T], incx: isize) -> Result<T, ContractError> {
    contract::check_vector("x", x.len(), n, incx)?;
    let mut scale = T::ZERO;
    let mut ssq = T::ONE;
    for i in 0..n {
        let v = x[vec_index(i, n, incx)].abs();
        if v == T::ZERO {
            continue;
        }
        if scale < v {
            let r = scale / v;
            ssq = ssq * r * r + T::ONE;
            scale = v;
        } else {
            let r = v / scale;
            ssq = r.mul_add(r, ssq);
        }
    }
    Ok(if scale == T::ZERO {
        T::ZERO
    } else {
        scale * ssq.sqrt()
    })
}

/// `asum`: sum of absolute values `Σ |x[i]|`.
pub fn asum<T: Scalar>(n: usize, x: &[T], incx: isize) -> Result<T, ContractError> {
    contract::check_vector("x", x.len(), n, incx)?;
    let mut acc = T::ZERO;
    for i in 0..n {
        acc += x[vec_index(i, n, incx)].abs();
    }
    Ok(acc)
}

/// `iamax`: index (into the logical vector) of the first element with the
/// largest absolute value. Returns `Ok(None)` for `n == 0`.
pub fn iamax<T: Scalar>(n: usize, x: &[T], incx: isize) -> Result<Option<usize>, ContractError> {
    contract::check_vector("x", x.len(), n, incx)?;
    if n == 0 {
        return Ok(None);
    }
    let mut best = 0usize;
    let mut best_val = x[vec_index(0, n, incx)].abs();
    for i in 1..n {
        let v = x[vec_index(i, n, incx)].abs();
        if v > best_val {
            best_val = v;
            best = i;
        }
    }
    Ok(Some(best))
}

/// `copy`: `y ← x`.
pub fn copy<T: Scalar>(
    n: usize,
    x: &[T],
    incx: isize,
    y: &mut [T],
    incy: isize,
) -> Result<(), ContractError> {
    contract::check_vector("x", x.len(), n, incx)?;
    contract::check_vector("y", y.len(), n, incy)?;
    if incx == 1 && incy == 1 {
        y[..n].copy_from_slice(&x[..n]);
    } else {
        for i in 0..n {
            y[vec_index(i, n, incy)] = x[vec_index(i, n, incx)];
        }
    }
    Ok(())
}

/// `swap`: exchanges the logical contents of `x` and `y`.
pub fn swap<T: Scalar>(
    n: usize,
    x: &mut [T],
    incx: isize,
    y: &mut [T],
    incy: isize,
) -> Result<(), ContractError> {
    contract::check_vector("x", x.len(), n, incx)?;
    contract::check_vector("y", y.len(), n, incy)?;
    for i in 0..n {
        std::mem::swap(&mut x[vec_index(i, n, incx)], &mut y[vec_index(i, n, incy)]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        let x = [1.0f64, 2.0, 3.0];
        let y = [4.0f64, 5.0, 6.0];
        assert_eq!(dot(3, &x, 1, &y, 1).unwrap(), 32.0);
        assert_eq!(dot(0, &x, 1, &y, 1).unwrap(), 0.0);
    }

    #[test]
    fn dot_strided() {
        // logical x = [1, 3], logical y = [4, 6]
        let x = [1.0f64, 99.0, 3.0];
        let y = [4.0f64, 99.0, 6.0];
        assert_eq!(dot(2, &x, 2, &y, 2).unwrap(), 1.0 * 4.0 + 3.0 * 6.0);
    }

    #[test]
    fn dot_negative_increment_reverses() {
        // incx = -1 walks x backwards: logical x = [3, 2, 1]
        let x = [1.0f64, 2.0, 3.0];
        let y = [1.0f64, 10.0, 100.0];
        assert_eq!(dot(3, &x, -1, &y, 1).unwrap(), 3.0 + 20.0 + 100.0);
    }

    #[test]
    fn dot_rejects_short_vector() {
        let x = [1.0f64; 3];
        let y = [1.0f64; 2];
        let err = dot(3, &x, 1, &y, 1).unwrap_err();
        assert!(matches!(
            err,
            ContractError::BufferTooShort { arg: "y", .. }
        ));
    }

    #[test]
    fn axpy_basic_and_alpha_zero() {
        let x = [1.0f32, 2.0, 3.0];
        let mut y = [10.0f32, 20.0, 30.0];
        axpy(3, 2.0, &x, 1, &mut y, 1).unwrap();
        assert_eq!(y, [12.0, 24.0, 36.0]);
        // alpha == 0 is a no-op and must not touch y
        axpy(3, 0.0, &x, 1, &mut y, 1).unwrap();
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpy_strided() {
        let x = [1.0f64, 0.0, 2.0];
        let mut y = [0.0f64, 9.0, 0.0, 9.0, 0.0];
        axpy(2, 3.0, &x, 2, &mut y, 2).unwrap();
        assert_eq!(y, [3.0, 9.0, 6.0, 9.0, 0.0]);
    }

    #[test]
    fn axpy_negative_increment() {
        // logical x with incx=-1 is [3, 2, 1]
        let x = [1.0f64, 2.0, 3.0];
        let mut y = [0.0f64, 0.0, 0.0];
        axpy(3, 1.0, &x, -1, &mut y, 1).unwrap();
        assert_eq!(y, [3.0, 2.0, 1.0]);
    }

    #[test]
    fn scal_scales_in_place() {
        let mut x = [1.0f64, 2.0, 3.0];
        scal(3, 0.5, &mut x, 1).unwrap();
        assert_eq!(x, [0.5, 1.0, 1.5]);
        scal(2, 0.0, &mut x, 2).unwrap();
        assert_eq!(x, [0.0, 1.0, 0.0]);
    }

    #[test]
    fn nrm2_matches_naive() {
        let x = [3.0f64, 4.0];
        assert!((nrm2(2, &x, 1).unwrap() - 5.0).abs() < 1e-12);
        assert_eq!(nrm2::<f64>(0, &[], 1).unwrap(), 0.0);
        let z = [0.0f64; 4];
        assert_eq!(nrm2(4, &z, 1).unwrap(), 0.0);
    }

    #[test]
    fn nrm2_avoids_overflow() {
        // naive sum of squares would overflow f64 here
        let x = [1e200f64, 1e200];
        let n = nrm2(2, &x, 1).unwrap();
        assert!(n.is_finite());
        assert!((n - 1e200 * 2.0f64.sqrt()).abs() / n < 1e-12);
    }

    #[test]
    fn nrm2_avoids_underflow() {
        let x = [1e-200f64, 1e-200];
        let n = nrm2(2, &x, 1).unwrap();
        assert!(n > 0.0);
        assert!((n - 1e-200 * 2.0f64.sqrt()).abs() / n < 1e-12);
    }

    #[test]
    fn asum_absolute_values() {
        let x = [-1.0f32, 2.0, -3.0];
        assert_eq!(asum(3, &x, 1).unwrap(), 6.0);
    }

    #[test]
    fn iamax_finds_first_max() {
        let x = [1.0f64, -5.0, 5.0, 2.0];
        assert_eq!(iamax(4, &x, 1).unwrap(), Some(1)); // first of the tied |5.0|s
        assert_eq!(iamax::<f64>(0, &[], 1).unwrap(), None);
        // strided: logical vector [1.0, 5.0]
        assert_eq!(iamax(2, &x, 2).unwrap(), Some(1));
    }

    #[test]
    fn copy_and_swap() {
        let x = [1.0f64, 2.0, 3.0];
        let mut y = [0.0f64; 3];
        copy(3, &x, 1, &mut y, 1).unwrap();
        assert_eq!(y, x);

        let mut a = [1.0f64, 2.0];
        let mut b = [3.0f64, 4.0];
        swap(2, &mut a, 1, &mut b, 1).unwrap();
        assert_eq!(a, [3.0, 4.0]);
        assert_eq!(b, [1.0, 2.0]);
    }

    #[test]
    fn copy_strided() {
        let x = [1.0f32, 9.0, 2.0, 9.0, 3.0];
        let mut y = [0.0f32; 3];
        copy(3, &x, 2, &mut y, 1).unwrap();
        assert_eq!(y, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn copy_negative_increment_reverses() {
        let x = [1.0f32, 2.0, 3.0];
        let mut y = [0.0f32; 3];
        copy(3, &x, 1, &mut y, -1).unwrap();
        assert_eq!(y, [3.0, 2.0, 1.0]);
    }

    #[test]
    fn zero_increment_rejected() {
        let x = [1.0f64; 3];
        let err = asum(3, &x, 0).unwrap_err();
        assert_eq!(err, ContractError::ZeroIncrement { arg: "x" });
    }
}
