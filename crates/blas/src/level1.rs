//! BLAS Level 1: vector-vector kernels.
//!
//! GPU-BLOB focuses its study on GEMM and GEMV, but those kernels — and many
//! others — are built out of the Level 1 set, so a complete substrate
//! provides it. All routines take an explicit element count `n` and strides
//! (`inc`), following the original 1979 interface semantics: element `i` of a
//! vector with increment `inc` lives at index `i * inc`.
//!
//! Negative increments (the full BLAS generality) are intentionally not
//! supported — the artifact only ever uses `incx = incy = 1` — and strides of
//! zero are rejected for the destination.

use crate::scalar::Scalar;

#[inline]
fn check_stride(n: usize, len: usize, inc: usize, what: &str) {
    assert!(inc > 0, "{what}: increment must be positive");
    if n > 0 {
        assert!(
            (n - 1) * inc < len,
            "{what}: vector of length {len} too short for n={n}, inc={inc}"
        );
    }
}

/// `dot`: returns `Σ x[i] * y[i]` over `n` logical elements.
pub fn dot<T: Scalar>(n: usize, x: &[T], incx: usize, y: &[T], incy: usize) -> T {
    check_stride(n, x.len(), incx, "dot x");
    check_stride(n, y.len(), incy, "dot y");
    let mut acc = T::ZERO;
    if incx == 1 && incy == 1 {
        for i in 0..n {
            acc = x[i].mul_add(y[i], acc);
        }
    } else {
        for i in 0..n {
            acc = x[i * incx].mul_add(y[i * incy], acc);
        }
    }
    acc
}

/// `axpy`: `y ← α x + y`.
pub fn axpy<T: Scalar>(n: usize, alpha: T, x: &[T], incx: usize, y: &mut [T], incy: usize) {
    check_stride(n, x.len(), incx, "axpy x");
    check_stride(n, y.len(), incy, "axpy y");
    if alpha == T::ZERO {
        return;
    }
    if incx == 1 && incy == 1 {
        for i in 0..n {
            y[i] = x[i].mul_add(alpha, y[i]);
        }
    } else {
        for i in 0..n {
            y[i * incy] = x[i * incx].mul_add(alpha, y[i * incy]);
        }
    }
}

/// `scal`: `x ← α x`.
pub fn scal<T: Scalar>(n: usize, alpha: T, x: &mut [T], incx: usize) {
    check_stride(n, x.len(), incx, "scal x");
    for i in 0..n {
        x[i * incx] *= alpha;
    }
}

/// `nrm2`: Euclidean norm `‖x‖₂`, computed with scaling to avoid overflow
/// and underflow for extreme inputs (the classic LAPACK `dnrm2` approach).
pub fn nrm2<T: Scalar>(n: usize, x: &[T], incx: usize) -> T {
    check_stride(n, x.len(), incx, "nrm2 x");
    let mut scale = T::ZERO;
    let mut ssq = T::ONE;
    for i in 0..n {
        let v = x[i * incx].abs();
        if v == T::ZERO {
            continue;
        }
        if scale < v {
            let r = scale / v;
            ssq = ssq * r * r + T::ONE;
            scale = v;
        } else {
            let r = v / scale;
            ssq = r.mul_add(r, ssq);
        }
    }
    if scale == T::ZERO {
        T::ZERO
    } else {
        scale * ssq.sqrt()
    }
}

/// `asum`: sum of absolute values `Σ |x[i]|`.
pub fn asum<T: Scalar>(n: usize, x: &[T], incx: usize) -> T {
    check_stride(n, x.len(), incx, "asum x");
    let mut acc = T::ZERO;
    for i in 0..n {
        acc += x[i * incx].abs();
    }
    acc
}

/// `iamax`: index (into the logical vector) of the first element with the
/// largest absolute value. Returns `None` for `n == 0`.
pub fn iamax<T: Scalar>(n: usize, x: &[T], incx: usize) -> Option<usize> {
    check_stride(n, x.len(), incx, "iamax x");
    if n == 0 {
        return None;
    }
    let mut best = 0usize;
    let mut best_val = x[0].abs();
    for i in 1..n {
        let v = x[i * incx].abs();
        if v > best_val {
            best_val = v;
            best = i;
        }
    }
    Some(best)
}

/// `copy`: `y ← x`.
pub fn copy<T: Scalar>(n: usize, x: &[T], incx: usize, y: &mut [T], incy: usize) {
    check_stride(n, x.len(), incx, "copy x");
    check_stride(n, y.len(), incy, "copy y");
    if incx == 1 && incy == 1 {
        y[..n].copy_from_slice(&x[..n]);
    } else {
        for i in 0..n {
            y[i * incy] = x[i * incx];
        }
    }
}

/// `swap`: exchanges the logical contents of `x` and `y`.
pub fn swap<T: Scalar>(n: usize, x: &mut [T], incx: usize, y: &mut [T], incy: usize) {
    check_stride(n, x.len(), incx, "swap x");
    check_stride(n, y.len(), incy, "swap y");
    for i in 0..n {
        std::mem::swap(&mut x[i * incx], &mut y[i * incy]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        let x = [1.0f64, 2.0, 3.0];
        let y = [4.0f64, 5.0, 6.0];
        assert_eq!(dot(3, &x, 1, &y, 1), 32.0);
        assert_eq!(dot(0, &x, 1, &y, 1), 0.0);
    }

    #[test]
    fn dot_strided() {
        // logical x = [1, 3], logical y = [4, 6]
        let x = [1.0f64, 99.0, 3.0];
        let y = [4.0f64, 99.0, 6.0];
        assert_eq!(dot(2, &x, 2, &y, 2), 1.0 * 4.0 + 3.0 * 6.0);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn dot_rejects_short_vector() {
        let x = [1.0f64; 3];
        let y = [1.0f64; 2];
        let _ = dot(3, &x, 1, &y, 1);
    }

    #[test]
    fn axpy_basic_and_alpha_zero() {
        let x = [1.0f32, 2.0, 3.0];
        let mut y = [10.0f32, 20.0, 30.0];
        axpy(3, 2.0, &x, 1, &mut y, 1);
        assert_eq!(y, [12.0, 24.0, 36.0]);
        // alpha == 0 is a no-op and must not touch y
        axpy(3, 0.0, &x, 1, &mut y, 1);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpy_strided() {
        let x = [1.0f64, 0.0, 2.0];
        let mut y = [0.0f64, 9.0, 0.0, 9.0, 0.0];
        axpy(2, 3.0, &x, 2, &mut y, 2);
        assert_eq!(y, [3.0, 9.0, 6.0, 9.0, 0.0]);
    }

    #[test]
    fn scal_scales_in_place() {
        let mut x = [1.0f64, 2.0, 3.0];
        scal(3, 0.5, &mut x, 1);
        assert_eq!(x, [0.5, 1.0, 1.5]);
        scal(2, 0.0, &mut x, 2);
        assert_eq!(x, [0.0, 1.0, 0.0]);
    }

    #[test]
    fn nrm2_matches_naive() {
        let x = [3.0f64, 4.0];
        assert!((nrm2(2, &x, 1) - 5.0).abs() < 1e-12);
        assert_eq!(nrm2::<f64>(0, &[], 1), 0.0);
        let z = [0.0f64; 4];
        assert_eq!(nrm2(4, &z, 1), 0.0);
    }

    #[test]
    fn nrm2_avoids_overflow() {
        // naive sum of squares would overflow f64 here
        let x = [1e200f64, 1e200];
        let n = nrm2(2, &x, 1);
        assert!(n.is_finite());
        assert!((n - 1e200 * 2.0f64.sqrt()).abs() / n < 1e-12);
    }

    #[test]
    fn nrm2_avoids_underflow() {
        let x = [1e-200f64, 1e-200];
        let n = nrm2(2, &x, 1);
        assert!(n > 0.0);
        assert!((n - 1e-200 * 2.0f64.sqrt()).abs() / n < 1e-12);
    }

    #[test]
    fn asum_absolute_values() {
        let x = [-1.0f32, 2.0, -3.0];
        assert_eq!(asum(3, &x, 1), 6.0);
    }

    #[test]
    fn iamax_finds_first_max() {
        let x = [1.0f64, -5.0, 5.0, 2.0];
        assert_eq!(iamax(4, &x, 1), Some(1)); // first of the tied |5.0|s
        assert_eq!(iamax::<f64>(0, &[], 1), None);
        // strided: logical vector [1.0, 5.0]
        assert_eq!(iamax(2, &x, 2), Some(1));
    }

    #[test]
    fn copy_and_swap() {
        let x = [1.0f64, 2.0, 3.0];
        let mut y = [0.0f64; 3];
        copy(3, &x, 1, &mut y, 1);
        assert_eq!(y, x);

        let mut a = [1.0f64, 2.0];
        let mut b = [3.0f64, 4.0];
        swap(2, &mut a, 1, &mut b, 1);
        assert_eq!(a, [3.0, 4.0]);
        assert_eq!(b, [1.0, 2.0]);
    }

    #[test]
    fn copy_strided() {
        let x = [1.0f32, 9.0, 2.0, 9.0, 3.0];
        let mut y = [0.0f32; 3];
        copy(3, &x, 2, &mut y, 1);
        assert_eq!(y, [1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "increment must be positive")]
    fn zero_increment_rejected() {
        let x = [1.0f64; 3];
        let _ = asum(3, &x, 0);
    }
}
