//! The [`Scalar`] abstraction over the two floating-point precisions the
//! benchmark evaluates (`f32` ⇒ SGEMM/SGEMV, `f64` ⇒ DGEMM/DGEMV).
//!
//! Keeping the kernel code generic over `Scalar` lets every kernel exist
//! exactly once while the harness sweeps both precisions, mirroring how the
//! C++ artifact templates its kernels over `float`/`double`.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar type usable in the BLAS kernels.
///
/// Implemented for `f32` and `f64`. The bound set is intentionally minimal:
/// arithmetic, comparison, a fused multiply-add, and conversions used by the
/// FLOPs/GFLOP-per-second accounting.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon for this precision.
    const EPSILON: Self;
    /// Short BLAS prefix: `"s"` for `f32`, `"d"` for `f64`.
    const PREFIX: char;
    /// Size of one element in bytes.
    const BYTES: usize;

    /// Fused multiply-add: `self * a + b` evaluated with a single rounding.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Lossy conversion from `f64` (used for tolerances and test data).
    fn from_f64(v: f64) -> Self;
    /// Lossless widening to `f64` (used for checksums and error metrics).
    fn to_f64(self) -> f64;
    /// Exact conversion from a small integer index (test data generation).
    fn from_usize(v: usize) -> Self {
        Self::from_f64(v as f64)
    }
    /// True if the value is finite (not NaN/inf).
    fn is_finite(self) -> bool;
}

macro_rules! impl_scalar {
    ($t:ty, $prefix:expr) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;
            const PREFIX: char = $prefix;
            const BYTES: usize = std::mem::size_of::<$t>();

            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_scalar!(f32, 's');
impl_scalar!(f64, 'd');

/// The two precisions the benchmark sweeps, as a runtime value.
///
/// Tables III–VI in the paper report `S:D` pairs; this enum labels which half
/// of the pair a measurement belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// 32-bit IEEE-754 (`float`): SGEMM / SGEMV.
    F32,
    /// 64-bit IEEE-754 (`double`): DGEMM / DGEMV.
    F64,
}

impl Precision {
    /// Element size in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::F64 => 8,
        }
    }

    /// The BLAS routine prefix letter, upper-case (`S` or `D`).
    pub const fn prefix(self) -> char {
        match self {
            Precision::F32 => 'S',
            Precision::F64 => 'D',
        }
    }

    /// All supported precisions, in the order the paper's tables list them.
    pub const ALL: [Precision; 2] = [Precision::F32, Precision::F64];
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Precision::F32 => write!(f, "fp32"),
            Precision::F64 => write!(f, "fp64"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_std() {
        assert_eq!(f32::ZERO, 0.0f32);
        assert_eq!(f64::ONE, 1.0f64);
        assert_eq!(<f32 as Scalar>::EPSILON, f32::EPSILON);
        assert_eq!(<f64 as Scalar>::EPSILON, f64::EPSILON);
    }

    #[test]
    fn prefixes_and_sizes() {
        assert_eq!(<f32 as Scalar>::PREFIX, 's');
        assert_eq!(<f64 as Scalar>::PREFIX, 'd');
        assert_eq!(<f32 as Scalar>::BYTES, 4);
        assert_eq!(<f64 as Scalar>::BYTES, 8);
        assert_eq!(Precision::F32.bytes(), 4);
        assert_eq!(Precision::F64.bytes(), 8);
        assert_eq!(Precision::F32.prefix(), 'S');
        assert_eq!(Precision::F64.prefix(), 'D');
    }

    #[test]
    fn mul_add_is_fused_semantics() {
        // mul_add must agree with a*b+c on exactly representable values.
        let a = 3.0f64;
        assert_eq!(a.mul_add(2.0, 1.0), 7.0);
        let b = 3.0f32;
        assert_eq!(Scalar::mul_add(b, 2.0, 1.0), 7.0);
    }

    #[test]
    fn conversions_round_trip() {
        for v in [0.0, 1.0, -2.5, 1e-8, 1e8] {
            assert_eq!(f64::from_f64(v), v);
            assert_eq!(f64::to_f64(v), v);
        }
        assert_eq!(f32::from_usize(7), 7.0f32);
        assert_eq!(f64::from_usize(1 << 20), (1u64 << 20) as f64);
    }

    #[test]
    fn finiteness() {
        assert!(1.0f64.is_finite());
        assert!(!Scalar::is_finite(f64::NAN));
        assert!(!Scalar::is_finite(f32::INFINITY));
    }

    #[test]
    fn precision_display() {
        assert_eq!(Precision::F32.to_string(), "fp32");
        assert_eq!(Precision::F64.to_string(), "fp64");
    }
}
