//! # blob-blas — from-scratch BLAS kernels for GPU-BLOB
//!
//! A self-contained, dependency-light BLAS implementation providing the
//! kernels the GPU BLAS Offload Benchmark drives: the complete Level 1 set,
//! GEMV (Level 2) and GEMM (Level 3), for `f32` and `f64`, in column-major
//! storage with explicit leading dimensions and vector increments — the same
//! call surface the paper's C++ artifact uses against vendor libraries.
//!
//! The GEMM implementation follows the classic Goto/BLIS decomposition:
//! cache-blocked loops around a register-tiled micro-kernel operating on
//! packed panels of `A` and `B`, optionally parallelised over column blocks
//! with a scoped thread pool. A naive reference implementation is kept for
//! validation and as the baseline the paper's evaluation implicitly compares
//! library heuristics against.
//!
//! ## Layout
//! - [`scalar`] — the [`Scalar`](scalar::Scalar) abstraction over `f32`/`f64`
//! - [`matrix`] — column-major matrix views and owned storage
//! - [`level1`] — dot, axpy, scal, nrm2, asum, iamax, copy, swap
//! - [`gemv`] — matrix-vector multiply, serial and parallel
//! - [`gemm`] — matrix-matrix multiply: reference, blocked, parallel
//! - [`pack`] — panel packing for the blocked GEMM
//! - [`arena`] — thread-local reusable packing buffers (zero steady-state
//!   allocation on the blocked-GEMM hot path)
//! - [`microkernel`] — the register-tiled inner kernel
//! - [`pool`] — the execution substrate: persistent batch-latch worker
//!   pool for `'static` jobs, scoped dispatch for borrowing kernels, and
//!   the work-based inline/parallel crossover constants
//! - [`tracehook`] — span hooks the tracing plane above this crate
//!   installs; disabled cost is one relaxed atomic load per seam
//! - [`dispatchhook`] — realized-time observation hooks the online
//!   dispatch plane (`blob-dispatch`) installs over the `gemm`/`gemv`
//!   entry points; disabled cost is one relaxed atomic load, no clock read
//! - [`batched`], [`sparse`], [`half`], [`level23`], [`transpose`] — the
//!   extension kernels (strided-batch, CSR SpMV, software BF16, GER/SYRK/
//!   TRSV/TRSM, transposed operands)
//!
//! Every public kernel entry point validates its full cblas-style argument
//! contract through the [`contract`] module *before* touching any buffer,
//! and reports violations as a typed [`ContractError`](contract::ContractError)
//! instead of panicking — verified mechanically by the workspace's
//! `blob-check` static-analysis tool (`contract-guard` rule).
//!
//! ```
//! use blob_blas::{gemm, gemm_ref};
//!
//! // C = A·B for 2x2 column-major matrices
//! let a = [1.0f64, 3.0, 2.0, 4.0]; // [[1, 2], [3, 4]]
//! let b = [5.0f64, 7.0, 6.0, 8.0]; // [[5, 6], [7, 8]]
//! let mut c = [0.0f64; 4];
//! gemm(2, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut c, 2).unwrap();
//! let mut want = [0.0f64; 4];
//! gemm_ref(2, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut want, 2).unwrap();
//! assert_eq!(c, want);
//! assert_eq!(c, [19.0, 43.0, 22.0, 50.0]);
//! // a bad leading dimension is an error value, not a panic:
//! assert!(gemm(2, 2, 2, 1.0, &a, 1, &b, 2, 0.0, &mut c, 2).is_err());
//! ```

// BLAS-convention entry points take the full cblas argument list.
#![allow(clippy::too_many_arguments)]

pub mod arena;
pub mod batched;
pub mod contract;
pub mod dispatchhook;
pub mod faultpoint;
pub mod gemm;
pub mod gemv;
pub mod half;
pub mod level1;
pub mod level23;
pub mod matrix;
pub mod microkernel;
pub mod pack;
pub mod perturb;
pub mod pool;
pub mod scalar;
pub mod sparse;
pub mod tracehook;
pub mod transpose;

pub use batched::{gemm_batched, gemm_batched_parallel, gemv_batched, BatchedGemmDesc};
pub use contract::ContractError;
pub use gemm::{gemm, gemm_blocked, gemm_blocked_with, gemm_parallel, gemm_ref, BlockConfig};
pub use gemv::{gemv, gemv_parallel, gemv_ref};
pub use half::Bf16;
pub use level23::{ger, syrk, trsm, trsm_parallel, trsv, UpLo};
pub use matrix::Matrix;
pub use pool::ThreadPool;
pub use scalar::Scalar;
pub use sparse::CsrMatrix;
pub use transpose::{gemm_ex, gemv_ex, Trans};
