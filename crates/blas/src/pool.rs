//! Thread-parallel execution substrate.
//!
//! Two facilities:
//!
//! 1. [`ThreadPool`] — a persistent worker pool for `'static` jobs, built
//!    entirely on `std`: a `Mutex<VecDeque>` job queue with a `Condvar`,
//!    and a completion count guarded by a second mutex + condvar. Higher
//!    layers (the benchmark runner) use it for independent tasks like
//!    concurrent problem-type sweeps.
//! 2. [`parallel_for`] — scoped data-parallelism over an index range using
//!    `std::thread::scope`, used by the parallel GEMM/GEMV kernels where the
//!    closures borrow matrix slices and therefore cannot be `'static`.
//!
//! The worker count defaults to the host's available parallelism, mirroring
//! how the paper pins one full CPU socket (`OMP_NUM_THREADS`, §IV).
//!
//! Interleaving-sensitive spots call [`perturb::point`](crate::perturb),
//! which the seeded stress tests use to explore schedules.

use crate::perturb;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Lock a mutex, recovering the guard if a previous holder panicked.
///
/// The pool's invariants (queue contents, pending count) are updated under
/// the lock with non-panicking code, so a poisoned lock still guards
/// consistent data; recovering keeps one panicking *job* from wedging every
/// later `join`.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Job queue shared between submitters and workers.
struct Queue {
    jobs: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// Tracks outstanding jobs so callers can block until a batch drains.
struct Pending {
    count: Mutex<usize>,
    cv: Condvar,
}

impl Pending {
    fn incr(&self) {
        *lock_ignore_poison(&self.count) += 1;
    }
    fn decr(&self) {
        let mut c = lock_ignore_poison(&self.count);
        *c -= 1;
        if *c == 0 {
            self.cv.notify_all();
        }
    }
    fn wait_zero(&self) {
        let mut c = lock_ignore_poison(&self.count);
        while *c != 0 {
            c = self
                .cv
                .wait(c)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// A fixed-size pool of persistent worker threads.
///
/// Jobs submitted with [`execute`](Self::execute) run on an arbitrary
/// worker; [`join`](Self::join) blocks until every submitted job has
/// finished. Dropping the pool joins all workers.
pub struct ThreadPool {
    queue: Arc<Queue>,
    workers: Vec<JoinHandle<()>>,
    pending: Arc<Pending>,
}

impl ThreadPool {
    /// Creates a pool with `threads` workers (at least 1).
    ///
    /// If the OS refuses to spawn any worker thread at all, the pool
    /// degrades to running jobs inline on the submitting thread rather
    /// than failing: a benchmark harness should keep producing numbers on
    /// a resource-starved host, just slowly.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let queue = Arc::new(Queue {
            jobs: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        });
        let pending = Arc::new(Pending {
            count: Mutex::new(0),
            cv: Condvar::new(),
        });
        let workers: Vec<JoinHandle<()>> = (0..threads)
            .filter_map(|idx| {
                let queue = Arc::clone(&queue);
                let pending = Arc::clone(&pending);
                std::thread::Builder::new()
                    .name(format!("blob-worker-{idx}"))
                    .spawn(move || worker_loop(&queue, &pending))
                    .ok()
            })
            .collect();
        Self {
            queue,
            workers,
            pending,
        }
    }

    /// A pool sized to the host's available parallelism.
    pub fn with_default_parallelism() -> Self {
        Self::new(available_threads())
    }

    /// Number of worker threads (0 only if the OS refused every spawn, in
    /// which case jobs run inline on the submitting thread).
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job for asynchronous execution.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        if self.workers.is_empty() {
            // Spawn-degraded mode: run inline, keeping execute/join
            // semantics (the job is complete before join is reachable).
            job();
            return;
        }
        self.pending.incr();
        perturb::point(perturb::tags::POOL_SUBMIT);
        {
            let mut state = lock_ignore_poison(&self.queue.jobs);
            state.jobs.push_back(Box::new(job));
        }
        self.queue.ready.notify_one();
    }

    /// Blocks until every job submitted so far has completed.
    pub fn join(&self) {
        self.pending.wait_zero();
    }
}

fn worker_loop(queue: &Queue, pending: &Pending) {
    loop {
        let job = {
            let mut state = lock_ignore_poison(&queue.jobs);
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = queue
                    .ready
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        perturb::point(perturb::tags::POOL_DEQUEUE);
        job();
        perturb::point(perturb::tags::POOL_DONE);
        pending.decr();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = lock_ignore_poison(&self.queue.jobs);
            state.shutdown = true;
        }
        // Workers drain remaining jobs (pop_front wins over shutdown),
        // then exit once the queue is empty.
        self.queue.ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The host's available hardware parallelism (>= 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `range` into at most `threads` contiguous chunks and runs `f` on
/// each chunk from a scoped thread. Chunks smaller than `min_chunk` are
/// merged so tiny problems do not pay spawn overhead for no useful work.
///
/// `f` receives the sub-range it owns. The final chunk absorbs the
/// remainder, so every index is covered exactly once.
pub fn parallel_for<F>(threads: usize, range: Range<usize>, min_chunk: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return;
    }
    let min_chunk = min_chunk.max(1);
    let max_chunks = len.div_ceil(min_chunk);
    let chunks = threads.max(1).min(max_chunks);
    if chunks <= 1 {
        f(range);
        return;
    }
    let chunk = len / chunks;
    let rem = len % chunks;
    std::thread::scope(|s| {
        let f = &f;
        let mut start = range.start;
        for c in 0..chunks {
            // distribute the remainder one element at a time over leading chunks
            let this = chunk + usize::from(c < rem);
            let sub = start..start + this;
            start += this;
            s.spawn(move || {
                perturb::point(perturb::tags::PARALLEL_FOR_CHUNK);
                f(sub)
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn pool_join_on_empty_is_immediate() {
        let pool = ThreadPool::new(2);
        pool.join(); // must not deadlock
    }

    #[test]
    fn pool_reusable_across_batches() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for batch in 1..=3 {
            for _ in 0..10 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.join();
            assert_eq!(counter.load(Ordering::Relaxed), batch * 10);
        }
    }

    #[test]
    fn pool_at_least_one_thread() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.store(1, Ordering::Relaxed);
        });
        pool.join();
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_drop_drains_outstanding_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..50 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            // No join: Drop must still run every submitted job.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn pool_survives_panicking_job() {
        let pool = ThreadPool::new(2);
        pool.execute(|| {
            // A panicking job must not wedge the pending count… but a panic
            // unwinding out of worker_loop would skip decr. Catch it like a
            // real harness job would.
            let _ = std::panic::catch_unwind(|| panic!("job failure"));
        });
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.store(1, Ordering::Relaxed);
        });
        pool.join();
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        let n = 1013;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(7, 0..n, 1, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_respects_min_chunk() {
        // 10 elements with min_chunk 8 => at most 2 chunks
        let chunks = AtomicUsize::new(0);
        parallel_for(16, 0..10, 8, |_r| {
            chunks.fetch_add(1, Ordering::Relaxed);
        });
        assert!(chunks.load(Ordering::Relaxed) <= 2);
    }

    #[test]
    fn parallel_for_empty_range() {
        parallel_for(4, 5..5, 1, |_r| panic!("must not be called"));
    }

    #[test]
    fn parallel_for_offset_range() {
        let sum = AtomicUsize::new(0);
        parallel_for(3, 10..20, 1, |r| {
            for i in r {
                sum.fetch_add(i, Ordering::Relaxed);
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), (10..20).sum::<usize>());
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
