//! Thread-parallel execution substrate: the workspace's only home for
//! thread creation on kernel paths.
//!
//! Three facilities, one per kind of parallelism the repo needs:
//!
//! 1. [`ThreadPool`] — persistent workers spawned once and parked on a
//!    condvar, running `'static` jobs. Batches are tracked by per-batch
//!    completion latches ([`BatchHandle`]): concurrent callers sharing one
//!    pool wait only for *their own* jobs, and a panicking job is re-thrown
//!    to the waiter at the batch barrier (matching `std::thread::scope`
//!    semantics). The sweep runner and `blob-serve` use it to parallelise
//!    across problem sizes.
//! 2. [`run_scoped`] — scoped dispatch for *borrowing* (non-`'static`)
//!    closures, used by the parallel GEMM/GEMV/SpMV/TRSM/batched kernels.
//!    This is the workspace's **only** `std::thread::scope` call site
//!    (enforced by the `no-adhoc-scope` blob-check rule): one job runs
//!    inline with zero dispatch, and `k` jobs cost `k − 1` spawns because
//!    the caller executes the first job itself while the scope runs the
//!    rest.
//! 3. [`parallel_for`] — index-range data-parallelism built on
//!    [`run_scoped`], with min-chunk merging so tiny ranges never dispatch.
//!
//! ## Why borrowed closures cannot ride the persistent workers
//!
//! The workspace denies `unsafe` (`Cargo.toml` workspace lints, plus the
//! `no-unsafe` blob-check rule). A parked `'static` worker that runs a
//! closure borrowing the caller's stack requires erasing the closure's
//! lifetime before it crosses the queue — exactly the `unsafe` transmute
//! at the heart of rayon's and crossbeam's scope implementations. Safe
//! Rust has precisely one primitive that performs this erasure with a
//! compiler-verified barrier: `std::thread::scope`. So borrowed dispatch
//! is built on that primitive, confined to this module, and the real
//! per-call costs are attacked where they actually are:
//!
//! - **below the crossover, no threads at all** — the work-based sizing
//!   ([`effective_workers`]) runs small problems inline, which is where
//!   the offload threshold lives and where spawn overhead distorts
//!   timings (DESIGN.md "Execution substrate");
//! - **above it, `k − 1` spawns instead of `k`** — the caller participates;
//! - **zero steady-state allocation** — packing buffers come from
//!   [`arena`](crate::arena), not per-call `Vec`s.
//!
//! Interleaving-sensitive spots call [`perturb::point`](crate::perturb),
//! which the seeded stress tests use to explore schedules.

use crate::faultpoint::{self, Directive};
use crate::perturb;
use crate::tracehook;
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Minimum floating-point operations a worker must own before compute-bound
/// scoped dispatch pays for itself.
///
/// Measured on the container this repo builds in: one scoped spawn plus
/// join costs ~20–60 µs, and the blocked GEMM sustains a few GFLOP/s per
/// core, so a thread needs on the order of 10⁷ flops (a few ms of work)
/// before the hand-off is amortised below a few percent. Concretely, with
/// 4 requested threads this sends ≤ 128³ GEMM (4.2 MFLOP) down the inline
/// path, splits 256³ (34 MFLOP) two ways, and 512³ (268 MFLOP) four ways —
/// see `BENCH_blas.json` for the measured crossover.
pub const MIN_FLOPS_PER_THREAD: usize = 16_000_000;

/// Minimum streamed elements a worker must own before bandwidth-bound
/// scoped dispatch (GEMV) pays for itself: ~4 MiB of f64 traffic, a few
/// hundred µs of streaming — same amortisation argument as
/// [`MIN_FLOPS_PER_THREAD`] for kernels that move one element per flop.
pub const MIN_ELEMS_PER_THREAD: usize = 1 << 19;

/// Minimum stored non-zeros per worker for sparse kernels (SpMV): each
/// non-zero costs an indirect gather on top of the flop, so the break-even
/// arrives at fewer elements than the dense streaming bound.
pub const MIN_NNZ_PER_THREAD: usize = 1 << 17;

/// How many workers `total_work` justifies, given a requested thread count:
/// `min(threads, total_work / min_per_worker)`, at least 1.
///
/// This is the crossover that makes tiny parallel calls degrade to inline
/// single-threaded execution instead of paying dispatch: below
/// `2 × min_per_worker` of work the answer is 1 and [`run_scoped`] runs
/// the single job on the caller with no thread machinery at all.
pub fn effective_workers(threads: usize, total_work: usize, min_per_worker: usize) -> usize {
    let by_work = total_work / min_per_worker.max(1);
    threads.max(1).min(by_work.max(1))
}

/// Lock a mutex, recovering the guard if a previous holder panicked.
///
/// The pool's invariants (queue contents, latch counts) are updated under
/// the lock with non-panicking code, so a poisoned lock still guards
/// consistent data; recovering keeps one panicking *job* from wedging every
/// later wait.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Job queue shared between submitters and workers. Each job carries the
/// latch of the batch it belongs to.
struct Queue {
    jobs: Mutex<QueueState>,
    ready: Condvar,
    /// Live worker count. Zero means every job must run inline on the
    /// submitting thread (spawn-degraded pool, or all workers killed by
    /// injected faults and not yet replaced).
    alive: AtomicUsize,
}

struct QueueState {
    jobs: VecDeque<(Job, Arc<Latch>)>,
    shutdown: bool,
}

/// A per-batch completion latch: outstanding-job count plus the first
/// panic payload captured from this batch's jobs.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    pending: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(LatchState {
                pending: 0,
                panic: None,
            }),
            done: Condvar::new(),
        })
    }

    fn incr(&self) {
        lock_ignore_poison(&self.state).pending += 1;
    }

    /// Marks one job finished, recording `panic` if it unwound. The first
    /// payload wins, like the first propagating panic under
    /// `std::thread::scope`.
    fn decr(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut s = lock_ignore_poison(&self.state);
        s.pending -= 1;
        if s.panic.is_none() {
            s.panic = panic;
        }
        if s.pending == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until the batch drains or `timeout` elapses. Returns true
    /// when the batch is done (after re-throwing a captured panic); false
    /// on timeout, so the waiter can check worker health and retry.
    fn wait_timeout(&self, timeout: Duration) -> bool {
        let mut s = lock_ignore_poison(&self.state);
        while s.pending != 0 {
            let (guard, res) = self
                .done
                .wait_timeout(s, timeout)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            s = guard;
            if res.timed_out() && s.pending != 0 {
                return false;
            }
        }
        if let Some(payload) = s.panic.take() {
            drop(s);
            resume_unwind(payload);
        }
        true
    }
}

thread_local! {
    /// True on a [`ThreadPool`] worker thread — the nested-dispatch guard.
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// A fixed-size pool of persistent worker threads for `'static` jobs.
///
/// Workers are spawned once at construction and park on a condvar between
/// jobs, so steady-state submission costs a queue push and a wake-up, not
/// an OS thread spawn. Work is grouped into batches ([`batch`](Self::batch)):
/// each batch has its own completion latch, so concurrent callers sharing
/// one pool do not wait on each other's jobs, and a panic inside a job is
/// re-thrown to that batch's waiter at [`BatchHandle::wait`] — the same
/// contract `std::thread::scope` gives for scoped spawns.
///
/// A job submitted *from a pool worker* runs inline instead of being
/// queued: with every worker blocked inside such a job, queueing and
/// waiting would deadlock (see `nested_dispatch_runs_inline`).
///
/// ## Worker-death detection and replacement
///
/// A worker can die: the `pool.worker` fault point
/// ([`crate::faultpoint`]) injects clean exits and panics to model it.
/// Death is *detected* at the batch barrier — [`BatchHandle::wait`] polls
/// on a short timeout and calls [`ThreadPool::ensure_workers`], which
/// joins finished workers and spawns replacements (counted by
/// [`ThreadPool::replaced_workers`]). Because a dying worker never holds
/// a dequeued job (the fault point sits *before* the dequeue, and a
/// mid-job panic is caught by `run_job` and routed to the batch latch),
/// no job is ever lost: it stays queued until a live or replacement
/// worker picks it up, so batches always complete.
///
/// Dropping the pool drains the queue and joins all workers.
pub struct ThreadPool {
    queue: Arc<Queue>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Configured worker count; `ensure_workers` respawns back up to it.
    target: usize,
    /// Monotonic id source for worker thread names.
    next_id: AtomicUsize,
    /// Workers respawned after death (fault-injected or otherwise).
    replaced: AtomicU64,
}

/// How often a blocked batch waiter re-checks worker health. Long enough
/// to be free next to real kernel work, short enough that an injected
/// worker death stalls a batch imperceptibly.
const WORKER_CHECK_PERIOD: Duration = Duration::from_millis(25);

fn spawn_worker(queue: &Arc<Queue>, idx: usize) -> Option<JoinHandle<()>> {
    // Count the worker alive *before* it runs so a submit racing with
    // construction queues instead of falling back to inline execution.
    // relaxed: `alive` is a zero/non-zero routing hint; the jobs mutex
    // orders the work itself, so counter ordering buys nothing
    queue.alive.fetch_add(1, Ordering::Relaxed);
    let q = Arc::clone(queue);
    let handle = std::thread::Builder::new()
        .name(format!("blob-worker-{idx}"))
        .spawn(move || {
            IS_POOL_WORKER.with(|f| f.set(true));
            let _guard = AliveGuard(&q.alive);
            // blob-check: allow(panic-reachability): the only panic on this path is the fault plane's injected `pool.worker` death, and ensure_workers() respawns the thread
            worker_loop(&q);
        });
    match handle {
        Ok(h) => Some(h),
        Err(_) => {
            // relaxed: undoes the routing-hint increment above; same reasoning
            queue.alive.fetch_sub(1, Ordering::Relaxed);
            None
        }
    }
}

/// Decrements the live-worker count however the worker exits — clean
/// shutdown, injected death, or panic unwind.
struct AliveGuard<'a>(&'a AtomicUsize);

impl Drop for AliveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

impl ThreadPool {
    /// Creates a pool with `threads` workers (at least 1).
    ///
    /// If the OS refuses to spawn any worker thread at all, the pool
    /// degrades to running jobs inline on the submitting thread rather
    /// than failing: a benchmark harness should keep producing numbers on
    /// a resource-starved host, just slowly.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let queue = Arc::new(Queue {
            jobs: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            alive: AtomicUsize::new(0),
        });
        let workers: Vec<JoinHandle<()>> = (0..threads)
            .filter_map(|idx| spawn_worker(&queue, idx))
            .collect();
        Self {
            queue,
            workers: Mutex::new(workers),
            target: threads,
            next_id: AtomicUsize::new(threads),
            replaced: AtomicU64::new(0),
        }
    }

    /// A pool sized to the host's available parallelism.
    pub fn with_default_parallelism() -> Self {
        Self::new(available_threads())
    }

    /// Configured worker count (callers size their fan-out with this; the
    /// live count may dip below it briefly between a worker death and its
    /// replacement).
    pub fn threads(&self) -> usize {
        self.target
    }

    /// Workers respawned after death, across the pool's lifetime.
    pub fn replaced_workers(&self) -> u64 {
        // relaxed: statistics read; nothing is ordered against the respawns it counts
        self.replaced.load(Ordering::Relaxed)
    }

    /// Joins any dead workers and spawns replacements up to the
    /// configured count. Called from the batch barrier's health poll;
    /// harmless (and cheap) when every worker is healthy.
    pub fn ensure_workers(&self) {
        let mut workers = lock_ignore_poison(&self.workers);
        let mut i = 0;
        while i < workers.len() {
            if workers[i].is_finished() {
                let h = workers.swap_remove(i);
                let _ = h.join();
            } else {
                i += 1;
            }
        }
        while workers.len() < self.target {
            // relaxed: monotone id generator — uniqueness needs atomicity, not ordering
            let idx = self.next_id.fetch_add(1, Ordering::Relaxed);
            match spawn_worker(&self.queue, idx) {
                Some(h) => {
                    workers.push(h);
                    // relaxed: statistics counter read only by replaced_workers()
                    self.replaced.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    /// Opens a new batch. Jobs submitted through the handle complete —
    /// or re-throw their panic — at [`BatchHandle::wait`].
    pub fn batch(&self) -> BatchHandle<'_> {
        BatchHandle {
            pool: self,
            latch: Latch::new(),
        }
    }

    /// Submits one fire-and-forget job (a single-job batch nobody waits
    /// on). The job still completes before [`Drop`] returns.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let mut b = self.batch();
        b.submit(job);
        // handle dropped without wait: the latch keeps the job tracked
        // only for queue draining on Drop
    }

    fn enqueue(&self, job: Job, latch: &Arc<Latch>) {
        // relaxed: liveness routing hint — a stale non-zero still enqueues
        // safely (Drop drains the queue), a stale zero just runs inline
        let no_workers = self.queue.alive.load(Ordering::Relaxed) == 0;
        let inline = no_workers || IS_POOL_WORKER.with(Cell::get);
        latch.incr();
        if inline {
            // Spawn-degraded pool or nested dispatch from a worker: run on
            // the current thread. Queueing from a worker could deadlock —
            // every worker may already be blocked in a wait of its own.
            run_job(job, latch);
            return;
        }
        perturb::point(perturb::tags::POOL_SUBMIT);
        let dispatch = tracehook::span(tracehook::names::POOL_DISPATCH, tracehook::cats::POOL);
        {
            let mut state = lock_ignore_poison(&self.queue.jobs);
            state.jobs.push_back((job, Arc::clone(latch)));
            dispatch.annotate("queued", state.jobs.len() as u64);
        }
        self.queue.ready.notify_one();
    }
}

/// An open batch of jobs on a [`ThreadPool`].
///
/// Submit any number of `'static` jobs, then call [`wait`](Self::wait) —
/// it returns when every job of *this* batch has finished and re-throws
/// the first panic any of them raised.
pub struct BatchHandle<'p> {
    pool: &'p ThreadPool,
    latch: Arc<Latch>,
}

impl BatchHandle<'_> {
    /// Submits a job to this batch.
    pub fn submit(&mut self, job: impl FnOnce() + Send + 'static) {
        self.pool.enqueue(Box::new(job), &self.latch);
    }

    /// Blocks until every submitted job has completed. If a job panicked,
    /// the first captured payload is re-thrown here — the batch barrier
    /// mirrors `std::thread::scope`'s join-then-propagate contract.
    ///
    /// The wait doubles as the pool's worker-death detector: each
    /// [`WORKER_CHECK_PERIOD`] without completion it joins dead workers
    /// and spawns replacements, so a batch survives losing every worker
    /// mid-flight.
    pub fn wait(self) {
        perturb::point(perturb::tags::BATCH_WAIT);
        let _wait = tracehook::span(tracehook::names::POOL_WAIT, tracehook::cats::POOL);
        while !self.latch.wait_timeout(WORKER_CHECK_PERIOD) {
            self.pool.ensure_workers();
        }
    }
}

/// Runs one job, routing a panic into its batch latch instead of letting
/// it unwind the worker (or the submitting thread, for inline dispatch).
fn run_job(job: Job, latch: &Arc<Latch>) {
    // AssertUnwindSafe: the closure's captured state is dropped with the
    // closure either way; the latch is the only thing observed after a
    // panic and is updated under its own lock. A panic unwinds the span
    // guard too, so the trace stays balanced.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _job = tracehook::span(tracehook::names::POOL_JOB, tracehook::cats::POOL);
        job();
    }));
    perturb::point(perturb::tags::POOL_DONE);
    latch.decr(outcome.err());
}

fn worker_loop(queue: &Queue) {
    loop {
        // The fault point sits *before* the dequeue so an injected death
        // never takes a job with it: the job stays queued for a live or
        // replacement worker, and batch latches never leak a count.
        match faultpoint::point(faultpoint::sites::POOL_WORKER) {
            Directive::Proceed => {}
            Directive::Die => return,
            // blob-check: allow(no-unwrap-in-lib): injected worker panic is the fault plane's contract; unwind containment is under test
            Directive::Panic => panic!("injected fault panic at `pool.worker`"), // blob-check: allow(panic-reachability): deliberate injected death; worker supervision re-spawns and jobs stay queued
            Directive::Delay(d) => std::thread::sleep(d),
        }
        let (job, latch) = {
            let mut state = lock_ignore_poison(&queue.jobs);
            loop {
                if let Some(entry) = state.jobs.pop_front() {
                    break entry;
                }
                if state.shutdown {
                    return;
                }
                state = queue
                    .ready
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        perturb::point(perturb::tags::POOL_DEQUEUE);
        run_job(job, &latch);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = lock_ignore_poison(&self.queue.jobs);
            state.shutdown = true;
        }
        // Workers drain remaining jobs (pop_front wins over shutdown),
        // then exit once the queue is empty.
        self.queue.ready.notify_all();
        for w in lock_ignore_poison(&self.workers).drain(..) {
            let _ = w.join();
        }
        // Injected worker death can leave jobs queued with no worker to
        // run them; finish those inline so Drop keeps its drain contract.
        loop {
            let entry = lock_ignore_poison(&self.queue.jobs).jobs.pop_front();
            match entry {
                Some((job, latch)) => run_job(job, &latch),
                None => break,
            }
        }
    }
}

/// The host's available hardware parallelism (>= 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs a set of borrowing jobs, executing the first on the calling thread
/// and the rest on scoped threads.
///
/// This is the kernels' dispatch primitive and the workspace's only
/// `std::thread::scope` call site (rule `no-adhoc-scope`). The cost model
/// the kernels rely on:
///
/// - `jobs.len() <= 1` → the job runs inline; **zero** thread machinery.
/// - `jobs.len() == k` → `k − 1` scoped spawns; the caller runs job 0
///   while the scope runs the rest, so no core idles waiting.
///
/// Panic semantics are `std::thread::scope`'s own: a panic in any job —
/// spawned or caller-run — propagates out of this call after every job
/// has been joined.
pub fn run_scoped<F>(jobs: Vec<F>)
where
    F: FnOnce() + Send,
{
    let mut jobs = jobs;
    if jobs.len() <= 1 {
        if let Some(job) = jobs.pop() {
            job();
        }
        return;
    }
    let dispatch = tracehook::span(tracehook::names::POOL_DISPATCH, tracehook::cats::POOL);
    dispatch.annotate("jobs", jobs.len() as u64);
    let rest = jobs.split_off(1);
    let Some(first) = jobs.pop() else {
        return;
    };
    // Join handles explicitly: an implicit scope-exit join replaces a
    // spawned job's panic payload with a generic "a scoped thread
    // panicked" message, and callers (and the panic-propagation tests)
    // want the original payload.
    let spawned_panic = std::thread::scope(|s| {
        let handles: Vec<_> = rest
            .into_iter()
            .map(|job| {
                s.spawn(move || {
                    perturb::point(perturb::tags::SCOPED_JOB);
                    let _job = tracehook::span(tracehook::names::POOL_JOB, tracehook::cats::POOL);
                    job();
                })
            })
            .collect();
        perturb::point(perturb::tags::SCOPED_CALLER);
        {
            let _job = tracehook::span(tracehook::names::POOL_JOB, tracehook::cats::POOL);
            first();
        }
        handles.into_iter().filter_map(|h| h.join().err()).next()
    });
    if let Some(payload) = spawned_panic {
        std::panic::resume_unwind(payload);
    }
}

/// Splits `range` into at most `threads` contiguous chunks and runs `f` on
/// each chunk via [`run_scoped`]. Chunks smaller than `min_chunk` are
/// merged so tiny ranges do not pay dispatch for no useful work; one
/// resulting chunk means `f` runs inline on the caller with no thread
/// machinery (see [`effective_workers`] for the kernels' work-based way to
/// choose `threads`).
///
/// `f` receives the sub-range it owns; every index is covered exactly once.
pub fn parallel_for<F>(threads: usize, range: Range<usize>, min_chunk: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return;
    }
    let min_chunk = min_chunk.max(1);
    let max_chunks = len.div_ceil(min_chunk);
    let chunks = threads.max(1).min(max_chunks);
    if chunks <= 1 {
        f(range);
        return;
    }
    let chunk = len / chunks;
    let rem = len % chunks;
    let f = &f;
    let mut start = range.start;
    let jobs: Vec<_> = (0..chunks)
        .map(|c| {
            // distribute the remainder one element at a time over leading chunks
            let this = chunk + usize::from(c < rem);
            let sub = start..start + this;
            start += this;
            move || {
                perturb::point(perturb::tags::PARALLEL_FOR_CHUNK);
                f(sub)
            }
        })
        .collect();
    run_scoped(jobs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let mut batch = pool.batch();
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            batch.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        batch.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn pool_wait_on_empty_batch_is_immediate() {
        let pool = ThreadPool::new(2);
        pool.batch().wait(); // must not deadlock
    }

    #[test]
    fn pool_reusable_across_batches() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for round in 1..=3 {
            let mut batch = pool.batch();
            for _ in 0..10 {
                let c = Arc::clone(&counter);
                batch.submit(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            batch.wait();
            assert_eq!(counter.load(Ordering::Relaxed), round * 10);
        }
    }

    #[test]
    fn pool_at_least_one_thread() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let mut batch = pool.batch();
        batch.submit(move || {
            d.store(1, Ordering::Relaxed);
        });
        batch.wait();
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_drop_drains_outstanding_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..50 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            // No wait: Drop must still run every submitted job.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn panicking_job_propagates_at_the_batch_barrier() {
        let pool = ThreadPool::new(2);
        let mut batch = pool.batch();
        batch.submit(|| panic!("job failure"));
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| batch.wait()))
            .expect_err("wait() must re-throw the job's panic");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .expect("panic payload preserved");
        assert_eq!(msg, "job failure");
        // …and the pool survives for the next batch.
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let mut batch = pool.batch();
        batch.submit(move || {
            d.store(1, Ordering::Relaxed);
        });
        batch.wait();
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panic_does_not_leak_across_batches() {
        let pool = ThreadPool::new(2);
        let mut bad = pool.batch();
        bad.submit(|| panic!("isolated"));
        let mut good = pool.batch();
        good.submit(|| {});
        good.wait(); // clean batch: must not observe the other's panic
        assert!(std::panic::catch_unwind(AssertUnwindSafe(|| bad.wait())).is_err());
    }

    #[test]
    fn nested_dispatch_runs_inline() {
        // A single-worker pool: if a job's own submission were queued and
        // waited on, the lone worker would deadlock on itself.
        let pool = Arc::new(ThreadPool::new(1));
        let p = Arc::clone(&pool);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let mut outer = pool.batch();
        outer.submit(move || {
            let mut inner = p.batch();
            let d2 = Arc::clone(&d);
            inner.submit(move || {
                d2.fetch_add(1, Ordering::Relaxed);
            });
            inner.wait();
            d.fetch_add(1, Ordering::Relaxed);
        });
        outer.wait();
        assert_eq!(done.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn concurrent_batches_wait_only_for_their_own_jobs() {
        // Batch A holds a slow job; batch B must complete without waiting
        // for it. Verified by ordering: B's wait returns while A's job
        // still holds the gate open.
        let pool = ThreadPool::new(2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let mut a = pool.batch();
        a.submit(move || {
            let (lock, cv) = &*g;
            let mut open = lock_ignore_poison(lock);
            while !*open {
                open = cv.wait(open).unwrap_or_else(|p| p.into_inner());
            }
        });
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let mut b = pool.batch();
        b.submit(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        b.wait(); // would deadlock if latches were shared pool-wide
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        let (lock, cv) = &*gate;
        *lock_ignore_poison(lock) = true;
        cv.notify_all();
        a.wait();
    }

    #[test]
    fn run_scoped_executes_every_job() {
        let hits: Vec<AtomicUsize> = (0..9).map(|_| AtomicUsize::new(0)).collect();
        let jobs: Vec<_> = (0..9)
            .map(|i| {
                let hits = &hits;
                move || {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            })
            .collect();
        run_scoped(jobs);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_scoped_single_job_runs_on_the_caller() {
        let caller = std::thread::current().id();
        let seen = Mutex::new(None);
        run_scoped(vec![|| {
            *lock_ignore_poison(&seen) = Some(std::thread::current().id());
        }]);
        assert_eq!(*lock_ignore_poison(&seen), Some(caller));
    }

    #[test]
    fn run_scoped_empty_is_a_no_op() {
        run_scoped(Vec::<fn()>::new());
    }

    #[test]
    fn run_scoped_propagates_spawned_panic() {
        let jobs: Vec<Box<dyn FnOnce() + Send>> =
            vec![Box::new(|| {}), Box::new(|| panic!("scoped failure"))];
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| run_scoped(jobs)))
            .expect_err("panic must cross the scope barrier");
        assert_eq!(err.downcast_ref::<&str>().copied(), Some("scoped failure"));
    }

    #[test]
    fn effective_workers_crossover() {
        // far below the bound: inline
        assert_eq!(
            effective_workers(4, MIN_FLOPS_PER_THREAD - 1, MIN_FLOPS_PER_THREAD),
            1
        );
        // exactly one worker's worth: still inline (no second worker earned)
        assert_eq!(
            effective_workers(4, MIN_FLOPS_PER_THREAD, MIN_FLOPS_PER_THREAD),
            1
        );
        // two workers' worth: split two ways
        assert_eq!(
            effective_workers(4, 2 * MIN_FLOPS_PER_THREAD, MIN_FLOPS_PER_THREAD),
            2
        );
        // plenty of work: capped by the requested thread count
        assert_eq!(effective_workers(4, usize::MAX, MIN_FLOPS_PER_THREAD), 4);
        // degenerate inputs stay sane
        assert_eq!(effective_workers(0, 0, 0), 1);
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        let n = 1013;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(7, 0..n, 1, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_respects_min_chunk() {
        // 10 elements with min_chunk 8 => at most 2 chunks
        let chunks = AtomicUsize::new(0);
        parallel_for(16, 0..10, 8, |_r| {
            chunks.fetch_add(1, Ordering::Relaxed);
        });
        assert!(chunks.load(Ordering::Relaxed) <= 2);
    }

    #[test]
    fn parallel_for_empty_range() {
        parallel_for(4, 5..5, 1, |_r| panic!("must not be called"));
    }

    #[test]
    fn parallel_for_offset_range() {
        let sum = AtomicUsize::new(0);
        parallel_for(3, 10..20, 1, |r| {
            for i in r {
                sum.fetch_add(i, Ordering::Relaxed);
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), (10..20).sum::<usize>());
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
