//! Dispatch hooks: how kernel executions report realized times *up* to
//! the online dispatch plane.
//!
//! The `blob-dispatch` crate keeps a per-call-site history of realized
//! kernel times and blends them with the static model prior when routing
//! calls. `blob-blas` sits below it in the dependency graph, so — exactly
//! like [`crate::faultpoint`] and [`crate::tracehook`] — this module
//! inverts the dependency: the public `gemm`/`gemv` entry points call
//! [`observe`] around their execution, and the dispatch layer installs an
//! observer closure that feeds those `(shape, seconds)` samples into its
//! online estimator.
//!
//! With no observer armed, [`observe`] is a single relaxed atomic load
//! and the returned guard's `Drop` is a branch on a local `Option` — no
//! clock is read. When armed, each completed kernel costs two `Instant`
//! reads plus one mutex-protected observer call.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Which kernel family produced a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservedKind {
    /// Matrix–matrix multiply.
    Gemm,
    /// Matrix–vector multiply.
    Gemv,
}

/// One realized kernel execution, as reported to the observer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Kernel family.
    pub kind: ObservedKind,
    /// Rows of the output.
    pub m: usize,
    /// Columns of the output (GEMV: columns of `A`).
    pub n: usize,
    /// Contraction dimension (1 for GEMV).
    pub k: usize,
    /// Element size in bytes (4 for `f32`, 8 for `f64`).
    pub elem_bytes: usize,
    /// Wall-clock seconds the kernel took.
    pub seconds: f64,
}

/// The closure the dispatch layer installs to receive samples.
pub type Observer = Box<dyn Fn(Sample) + Send + Sync>;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static OBSERVER: Mutex<Option<Observer>> = Mutex::new(None);

/// Installs (or replaces) the process-global observer. Only consulted
/// while [`set_active`]`(true)` is in effect.
pub fn set_observer(observer: impl Fn(Sample) + Send + Sync + 'static) {
    *OBSERVER.lock().unwrap_or_else(PoisonError::into_inner) = Some(Box::new(observer));
}

/// Arms or disarms the observation points. Disarmed (the default),
/// [`observe`] costs one relaxed atomic load and reads no clock.
pub fn set_active(on: bool) {
    ACTIVE.store(on, Ordering::Release);
}

/// Whether kernel executions are currently being observed.
pub fn active() -> bool {
    // relaxed: advisory gate read; the observer itself is lock-protected
    ACTIVE.load(Ordering::Relaxed)
}

/// RAII guard returned by [`observe`]: reports the elapsed time to the
/// observer when dropped (inert when observation is disarmed).
#[must_use = "the sample is reported when the guard drops; binding it to _ reports immediately"]
pub struct ObserveGuard {
    sample: Option<(ObservedKind, usize, usize, usize, usize, Instant)>,
}

impl Drop for ObserveGuard {
    fn drop(&mut self) {
        if let Some((kind, m, n, k, elem_bytes, start)) = self.sample.take() {
            report(Sample {
                kind,
                m,
                n,
                k,
                elem_bytes,
                seconds: start.elapsed().as_secs_f64(),
            });
        }
    }
}

/// Opens an observation window over one kernel execution. The fast path
/// — observation disarmed — is a single relaxed atomic load.
#[inline]
pub fn observe(
    kind: ObservedKind,
    m: usize,
    n: usize,
    k: usize,
    elem_bytes: usize,
) -> ObserveGuard {
    // relaxed: a stale read drops or adds one sample around arm/disarm —
    // the estimator is statistical and tolerates either
    if !ACTIVE.load(Ordering::Relaxed) {
        return ObserveGuard { sample: None };
    }
    ObserveGuard {
        sample: Some((kind, m, n, k, elem_bytes, Instant::now())),
    }
}

#[cold]
fn report(sample: Sample) {
    let guard = OBSERVER.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(observer) = guard.as_ref() {
        observer(sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perturb::STRESS_LOCK;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn disarmed_observe_reports_nothing() {
        let _guard = STRESS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        set_observer(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        set_active(false);
        drop(observe(ObservedKind::Gemm, 8, 8, 8, 4));
        assert_eq!(hits.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn armed_observe_reports_shape_and_time() {
        let _guard = STRESS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let seen: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
        let s = seen.clone();
        set_observer(move |sample| {
            s.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(sample);
        });
        set_active(true);
        drop(observe(ObservedKind::Gemv, 64, 32, 1, 8));
        set_active(false);
        let samples = seen.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(samples.len(), 1);
        let s = samples[0];
        assert_eq!(
            (s.kind, s.m, s.n, s.k, s.elem_bytes),
            (ObservedKind::Gemv, 64, 32, 1, 8)
        );
        assert!(s.seconds >= 0.0);
    }

    #[test]
    fn real_gemm_execution_flows_into_the_observer() {
        let _guard = STRESS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let seen: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
        let s = seen.clone();
        set_observer(move |sample| {
            s.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(sample);
        });
        set_active(true);
        let a = vec![1.0f32; 16 * 16];
        let b = vec![1.0f32; 16 * 16];
        let mut c = vec![0.0f32; 16 * 16];
        crate::gemm::gemm(16, 16, 16, 1.0, &a, 16, &b, 16, 0.0, &mut c, 16)
            .expect("valid gemm call");
        set_active(false);
        let samples = seen.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(samples.len(), 1, "one gemm call, one sample");
        let s = samples[0];
        assert_eq!((s.kind, s.m, s.n, s.k), (ObservedKind::Gemm, 16, 16, 16));
        assert_eq!(s.elem_bytes, 4);
        assert!(s.seconds > 0.0);
    }
}
