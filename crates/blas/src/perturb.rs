//! Seeded schedule perturbation for concurrency stress tests.
//!
//! The container this repo builds in cannot fetch `loom`, so the parallel
//! kernels are stress-tested the old-fashioned way: interleaving-sensitive
//! code paths call [`point`] at the places where a context switch would be
//! most damaging (just after dequeuing a job, before touching a shared
//! counter, …).  In normal builds [`point`] is a single relaxed atomic load
//! and a branch — effectively free.  A stress test calls [`enable`] with a
//! seed, after which each [`point`] deterministically derives a scheduling
//! nudge (nothing, `yield_now`, a bounded spin, or a microsecond sleep)
//! from the seed, a per-call counter and the call-site tag.  Different
//! seeds explore different interleavings; the same seed explores the same
//! *decision sequence* (the OS still owns true thread placement, so this is
//! perturbation, not replay).
//!
//! State is process-global because the pool's worker threads are detached
//! from any test-local context; tests that enable perturbation must hold
//! [`STRESS_LOCK`] so parallel test binaries do not fight over it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Guards global perturbation state across tests in one binary.  Tests that
/// call [`enable`] must hold this for their whole body.
pub static STRESS_LOCK: Mutex<()> = Mutex::new(());

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEED: AtomicU64 = AtomicU64::new(0);
static COUNTER: AtomicU64 = AtomicU64::new(0);

/// Turn on perturbation with a seed. Call [`disable`] when done.
pub fn enable(seed: u64) {
    SEED.store(seed, Ordering::Relaxed);
    COUNTER.store(0, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Release);
}

/// Turn perturbation back off (normal builds: every [`point`] is a no-op).
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// SplitMix64 finaliser — decorrelates consecutive counter values.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A perturbation point. Insert where a badly-timed context switch would
/// expose a race; no-op unless [`enable`]d.
#[inline]
pub fn point(tag: u32) {
    if !ENABLED.load(Ordering::Acquire) {
        return;
    }
    slow_point(tag);
}

#[cold]
fn slow_point(tag: u32) {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let seed = SEED.load(Ordering::Relaxed);
    let r = mix(seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(tag) << 32);
    match r % 8 {
        // Mostly do nothing: perturbation should be sparse enough that
        // threads still make progress and overlap.
        0..=3 => {}
        4 | 5 => std::thread::yield_now(),
        6 => {
            // Bounded spin: keeps the thread hot on its core, shifting
            // relative timing without a syscall.
            for _ in 0..(r >> 3) % 512 {
                std::hint::spin_loop();
            }
        }
        _ => std::thread::sleep(std::time::Duration::from_micros((r >> 3) % 50)),
    }
}

/// Call-site tags, so failures can be attributed to a specific point.
pub mod tags {
    /// Worker dequeued a job, about to run it.
    pub const POOL_DEQUEUE: u32 = 1;
    /// Worker finished a job, about to decrement the pending count.
    pub const POOL_DONE: u32 = 2;
    /// Caller submitted a job.
    pub const POOL_SUBMIT: u32 = 3;
    /// Scoped parallel-for chunk about to start.
    pub const PARALLEL_FOR_CHUNK: u32 = 4;
    /// Parallel GEMM column-panel worker about to start.
    pub const GEMM_PANEL: u32 = 5;
    /// Parallel GEMV row-chunk worker about to start.
    pub const GEMV_CHUNK: u32 = 6;
    /// Scoped-dispatch job about to run on a spawned thread.
    pub const SCOPED_JOB: u32 = 7;
    /// Scoped-dispatch caller about to run its own (first) job.
    pub const SCOPED_CALLER: u32 = 8;
    /// Batch waiter about to block on the completion latch.
    pub const BATCH_WAIT: u32 = 9;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_point_is_a_no_op() {
        let _guard = STRESS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disable();
        let before = COUNTER.load(Ordering::Relaxed);
        for _ in 0..1000 {
            point(tags::POOL_DEQUEUE);
        }
        assert_eq!(COUNTER.load(Ordering::Relaxed), before);
    }

    #[test]
    fn enabled_point_consumes_counter() {
        let _guard = STRESS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        enable(42);
        for _ in 0..32 {
            point(tags::POOL_SUBMIT);
        }
        let used = COUNTER.load(Ordering::Relaxed);
        disable();
        assert!(used >= 32);
    }
}
