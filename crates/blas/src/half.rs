//! Software BF16 — the half-precision support the paper lists as future
//! work (§V): "given their prevalence in AI and mixed-precision
//! computations, we are also looking to support half-precision kernels;
//! FP16 and Bfloat16".
//!
//! The paper notes the practical blocker in C: oneMKL's `MKL_F16` is an
//! opaque `unsigned short` with no conversion helpers. This module removes
//! that blocker for the Rust kernels: [`Bf16`] is a bfloat16 (1 sign, 8
//! exponent, 7 mantissa bits — f32's upper half) with round-to-nearest-even
//! conversions, arithmetic evaluated in f32 and rounded back per operation
//! (the semantics of scalar BF16 units), and a full [`Scalar`]
//! implementation — so every kernel in this crate (`gemm`, `gemv`,
//! `level1`, `batched`, `sparse`) works at half precision unchanged.

use crate::scalar::Scalar;

/// A bfloat16 value: the upper 16 bits of an IEEE-754 `f32`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Machine epsilon: 2⁻⁷ (7 mantissa bits).
    pub const EPSILON: Bf16 = Bf16(0x3C00);

    /// Converts from `f32` with round-to-nearest-even.
    pub fn from_f32(v: f32) -> Self {
        let bits = v.to_bits();
        if v.is_nan() {
            // quiet NaN, preserve sign
            return Bf16(((bits >> 16) | 0x0040) as u16);
        }
        // round to nearest even on the truncated 16 bits
        let round_bit = 0x0000_8000u32;
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x0000_7FFF + lsb);
        let _ = round_bit;
        Bf16((rounded >> 16) as u16)
    }

    /// Widens to `f32` exactly (every bf16 is representable).
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// The raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Constructs from a raw bit pattern.
    pub fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }
}

impl std::fmt::Display for Bf16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl PartialOrd for Bf16 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

macro_rules! bf16_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl std::ops::$trait for Bf16 {
            type Output = Bf16;
            fn $method(self, rhs: Bf16) -> Bf16 {
                Bf16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
    };
}
bf16_binop!(Add, add, +);
bf16_binop!(Sub, sub, -);
bf16_binop!(Mul, mul, *);
bf16_binop!(Div, div, /);

macro_rules! bf16_assign {
    ($trait:ident, $method:ident, $op:tt) => {
        impl std::ops::$trait for Bf16 {
            fn $method(&mut self, rhs: Bf16) {
                *self = Bf16::from_f32(self.to_f32() $op rhs.to_f32());
            }
        }
    };
}
bf16_assign!(AddAssign, add_assign, +);
bf16_assign!(SubAssign, sub_assign, -);
bf16_assign!(MulAssign, mul_assign, *);
bf16_assign!(DivAssign, div_assign, /);

impl std::ops::Neg for Bf16 {
    type Output = Bf16;
    fn neg(self) -> Bf16 {
        Bf16(self.0 ^ 0x8000)
    }
}

impl std::iter::Sum for Bf16 {
    fn sum<I: Iterator<Item = Bf16>>(iter: I) -> Bf16 {
        // accumulate in f32 (what real BF16 hardware's FMA units do)
        Bf16::from_f32(iter.map(Bf16::to_f32).sum())
    }
}

impl Scalar for Bf16 {
    const ZERO: Self = Bf16::ZERO;
    const ONE: Self = Bf16::ONE;
    const EPSILON: Self = Bf16::EPSILON;
    const PREFIX: char = 'b';
    const BYTES: usize = 2;

    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        // fused in f32, rounded once — matrix-engine BF16 semantics
        Bf16::from_f32(self.to_f32().mul_add(a.to_f32(), b.to_f32()))
    }
    #[inline]
    fn abs(self) -> Self {
        Bf16(self.0 & 0x7FFF)
    }
    #[inline]
    fn sqrt(self) -> Self {
        Bf16::from_f32(self.to_f32().sqrt())
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        Bf16::from_f32(v as f32)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }
    #[inline]
    fn is_finite(self) -> bool {
        self.to_f32().is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gemm_blocked, gemm_ref, gemv_ref};

    #[test]
    fn exact_small_integers_round_trip() {
        for v in [0.0f32, 1.0, -1.0, 2.0, 0.5, -0.25, 128.0, 256.0] {
            assert_eq!(Bf16::from_f32(v).to_f32(), v, "{v}");
        }
    }

    #[test]
    fn constants() {
        assert_eq!(Bf16::ZERO.to_f32(), 0.0);
        assert_eq!(Bf16::ONE.to_f32(), 1.0);
        assert_eq!(Bf16::EPSILON.to_f32(), 0.0078125); // 2^-7
        assert_eq!(<Bf16 as Scalar>::BYTES, 2);
        assert_eq!(<Bf16 as Scalar>::PREFIX, 'b');
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-8 is exactly halfway between 1.0 and 1.0078125 in bf16:
        // rounds to even mantissa -> 1.0
        let halfway = 1.0 + 0.00390625;
        assert_eq!(Bf16::from_f32(halfway).to_f32(), 1.0);
        // slightly above halfway rounds up
        assert_eq!(Bf16::from_f32(halfway + 1e-4).to_f32(), 1.0078125);
    }

    #[test]
    fn rel_error_bounded_by_epsilon() {
        let mut x = 0.9991f32;
        for _ in 0..200 {
            let b = Bf16::from_f32(x).to_f32();
            assert!(((b - x) / x).abs() <= 0.00390625 + 1e-7, "{x} -> {b}");
            x *= 1.0371;
        }
    }

    #[test]
    fn arithmetic_and_neg() {
        let a = Bf16::from_f32(3.0);
        let b = Bf16::from_f32(2.0);
        assert_eq!((a + b).to_f32(), 5.0);
        assert_eq!((a - b).to_f32(), 1.0);
        assert_eq!((a * b).to_f32(), 6.0);
        assert_eq!((a / b).to_f32(), 1.5);
        assert_eq!((-a).to_f32(), -3.0);
        assert_eq!(Scalar::mul_add(a, b, b).to_f32(), 8.0);
        assert_eq!(Scalar::abs(Bf16::from_f32(-7.5)).to_f32(), 7.5);
        assert_eq!(Scalar::sqrt(Bf16::from_f32(4.0)).to_f32(), 2.0);
    }

    #[test]
    fn nan_and_infinity() {
        assert!(!Scalar::is_finite(Bf16::from_f32(f32::NAN)));
        assert!(!Scalar::is_finite(Bf16::from_f32(f32::INFINITY)));
        assert!(Scalar::is_finite(Bf16::from_f32(1.0)));
        // NaN conversion must not produce infinity
        assert!(Bf16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn bgemm_matches_f64_reference_coarsely() {
        // the whole point: the generic kernels run at bf16 unchanged
        let (m, n, k) = (24, 20, 16);
        let af: Vec<f64> = (0..m * k).map(|i| ((i % 13) as f64 - 6.0) / 8.0).collect();
        let bf: Vec<f64> = (0..k * n).map(|i| ((i % 7) as f64 - 3.0) / 4.0).collect();
        let ab: Vec<Bf16> = af.iter().map(|&v| Bf16::from_f64(v)).collect();
        let bb: Vec<Bf16> = bf.iter().map(|&v| Bf16::from_f64(v)).collect();
        let mut c64 = vec![0.0f64; m * n];
        gemm_ref(m, n, k, 1.0, &af, m, &bf, k, 0.0, &mut c64, m).unwrap();
        let mut cb = vec![Bf16::ZERO; m * n];
        gemm_blocked(m, n, k, Bf16::ONE, &ab, m, &bb, k, Bf16::ZERO, &mut cb, m).unwrap();
        for i in 0..m * n {
            let got = cb[i].to_f64();
            let want = c64[i];
            // k=16 accumulation at 2^-7 precision: generous tolerance
            assert!(
                (got - want).abs() <= 0.06 * want.abs().max(1.0),
                "i={i}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn bgemv_runs_generically() {
        let (m, n) = (16, 12);
        let a: Vec<Bf16> = (0..m * n)
            .map(|i| Bf16::from_f64(((i % 5) as f64 - 2.0) / 4.0))
            .collect();
        let x: Vec<Bf16> = (0..n)
            .map(|i| Bf16::from_f64((i % 3) as f64 / 2.0))
            .collect();
        let mut y = vec![Bf16::ZERO; m];
        gemv_ref(m, n, Bf16::ONE, &a, m, &x, 1, Bf16::ZERO, &mut y, 1).unwrap();
        assert!(y.iter().all(|v| Scalar::is_finite(*v)));
        // at least one non-zero output for non-trivial inputs
        assert!(y.iter().any(|v| v.to_f32() != 0.0));
    }

    #[test]
    fn sum_accumulates_in_f32() {
        // 256 * 0.0078125 = 2.0 exactly; naive bf16 accumulation would
        // stall once the running sum dwarfs the addend
        let parts = vec![Bf16::from_f32(0.0078125); 256];
        let s: Bf16 = parts.into_iter().sum();
        assert_eq!(s.to_f32(), 2.0);
    }
}
