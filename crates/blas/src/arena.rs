//! Thread-local packing-buffer arenas for the blocked GEMM.
//!
//! The Goto algorithm packs an `MC × KC` block of `A` and a `KC × NC`
//! panel of `B` before every macro-kernel pass. Allocating those `Vec`s
//! per call costs a page-faulting heap round-trip on exactly the small
//! problems whose latency defines the offload threshold (§IV of the
//! paper), so this module keeps one pair of packing buffers per thread
//! and per scalar type and lends them out for the duration of a call:
//! steady-state GEMM performs **zero** heap allocation.
//!
//! Design notes:
//!
//! - Buffers are *taken out* of the thread-local slot for the duration of
//!   the closure and put back afterwards, so a nested blocked GEMM on the
//!   same thread (there are none today, but nothing prevents one) simply
//!   finds the slot empty and allocates fresh — graceful degradation, not
//!   a `RefCell` borrow panic.
//! - The slot is keyed by `TypeId`, so `f32`, `f64` and [`Bf16`]
//!   (`crate::half::Bf16`) each reuse their own buffers.
//! - A panicking kernel loses the taken buffers (they die with the
//!   unwind); the next call re-allocates. No state is corrupted.
//! - Retained capacity is bounded by [`MAX_RETAINED_BYTES`] per buffer:
//!   an ablation sweep with an oversized `BlockConfig` will not pin
//!   arbitrarily large buffers on the thread forever.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;

/// Largest per-buffer capacity the arena keeps alive between calls, in
/// bytes. The default blocking needs `KC × NC` f64 elements = 4 MiB for
/// the packed `B` panel; 8 MiB leaves headroom for moderately larger
/// experimental configurations while bounding worst-case retention.
pub const MAX_RETAINED_BYTES: usize = 8 << 20;

thread_local! {
    /// Per-thread, per-scalar-type `(packed_a, packed_b)` buffer pairs.
    static PACK_BUFFERS: RefCell<HashMap<TypeId, Box<dyn Any>>> =
        RefCell::new(HashMap::new());
}

/// Takes this thread's packing buffers for `T` (empty `Vec`s on first use
/// or while another call on this thread holds them).
fn take<T: 'static>() -> (Vec<T>, Vec<T>) {
    PACK_BUFFERS.with(|cell| {
        let Ok(mut map) = cell.try_borrow_mut() else {
            return (Vec::new(), Vec::new());
        };
        match map
            .get_mut(&TypeId::of::<T>())
            .and_then(|b| b.downcast_mut::<(Vec<T>, Vec<T>)>().map(std::mem::take))
        {
            Some(pair) => pair,
            None => (Vec::new(), Vec::new()),
        }
    })
}

/// Returns the buffers to this thread's slot so the next call reuses
/// their capacity. Oversized buffers are dropped instead of retained.
fn restore<T: 'static>(mut pa: Vec<T>, mut pb: Vec<T>) {
    let cap_bytes = |v: &Vec<T>| v.capacity().saturating_mul(std::mem::size_of::<T>());
    if cap_bytes(&pa) > MAX_RETAINED_BYTES {
        pa = Vec::new();
    }
    if cap_bytes(&pb) > MAX_RETAINED_BYTES {
        pb = Vec::new();
    }
    PACK_BUFFERS.with(|cell| {
        let Ok(mut map) = cell.try_borrow_mut() else {
            return; // nested caller still owns the slot; drop ours
        };
        map.insert(TypeId::of::<T>(), Box::new((pa, pb)));
    });
}

/// Lends this thread's reusable `(packed_a, packed_b)` buffers to `f`.
///
/// The buffers arrive with whatever capacity earlier calls grew them to
/// (contents unspecified — packing truncates and refills them), and their
/// capacity is retained for the next call on this thread. The blocked
/// GEMM's steady state therefore allocates nothing.
pub fn with_pack_buffers<T: 'static, R>(f: impl FnOnce(&mut Vec<T>, &mut Vec<T>) -> R) -> R {
    let (mut pa, mut pb) = take::<T>();
    let out = f(&mut pa, &mut pb);
    restore(pa, pb);
    out
}

/// Drops this thread's retained buffers for every scalar type (test and
/// memory-hygiene hook; kernels never need to call it).
pub fn clear() {
    PACK_BUFFERS.with(|cell| {
        if let Ok(mut map) = cell.try_borrow_mut() {
            map.clear();
        }
    });
}

/// Capacity (in elements) of this thread's retained buffers for `T`:
/// `(packed_a, packed_b)`, both 0 when nothing is retained. Lets tests
/// assert reuse without poking at allocator internals.
pub fn retained_capacity<T: 'static>() -> (usize, usize) {
    PACK_BUFFERS.with(|cell| {
        let Ok(mut map) = cell.try_borrow_mut() else {
            return (0, 0);
        };
        map.get_mut(&TypeId::of::<T>())
            .and_then(|b| b.downcast_ref::<(Vec<T>, Vec<T>)>())
            .map(|(a, b)| (a.capacity(), b.capacity()))
            .unwrap_or((0, 0))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_reused_across_calls() {
        clear();
        with_pack_buffers::<f64, _>(|pa, pb| {
            pa.resize(1024, 0.0);
            pb.resize(2048, 0.0);
        });
        let (ca, cb) = retained_capacity::<f64>();
        assert!(ca >= 1024 && cb >= 2048, "capacity retained: {ca}, {cb}");
        // second call sees the same capacity and grows nothing
        with_pack_buffers::<f64, _>(|pa, pb| {
            assert!(pa.capacity() >= 1024);
            assert!(pb.capacity() >= 2048);
        });
        assert_eq!(retained_capacity::<f64>(), (ca, cb));
        clear();
        assert_eq!(retained_capacity::<f64>(), (0, 0));
    }

    #[test]
    fn scalar_types_get_distinct_buffers() {
        clear();
        with_pack_buffers::<f64, _>(|pa, _| pa.resize(64, 0.0));
        with_pack_buffers::<f32, _>(|pa, _| pa.resize(32, 0.0));
        assert!(retained_capacity::<f64>().0 >= 64);
        assert!(retained_capacity::<f32>().0 >= 32);
        clear();
    }

    #[test]
    fn nested_use_degrades_to_fresh_buffers() {
        clear();
        with_pack_buffers::<f64, _>(|outer_a, _| {
            outer_a.resize(128, 1.0);
            // the outer call owns the slot; the nested call must get
            // fresh, independent buffers
            with_pack_buffers::<f64, _>(|inner_a, _| {
                assert!(inner_a.is_empty());
                inner_a.resize(16, 2.0);
            });
            assert_eq!(outer_a.len(), 128);
            assert!(outer_a.iter().all(|&v| (v - 1.0).abs() < 1e-15));
        });
        clear();
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        clear();
        let too_big = MAX_RETAINED_BYTES / std::mem::size_of::<f64>() + 1;
        with_pack_buffers::<f64, _>(|pa, _| pa.reserve(too_big));
        assert_eq!(retained_capacity::<f64>().0, 0);
        clear();
    }
}
