//! Transposed-operand entry points: `gemm_ex` and `gemv_ex`.
//!
//! The paper's artifact fixes all operands to non-transposed column-major
//! (§III-A), but a BLAS a downstream user adopts needs the `op(A)` forms.
//! `op(X)` is selected by [`Trans`]; the blocked GEMM handles transposition
//! inside the packing step (the packed panel layout is identical either
//! way, so the micro-kernel is untouched — the standard BLIS approach).
//!
//! Both entry points validate through [`contract`](crate::contract) (on the
//! *stored* shapes) before touching any buffer and return a typed
//! [`ContractError`] on violation.

use crate::contract::{self, vec_index, ContractError};
use crate::microkernel::{MR, NR};
use crate::pack::{pack_a, pack_b};
use crate::scalar::Scalar;

/// Whether an operand is used as stored or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// `op(X) = X`.
    NoTrans,
    /// `op(X) = Xᵀ`.
    Trans,
}

/// Packs an `mc × kc` block of `op(A)` starting at logical offset
/// `(row0, col0)` of `op(A)`, where `A` is stored column-major with leading
/// dimension `lda`. For `Trans`, logical `(i, p)` reads `a[p + i·lda]`.
#[allow(clippy::too_many_arguments)]
fn pack_a_op<T: Scalar>(
    trans: Trans,
    mc: usize,
    kc: usize,
    a: &[T],
    lda: usize,
    row0: usize,
    col0: usize,
    alpha: T,
    buf: &mut Vec<T>,
) {
    match trans {
        Trans::NoTrans => {
            pack_a(mc, kc, &a[col0 * lda + row0..], lda, alpha, buf);
        }
        Trans::Trans => {
            // transposed gather: no contiguous sub-slice exists, pack
            // element-wise in the sliver layout pack_a produces
            let slivers = mc.div_ceil(MR);
            buf.clear();
            buf.reserve(slivers * MR * kc);
            for s in 0..slivers {
                let r0 = s * MR;
                let rows = MR.min(mc - r0);
                for p in 0..kc {
                    for i in 0..rows {
                        // logical op(A)[row0 + r0 + i, col0 + p] = A[col0 + p, row0 + r0 + i]
                        let v = a[(col0 + p) + (row0 + r0 + i) * lda];
                        buf.push(v * alpha);
                    }
                    buf.extend(std::iter::repeat_n(T::ZERO, MR - rows));
                }
            }
        }
    }
}

/// Packs a `kc × nc` panel of `op(B)` starting at logical `(row0, col0)`.
#[allow(clippy::too_many_arguments)]
fn pack_b_op<T: Scalar>(
    trans: Trans,
    kc: usize,
    nc: usize,
    b: &[T],
    ldb: usize,
    row0: usize,
    col0: usize,
    buf: &mut Vec<T>,
) {
    match trans {
        Trans::NoTrans => {
            pack_b(kc, nc, &b[col0 * ldb + row0..], ldb, buf);
        }
        Trans::Trans => {
            let slivers = nc.div_ceil(NR);
            buf.clear();
            buf.reserve(slivers * NR * kc);
            for s in 0..slivers {
                let c0 = s * NR;
                let cols = NR.min(nc - c0);
                for p in 0..kc {
                    for j in 0..cols {
                        // logical op(B)[row0 + p, col0 + c0 + j] = B[col0 + c0 + j, row0 + p]
                        buf.push(b[(col0 + c0 + j) + (row0 + p) * ldb]);
                    }
                    buf.extend(std::iter::repeat_n(T::ZERO, NR - cols));
                }
            }
        }
    }
}

fn op_dims(trans: Trans, rows: usize, cols: usize) -> (usize, usize) {
    match trans {
        Trans::NoTrans => (rows, cols),
        Trans::Trans => (cols, rows),
    }
}

/// GEMM with transposition: `C ← α·op(A)·op(B) + β·C` where `op(A)` is
/// `m × k` and `op(B)` is `k × n`. Leading dimensions refer to the
/// *stored* matrices: `A` is `m × k` for `NoTrans` (lda ≥ m) and `k × m`
/// for `Trans` (lda ≥ k); likewise for `B`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_ex<T: Scalar>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) -> Result<(), ContractError> {
    // stored shapes
    let (a_rows, a_cols) = op_dims(transa, m, k);
    let (b_rows, b_cols) = op_dims(transb, k, n);
    contract::check_matrix("a", a.len(), a_rows, a_cols, lda)?;
    contract::check_matrix("b", b.len(), b_rows, b_cols, ldb)?;
    contract::check_matrix("c", c.len(), m, n, ldc)?;
    if m == 0 || n == 0 {
        return Ok(());
    }
    // β / degenerate handling mirrors gemm_blocked
    if alpha == T::ZERO || k == 0 {
        for j in 0..n {
            let col = &mut c[j * ldc..j * ldc + m];
            if beta == T::ZERO {
                col.fill(T::ZERO);
            } else if beta != T::ONE {
                for v in col {
                    *v *= beta;
                }
            }
        }
        return Ok(());
    }

    use crate::gemm::{KC, MC, NC};
    let mut packed_a: Vec<T> = Vec::new();
    let mut packed_b: Vec<T> = Vec::new();
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let beta_eff = if pc == 0 { beta } else { T::ONE };
            pack_b_op(transb, kc, nc, b, ldb, pc, jc, &mut packed_b);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a_op(transa, mc, kc, a, lda, ic, pc, alpha, &mut packed_a);
                // macro kernel (same as gemm_blocked's)
                let m_slivers = mc.div_ceil(MR);
                let n_slivers = nc.div_ceil(NR);
                for js in 0..n_slivers {
                    let j0 = js * NR;
                    let nr_eff = NR.min(nc - j0);
                    let b_sl = &packed_b[js * kc * NR..(js + 1) * kc * NR];
                    for is in 0..m_slivers {
                        let i0 = is * MR;
                        let mr_eff = MR.min(mc - i0);
                        let a_sl = &packed_a[is * kc * MR..(is + 1) * kc * MR];
                        let mut acc = [T::ZERO; MR * NR];
                        crate::microkernel::ukernel(kc, a_sl, b_sl, &mut acc);
                        crate::microkernel::store_tile(
                            &acc,
                            &mut c[(ic + i0) + (jc + j0) * ldc..],
                            ldc,
                            mr_eff,
                            nr_eff,
                            beta_eff,
                        );
                    }
                }
            }
        }
    }
    Ok(())
}

/// GEMV with transposition: `y ← α·op(A)·x + β·y`, `A` stored `m × n`
/// column-major. `NoTrans`: `y` has `m` elements, `x` has `n`; `Trans`:
/// the reverse (`y = α·Aᵀx + βy` — a dot product per stored column, which
/// is the cache-friendly direction for column-major storage).
#[allow(clippy::too_many_arguments)]
pub fn gemv_ex<T: Scalar>(
    trans: Trans,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    x: &[T],
    incx: isize,
    beta: T,
    y: &mut [T],
    incy: isize,
) -> Result<(), ContractError> {
    match trans {
        Trans::NoTrans => crate::gemv::gemv_ref(m, n, alpha, a, lda, x, incx, beta, y, incy),
        Trans::Trans => {
            contract::check_matrix("a", a.len(), m, n, lda)?;
            contract::check_vector("x", x.len(), m, incx)?;
            contract::check_vector("y", y.len(), n, incy)?;
            for j in 0..n {
                let col = &a[j * lda..j * lda + m];
                let mut dot = T::ZERO;
                for i in 0..m {
                    dot = col[i].mul_add(x[vec_index(i, m, incx)], dot);
                }
                let yj = &mut y[vec_index(j, n, incy)];
                *yj = if beta == T::ZERO {
                    alpha * dot
                } else {
                    dot.mul_add(alpha, beta * *yj)
                };
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm_ref;
    use crate::matrix::Matrix;

    fn filled(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        Matrix::from_fn(rows, cols, |i, j| {
            let h = seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add((i * 6151 + j * 3079) as u64);
            ((h >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        })
    }

    fn transpose(m: &Matrix<f64>) -> Matrix<f64> {
        Matrix::from_fn(m.cols(), m.rows(), |i, j| m[(j, i)])
    }

    fn check_case(transa: Trans, transb: Trans, m: usize, n: usize, k: usize) {
        // stored shapes
        let a = match transa {
            Trans::NoTrans => filled(m, k, 1),
            Trans::Trans => filled(k, m, 1),
        };
        let b = match transb {
            Trans::NoTrans => filled(k, n, 2),
            Trans::Trans => filled(n, k, 2),
        };
        let c0 = filled(m, n, 3);

        let mut got = c0.clone();
        gemm_ex(
            transa,
            transb,
            m,
            n,
            k,
            1.5,
            a.as_slice(),
            a.ld(),
            b.as_slice(),
            b.ld(),
            0.5,
            got.as_mut_slice(),
            m,
        )
        .unwrap();

        // oracle: materialise op(A), op(B), run the reference kernel
        let a_eff = match transa {
            Trans::NoTrans => a.clone(),
            Trans::Trans => transpose(&a),
        };
        let b_eff = match transb {
            Trans::NoTrans => b.clone(),
            Trans::Trans => transpose(&b),
        };
        let mut want = c0.clone();
        gemm_ref(
            m,
            n,
            k,
            1.5,
            a_eff.as_slice(),
            a_eff.ld(),
            b_eff.as_slice(),
            b_eff.ld(),
            0.5,
            want.as_mut_slice(),
            m,
        )
        .unwrap();
        assert!(
            got.approx_eq(&want, 1e-10),
            "{transa:?}/{transb:?} m={m} n={n} k={k}: {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn all_four_transpose_combinations() {
        for (m, n, k) in [(5, 7, 9), (17, 13, 21), (33, 40, 8), (64, 64, 64)] {
            check_case(Trans::NoTrans, Trans::NoTrans, m, n, k);
            check_case(Trans::Trans, Trans::NoTrans, m, n, k);
            check_case(Trans::NoTrans, Trans::Trans, m, n, k);
            check_case(Trans::Trans, Trans::Trans, m, n, k);
        }
    }

    #[test]
    fn notrans_matches_plain_blocked() {
        let (m, n, k) = (40, 30, 50);
        let a = filled(m, k, 4);
        let b = filled(k, n, 5);
        let mut c1 = Matrix::<f64>::zeros(m, n);
        let mut c2 = Matrix::<f64>::zeros(m, n);
        gemm_ex(
            Trans::NoTrans,
            Trans::NoTrans,
            m,
            n,
            k,
            1.0,
            a.as_slice(),
            m,
            b.as_slice(),
            k,
            0.0,
            c1.as_mut_slice(),
            m,
        )
        .unwrap();
        crate::gemm_blocked(
            m,
            n,
            k,
            1.0,
            a.as_slice(),
            m,
            b.as_slice(),
            k,
            0.0,
            c2.as_mut_slice(),
            m,
        )
        .unwrap();
        assert!(c1.approx_eq(&c2, 1e-12));
    }

    #[test]
    fn gemm_ex_degenerate_cases() {
        // alpha = 0: pure beta scaling, regardless of trans flags
        let mut c = vec![2.0f64; 4];
        gemm_ex::<f64>(
            Trans::Trans,
            Trans::Trans,
            2,
            2,
            0,
            1.0,
            &[],
            1,
            &[],
            2,
            0.5,
            &mut c,
            2,
        )
        .unwrap();
        assert_eq!(c, vec![1.0; 4]);
    }

    #[test]
    fn gemv_trans_is_dot_per_column() {
        let (m, n) = (11, 6);
        let a = filled(m, n, 6);
        let x: Vec<f64> = (0..m).map(|i| (i as f64 * 0.3).sin()).collect();
        let y0: Vec<f64> = (0..n).map(|j| j as f64 * 0.1).collect();
        let mut y = y0.clone();
        gemv_ex(
            Trans::Trans,
            m,
            n,
            2.0,
            a.as_slice(),
            m,
            &x,
            1,
            0.5,
            &mut y,
            1,
        )
        .unwrap();
        for j in 0..n {
            let dot: f64 = (0..m).map(|i| a[(i, j)] * x[i]).sum();
            let want = 2.0 * dot + 0.5 * y0[j];
            assert!((y[j] - want).abs() < 1e-12, "j={j}");
        }
    }

    #[test]
    fn gemv_trans_beta_zero_ignores_garbage() {
        let (m, n) = (8, 5);
        let a = filled(m, n, 7);
        let x = vec![1.0; m];
        let mut y = vec![f64::NAN; n];
        gemv_ex(
            Trans::Trans,
            m,
            n,
            1.0,
            a.as_slice(),
            m,
            &x,
            1,
            0.0,
            &mut y,
            1,
        )
        .unwrap();
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gemv_notrans_delegates() {
        let (m, n) = (9, 4);
        let a = filled(m, n, 8);
        let x = vec![0.5; n];
        let mut y1 = vec![0.0; m];
        let mut y2 = vec![0.0; m];
        gemv_ex(
            Trans::NoTrans,
            m,
            n,
            1.0,
            a.as_slice(),
            m,
            &x,
            1,
            0.0,
            &mut y1,
            1,
        )
        .unwrap();
        crate::gemv_ref(m, n, 1.0, a.as_slice(), m, &x, 1, 0.0, &mut y2, 1).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn transposed_bounds_checked() {
        // op(A) is 4x3 but stored A (3x4) buffer is short
        let a = vec![0.0f64; 10];
        let b = vec![0.0f64; 12];
        let mut c = vec![0.0f64; 12];
        let err = gemm_ex(
            Trans::Trans,
            Trans::NoTrans,
            4,
            4,
            3,
            1.0,
            &a,
            3,
            &b,
            3,
            0.0,
            &mut c,
            4,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ContractError::BufferTooShort { arg: "a", .. }
        ));
    }
}
