//! GEMM: `C ← α·A·B + β·C` for column-major matrices, no transposition —
//! exactly the configuration GPU-BLOB benchmarks (`lda = M`, `ldb = K`,
//! `ldc = M`, §III-A of the paper).
//!
//! Three implementations, from simplest to fastest:
//! - [`gemm_ref`] — textbook triple loop in cache-friendly `j-l-i` order;
//!   the validation oracle.
//! - [`gemm_blocked`] — Goto/BLIS five-loop blocking around the packed
//!   micro-kernel; single-threaded.
//! - [`gemm_parallel`] — splits the `N` dimension across scoped threads,
//!   each running the blocked kernel on a disjoint column block of `C`
//!   (the standard outer-loop parallelisation production BLAS use).
//!
//! All paths implement the `β = 0` short-circuit (C is written, never read)
//! whose presence in production libraries the paper verifies in Table I, and
//! the `α = 0` short-circuit (`C ← β·C`, A/B never touched).
//!
//! Every entry point validates its arguments through
//! [`contract`](crate::contract) before touching any buffer and reports
//! violations as a typed [`ContractError`] instead of panicking.

use crate::contract::{self, ContractError};
use crate::dispatchhook;
use crate::microkernel::{store_tile, ukernel, MR, NR};
use crate::pack::{pack_a, pack_b};
use crate::perturb;
use crate::pool;
use crate::scalar::Scalar;
use crate::tracehook;

/// Cache-block height of an `A` block (rows per packed block).
pub const MC: usize = 128;
/// Cache-block depth (the shared dimension per packed panel).
pub const KC: usize = 256;
/// Cache-block width of a `B` panel (columns per packed panel).
pub const NC: usize = 2048;

/// Cache-blocking parameters for the Goto algorithm — exposed so the
/// blocking ablation (`bench gemm_blocking`) can sweep them. The defaults
/// target an L2 of a few hundred KiB holding the packed A block
/// (`MC × KC` elements) and an L3 panel of `KC × NC`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockConfig {
    /// Rows of `A` per packed cache block.
    pub mc: usize,
    /// Shared dimension per packed panel.
    pub kc: usize,
    /// Columns of `B` per packed panel.
    pub nc: usize,
}

impl Default for BlockConfig {
    fn default() -> Self {
        Self {
            mc: MC,
            kc: KC,
            nc: NC,
        }
    }
}

impl BlockConfig {
    /// A configuration with every block dimension clamped to be ≥ 1.
    pub fn new(mc: usize, kc: usize, nc: usize) -> Self {
        Self {
            mc: mc.max(1),
            kc: kc.max(1),
            nc: nc.max(1),
        }
    }
}

/// Applies `C ← β·C` to an `m × n` region, honouring the β=0 write-only rule.
fn scale_c<T: Scalar>(m: usize, n: usize, beta: T, c: &mut [T], ldc: usize) {
    if beta == T::ONE {
        return;
    }
    for j in 0..n {
        let col = &mut c[j * ldc..j * ldc + m];
        if beta == T::ZERO {
            col.fill(T::ZERO);
        } else {
            for v in col {
                *v *= beta;
            }
        }
    }
}

/// Reference GEMM: the validation oracle.
///
/// Triple loop in `j → l → i` order so the innermost loop walks a column of
/// both `A` and `C` with unit stride (an axpy per `(j, l)` pair).
pub fn gemm_ref<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) -> Result<(), ContractError> {
    contract::check_gemm(m, n, k, a.len(), lda, b.len(), ldb, c.len(), ldc)?;
    if m == 0 || n == 0 {
        return Ok(());
    }
    scale_c(m, n, beta, c, ldc);
    if alpha == T::ZERO || k == 0 {
        return Ok(());
    }
    for j in 0..n {
        let cj = &mut c[j * ldc..j * ldc + m];
        for l in 0..k {
            let w = alpha * b[j * ldb + l];
            if w == T::ZERO {
                continue;
            }
            let al = &a[l * lda..l * lda + m];
            for i in 0..m {
                cj[i] = al[i].mul_add(w, cj[i]);
            }
        }
    }
    Ok(())
}

/// The macro-kernel: multiplies a packed `mc × kc` A block by a packed
/// `kc × nc` B panel into the corresponding `C` block.
fn macro_kernel<T: Scalar>(
    mc: usize,
    nc: usize,
    kc: usize,
    packed_a: &[T],
    packed_b: &[T],
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    let m_slivers = mc.div_ceil(MR);
    let n_slivers = nc.div_ceil(NR);
    for js in 0..n_slivers {
        let j0 = js * NR;
        let nr_eff = NR.min(nc - j0);
        let b_sl = &packed_b[js * kc * NR..(js + 1) * kc * NR];
        for is in 0..m_slivers {
            let i0 = is * MR;
            let mr_eff = MR.min(mc - i0);
            let a_sl = &packed_a[is * kc * MR..(is + 1) * kc * MR];
            let mut acc = [T::ZERO; MR * NR];
            ukernel(kc, a_sl, b_sl, &mut acc);
            store_tile(&acc, &mut c[i0 + j0 * ldc..], ldc, mr_eff, nr_eff, beta);
        }
    }
}

/// Cache-blocked, packed GEMM (single-threaded Goto algorithm) with the
/// default blocking.
pub fn gemm_blocked<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) -> Result<(), ContractError> {
    gemm_blocked_with(
        BlockConfig::default(),
        m,
        n,
        k,
        alpha,
        a,
        lda,
        b,
        ldb,
        beta,
        c,
        ldc,
    )
}

/// Cache-blocked, packed GEMM with explicit blocking parameters.
#[allow(clippy::too_many_arguments)]
pub fn gemm_blocked_with<T: Scalar>(
    cfg: BlockConfig,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) -> Result<(), ContractError> {
    contract::check_gemm(m, n, k, a.len(), lda, b.len(), ldb, c.len(), ldc)?;
    if m == 0 || n == 0 {
        return Ok(());
    }
    if alpha == T::ZERO || k == 0 {
        scale_c(m, n, beta, c, ldc);
        return Ok(());
    }
    // Packing buffers come from the thread-local arena: steady-state GEMM
    // allocates nothing (the buffers keep their capacity across calls).
    crate::arena::with_pack_buffers::<T, _>(|packed_a, packed_b| {
        for jc in (0..n).step_by(cfg.nc.max(1)) {
            let nc = cfg.nc.min(n - jc);
            for pc in (0..k).step_by(cfg.kc.max(1)) {
                let kc = cfg.kc.min(k - pc);
                // β applies to C exactly once: on the first k-panel. Later
                // panels accumulate (β' = 1).
                let beta_eff = if pc == 0 { beta } else { T::ONE };
                {
                    let pack =
                        tracehook::span(tracehook::names::GEMM_PACK_B, tracehook::cats::GEMM);
                    pack.annotate("bytes", (kc * nc * std::mem::size_of::<T>()) as u64);
                    pack_b(kc, nc, &b[jc * ldb + pc..], ldb, packed_b);
                }
                for ic in (0..m).step_by(cfg.mc.max(1)) {
                    let mc = cfg.mc.min(m - ic);
                    {
                        let pack =
                            tracehook::span(tracehook::names::GEMM_PACK_A, tracehook::cats::GEMM);
                        pack.annotate("bytes", (mc * kc * std::mem::size_of::<T>()) as u64);
                        // α folds into the packed copy of A
                        pack_a(mc, kc, &a[pc * lda + ic..], lda, alpha, packed_a);
                    }
                    let compute =
                        tracehook::span(tracehook::names::GEMM_COMPUTE, tracehook::cats::GEMM);
                    compute.annotate("flops", 2 * (mc * nc * kc) as u64);
                    macro_kernel(
                        mc,
                        nc,
                        kc,
                        packed_a,
                        packed_b,
                        beta_eff,
                        &mut c[ic + jc * ldc..],
                        ldc,
                    );
                    drop(compute);
                }
            }
        }
    });
    Ok(())
}

/// Multi-threaded GEMM: the `N` dimension is split into contiguous column
/// blocks dispatched through [`pool::run_scoped`], each block running
/// [`gemm_blocked`] on a disjoint region of `C` (and the matching columns
/// of `B`).
///
/// Column blocks are rounded to multiples of [`NR`] so no micro-tile spans
/// a thread boundary. The split width is chosen by work, not by request:
/// [`pool::effective_workers`] grants one worker per
/// [`pool::MIN_FLOPS_PER_THREAD`] flops of `2·m·n·k`, so problems below
/// the crossover (≤ 128³ at 4 threads) run single-threaded inline with
/// **zero** dispatch cost — exactly the small-problem region where the
/// offload threshold lives and where a per-call spawn used to dominate
/// the measurement. Above it, the caller runs the first block itself, so
/// `w` workers cost `w − 1` spawns.
pub fn gemm_parallel<T: Scalar>(
    threads: usize,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) -> Result<(), ContractError> {
    contract::check_gemm(m, n, k, a.len(), lda, b.len(), ldb, c.len(), ldc)?;
    if m == 0 || n == 0 {
        return Ok(());
    }
    let _obs = dispatchhook::observe(
        dispatchhook::ObservedKind::Gemm,
        m,
        n,
        k,
        std::mem::size_of::<T>(),
    );
    let flops = 2usize.saturating_mul(m).saturating_mul(n).saturating_mul(k);
    // A worker should also own at least a few micro-panels of columns, or
    // the NR-rounded split leaves it no work at all.
    let min_cols = NR * 4;
    let chunks = pool::effective_workers(threads, flops, pool::MIN_FLOPS_PER_THREAD)
        .min(n.div_ceil(min_cols))
        .max(1);
    if chunks == 1 {
        return gemm_blocked(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    }
    // Columns per chunk, rounded up to a multiple of NR.
    let per = n.div_ceil(chunks).div_ceil(NR) * NR;
    let mut jobs = Vec::with_capacity(chunks);
    let mut rest: &mut [T] = c;
    let mut j0 = 0usize;
    while j0 < n {
        let jn = per.min(n - j0);
        let is_last = j0 + jn >= n;
        let take = if is_last { rest.len() } else { jn * ldc };
        let (mine, r) = rest.split_at_mut(take);
        rest = r;
        let b_block = &b[j0 * ldb..];
        jobs.push(move || {
            perturb::point(perturb::tags::GEMM_PANEL);
            // The full call was validated above and each chunk only
            // narrows it, so a chunk cannot fail its own contract.
            let _ = gemm_blocked(m, jn, k, alpha, a, lda, b_block, ldb, beta, mine, ldc);
        });
        j0 += jn;
    }
    pool::run_scoped(jobs);
    Ok(())
}

/// Convenience entry point: picks the reference kernel for tiny problems
/// (where packing overhead dominates) and the blocked kernel otherwise.
pub fn gemm<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) -> Result<(), ContractError> {
    let _obs = dispatchhook::observe(
        dispatchhook::ObservedKind::Gemm,
        m,
        n,
        k,
        std::mem::size_of::<T>(),
    );
    // Below roughly a micro-tile's worth of work, packing costs more than
    // it saves.
    if m * n * k <= MR * NR * KC {
        gemm_ref(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
    } else {
        gemm_blocked(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    /// Deterministic pseudo-random fill, distinct per (seed, i, j).
    fn filled(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        Matrix::from_fn(rows, cols, |i, j| {
            let h = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((i * 131071 + j * 524287) as u64);
            ((h >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        })
    }

    fn run_all_and_compare(m: usize, n: usize, k: usize, alpha: f64, beta: f64) {
        let a = filled(m, k, 1);
        let b = filled(k, n, 2);
        let c0 = filled(m, n, 3);

        let mut c_ref = c0.clone();
        gemm_ref(
            m,
            n,
            k,
            alpha,
            a.as_slice(),
            a.ld(),
            b.as_slice(),
            b.ld(),
            beta,
            c_ref.as_mut_slice(),
            c0.ld(),
        )
        .unwrap();

        let mut c_blk = c0.clone();
        gemm_blocked(
            m,
            n,
            k,
            alpha,
            a.as_slice(),
            a.ld(),
            b.as_slice(),
            b.ld(),
            beta,
            c_blk.as_mut_slice(),
            c0.ld(),
        )
        .unwrap();
        assert!(
            c_ref.approx_eq(&c_blk, 1e-10),
            "blocked mismatch at m={m} n={n} k={k} alpha={alpha} beta={beta}: {}",
            c_ref.max_abs_diff(&c_blk)
        );

        let mut c_par = c0.clone();
        gemm_parallel(
            4,
            m,
            n,
            k,
            alpha,
            a.as_slice(),
            a.ld(),
            b.as_slice(),
            b.ld(),
            beta,
            c_par.as_mut_slice(),
            c0.ld(),
        )
        .unwrap();
        assert!(
            c_ref.approx_eq(&c_par, 1e-10),
            "parallel mismatch at m={m} n={n} k={k}"
        );
    }

    #[test]
    fn square_sizes_match_reference() {
        for s in [1, 2, 3, 7, 8, 9, 16, 31, 33, 64, 65] {
            run_all_and_compare(s, s, s, 1.0, 0.0);
        }
    }

    #[test]
    fn nonsquare_shapes_match_reference() {
        // the paper's non-square problem archetypes in miniature
        run_all_and_compare(8, 8, 128, 1.0, 0.0); // M=N, K=16M
        run_all_and_compare(32, 32, 200, 1.0, 0.0); // M=N=32, K large
        run_all_and_compare(128, 8, 8, 1.0, 0.0); // K=N, M=16K
        run_all_and_compare(200, 32, 32, 1.0, 0.0); // K=N=32
        run_all_and_compare(8, 128, 8, 1.0, 0.0); // M=K, N=16K
        run_all_and_compare(32, 200, 32, 1.0, 0.0); // M=K=32
        run_all_and_compare(100, 100, 32, 1.0, 0.0); // M=N, K=32
    }

    #[test]
    fn alpha_beta_combinations() {
        for (alpha, beta) in [(1.0, 0.0), (4.0, 0.0), (1.0, 2.0), (-0.5, 1.0), (2.0, -1.0)] {
            run_all_and_compare(37, 29, 41, alpha, beta);
        }
    }

    #[test]
    fn beta_zero_ignores_garbage_c() {
        let m = 17;
        let a = filled(m, m, 1);
        let b = filled(m, m, 2);
        let mut c = Matrix::<f64>::zeros(m, m);
        c.fill(f64::NAN);
        gemm_blocked(
            m,
            m,
            m,
            1.0,
            a.as_slice(),
            m,
            b.as_slice(),
            m,
            0.0,
            c.as_mut_slice(),
            m,
        )
        .unwrap();
        assert!(
            c.as_slice().iter().all(|v| v.is_finite()),
            "NaN leaked through beta=0"
        );
    }

    #[test]
    fn alpha_zero_only_scales_c() {
        let m = 9;
        let a = filled(m, m, 1);
        let b = filled(m, m, 2);
        let c0 = filled(m, m, 3);
        let mut c = c0.clone();
        gemm_blocked(
            m,
            m,
            m,
            0.0,
            a.as_slice(),
            m,
            b.as_slice(),
            m,
            2.0,
            c.as_mut_slice(),
            m,
        )
        .unwrap();
        for j in 0..m {
            for i in 0..m {
                assert!((c[(i, j)] - 2.0 * c0[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn k_zero_behaves_like_scale() {
        let m = 5;
        let c0 = filled(m, m, 3);
        let mut c = c0.clone();
        gemm_ref::<f64>(m, m, 0, 1.0, &[], m, &[], 1, 0.5, c.as_mut_slice(), m).unwrap();
        for j in 0..m {
            for i in 0..m {
                assert!((c[(i, j)] - 0.5 * c0[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn padded_leading_dimensions() {
        let (m, n, k) = (13, 11, 17);
        let a = {
            let tight = filled(m, k, 1);
            let mut p = Matrix::<f64>::zeros_ld(m, k, m + 3);
            for j in 0..k {
                p.col_mut(j).copy_from_slice(tight.col(j));
            }
            p
        };
        let b = {
            let tight = filled(k, n, 2);
            let mut p = Matrix::<f64>::zeros_ld(k, n, k + 5);
            for j in 0..n {
                p.col_mut(j).copy_from_slice(tight.col(j));
            }
            p
        };
        let mut c_pad = Matrix::<f64>::zeros_ld(m, n, m + 2);
        let mut c_ref = Matrix::<f64>::zeros(m, n);
        gemm_blocked(
            m,
            n,
            k,
            1.0,
            a.as_slice(),
            a.ld(),
            b.as_slice(),
            b.ld(),
            0.0,
            c_pad.as_mut_slice(),
            m + 2,
        )
        .unwrap();
        gemm_ref(
            m,
            n,
            k,
            1.0,
            a.as_slice(),
            a.ld(),
            b.as_slice(),
            b.ld(),
            0.0,
            c_ref.as_mut_slice(),
            m,
        )
        .unwrap();
        for j in 0..n {
            for i in 0..m {
                assert!((c_pad[(i, j)] - c_ref[(i, j)]).abs() < 1e-10);
            }
        }
        // ld padding rows of C untouched
        for j in 0..n {
            assert_eq!(c_pad.as_slice()[j * c_pad.ld() + m], 0.0);
            assert_eq!(c_pad.as_slice()[j * c_pad.ld() + m + 1], 0.0);
        }
    }

    #[test]
    fn f32_precision_path() {
        let m = 24;
        let a = Matrix::<f32>::from_fn(m, m, |i, j| ((i + 2 * j) % 5) as f32 - 2.0);
        let b = Matrix::<f32>::from_fn(m, m, |i, j| ((3 * i + j) % 7) as f32 - 3.0);
        let mut c1 = Matrix::<f32>::zeros(m, m);
        let mut c2 = Matrix::<f32>::zeros(m, m);
        gemm_ref(
            m,
            m,
            m,
            1.0f32,
            a.as_slice(),
            m,
            b.as_slice(),
            m,
            0.0,
            c1.as_mut_slice(),
            m,
        )
        .unwrap();
        gemm_blocked(
            m,
            m,
            m,
            1.0f32,
            a.as_slice(),
            m,
            b.as_slice(),
            m,
            0.0,
            c2.as_mut_slice(),
            m,
        )
        .unwrap();
        assert!(c1.approx_eq(&c2, 1e-4));
    }

    #[test]
    fn parallel_thread_counts_agree() {
        let (m, n, k) = (40, 100, 30);
        let a = filled(m, k, 5);
        let b = filled(k, n, 6);
        let mut expect = Matrix::<f64>::zeros(m, n);
        gemm_ref(
            m,
            n,
            k,
            1.5,
            a.as_slice(),
            m,
            b.as_slice(),
            k,
            0.0,
            expect.as_mut_slice(),
            m,
        )
        .unwrap();
        for threads in [1, 2, 3, 8, 64] {
            let mut c = Matrix::<f64>::zeros(m, n);
            gemm_parallel(
                threads,
                m,
                n,
                k,
                1.5,
                a.as_slice(),
                m,
                b.as_slice(),
                k,
                0.0,
                c.as_mut_slice(),
                m,
            )
            .unwrap();
            assert!(expect.approx_eq(&c, 1e-10), "threads={threads}");
        }
    }

    #[test]
    fn dispatcher_handles_both_regimes() {
        // tiny -> reference path; larger -> blocked path; results identical
        for s in [4, 96] {
            let a = filled(s, s, 7);
            let b = filled(s, s, 8);
            let mut c1 = Matrix::<f64>::zeros(s, s);
            let mut c2 = Matrix::<f64>::zeros(s, s);
            gemm(
                s,
                s,
                s,
                1.0,
                a.as_slice(),
                s,
                b.as_slice(),
                s,
                0.0,
                c1.as_mut_slice(),
                s,
            )
            .unwrap();
            gemm_ref(
                s,
                s,
                s,
                1.0,
                a.as_slice(),
                s,
                b.as_slice(),
                s,
                0.0,
                c2.as_mut_slice(),
                s,
            )
            .unwrap();
            assert!(c1.approx_eq(&c2, 1e-10));
        }
    }

    #[test]
    fn bad_lda_rejected() {
        let a = [0.0f64; 4];
        let b = [0.0f64; 4];
        let mut c = [0.0f64; 4];
        let err = gemm_ref(2, 2, 2, 1.0, &a, 1, &b, 2, 0.0, &mut c, 2).unwrap_err();
        assert_eq!(
            err,
            crate::contract::ContractError::LeadingDim {
                arg: "a",
                ld: 1,
                rows: 2
            }
        );
    }

    #[test]
    fn short_a_rejected() {
        let a = [0.0f64; 3];
        let b = [0.0f64; 4];
        let mut c = [0.0f64; 4];
        let err = gemm_ref(2, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut c, 2).unwrap_err();
        assert!(matches!(
            err,
            crate::contract::ContractError::BufferTooShort {
                arg: "a",
                required: 4,
                actual: 3
            }
        ));
    }

    #[test]
    fn all_entry_points_reject_bad_ldc() {
        let a = [0.0f64; 4];
        let b = [0.0f64; 4];
        let mut c = [0.0f64; 4];
        assert!(gemm_ref(2, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut c, 1).is_err());
        assert!(gemm_blocked(2, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut c, 1).is_err());
        assert!(gemm_parallel(2, 2, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut c, 1).is_err());
        assert!(gemm(2, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut c, 1).is_err());
    }
}
