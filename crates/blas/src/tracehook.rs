//! Trace hooks: how the kernels report span timings *up* to the harness.
//!
//! `blob-blas` sits at the bottom of the workspace and must not depend on
//! `blob-core`, where the tracing plane ([`blob_core::trace`]) lives. Like
//! [`crate::faultpoint`], this module inverts the dependency: the kernels
//! call [`span`] at their hot seams (pool dispatch, job execution, GEMM
//! pack/compute phases), and the layer above installs closures that turn
//! those calls into real trace spans.
//!
//! With no hooks armed, [`span`] is a single relaxed atomic load and the
//! returned guard's `Drop` is a branch on a local bool — the `trace_gate`
//! bench in `blob-bench` proves the cost is <1% of the smallest gated
//! GEMM call. When armed, each call locks a mutex around the installed
//! hook set; that cost is paid only while a trace is being recorded.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

/// Span names emitted by this crate's instrumentation points.
pub mod names {
    /// Caller-side submission of one batch to the thread pool.
    pub const POOL_DISPATCH: &str = "pool.dispatch";
    /// One job body executing on a pool worker thread.
    pub const POOL_JOB: &str = "pool.job";
    /// Caller-side wait for a batch to complete.
    pub const POOL_WAIT: &str = "pool.wait";
    /// Packing one A-panel block (includes the α scaling pass).
    pub const GEMM_PACK_A: &str = "gemm.pack_a";
    /// Packing one B-panel block.
    pub const GEMM_PACK_B: &str = "gemm.pack_b";
    /// One macro-kernel invocation over packed panels.
    pub const GEMM_COMPUTE: &str = "gemm.compute";
}

/// Span categories (trace viewers group and colour by these).
pub mod cats {
    /// Thread-pool lifecycle spans.
    pub const POOL: &str = "pool";
    /// Blocked-GEMM phase spans.
    pub const GEMM: &str = "gemm";
}

/// The closures a tracing layer installs to receive span events.
///
/// The three hooks are an open/annotate/close protocol: every `begin`
/// call is matched by exactly one `end` call on the same thread, and
/// `annotate` applies to the innermost region opened on that thread.
pub struct Hooks {
    /// Called when an instrumented region opens: `(name, category)`.
    pub begin: Box<dyn Fn(&'static str, &'static str) + Send + Sync>,
    /// Called to attach a `u64` key/value to the innermost open region.
    pub annotate: Box<dyn Fn(&'static str, u64) + Send + Sync>,
    /// Called when the innermost instrumented region closes.
    pub end: Box<dyn Fn() + Send + Sync>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static HOOKS: Mutex<Option<Hooks>> = Mutex::new(None);

/// Installs the hook set. The layer above calls this once at trace
/// install time; passing a new set replaces the old one.
pub fn set_hooks(hooks: Hooks) {
    *HOOKS.lock().unwrap_or_else(PoisonError::into_inner) = Some(hooks);
}

/// Arms or disarms the instrumentation points. Disarmed (the default),
/// [`span`] costs one relaxed atomic load.
pub fn set_active(on: bool) {
    ACTIVE.store(on, Ordering::Release);
}

/// Whether the instrumentation points are currently armed.
pub fn active() -> bool {
    // relaxed: advisory gate read; the sink itself is lock-protected
    ACTIVE.load(Ordering::Relaxed)
}

/// RAII guard for one instrumented region; closes the region on drop.
///
/// Returned by [`span`]. When tracing is disarmed the guard is inert and
/// its drop is a branch on a local bool.
#[must_use = "the span closes when the guard drops; binding it to _ closes it immediately"]
pub struct SpanGuard {
    armed: bool,
}

impl SpanGuard {
    /// Attaches a `u64` key/value annotation to this region. No-op when
    /// the guard is inert.
    pub fn annotate(&self, key: &'static str, value: u64) {
        if self.armed {
            armed_annotate(key, value);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            armed_end();
        }
    }
}

/// Opens an instrumented region. The fast path — no trace recording —
/// is a single relaxed atomic load.
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> SpanGuard {
    // relaxed: a stale read drops or opens one span early/late — trace
    // completeness around arm/disarm is best-effort by design
    if !ACTIVE.load(Ordering::Relaxed) {
        return SpanGuard { armed: false };
    }
    armed_begin(name, cat);
    SpanGuard { armed: true }
}

#[cold]
fn armed_begin(name: &'static str, cat: &'static str) {
    if let Some(h) = HOOKS
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
    {
        (h.begin)(name, cat);
    }
}

#[cold]
fn armed_annotate(key: &'static str, value: u64) {
    if let Some(h) = HOOKS
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
    {
        (h.annotate)(key, value);
    }
}

#[cold]
fn armed_end() {
    if let Some(h) = HOOKS
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
    {
        (h.end)();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn disarmed_span_calls_no_hooks() {
        let _stress = crate::perturb::STRESS_LOCK
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let calls = Arc::new(AtomicUsize::new(0));
        let (b, a, e) = (calls.clone(), calls.clone(), calls.clone());
        set_hooks(Hooks {
            begin: Box::new(move |_, _| {
                b.fetch_add(1, Ordering::SeqCst);
            }),
            annotate: Box::new(move |_, _| {
                a.fetch_add(1, Ordering::SeqCst);
            }),
            end: Box::new(move || {
                e.fetch_add(1, Ordering::SeqCst);
            }),
        });
        set_active(false);
        {
            let g = span(names::POOL_JOB, cats::POOL);
            g.annotate("jobs", 3);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn armed_span_fires_begin_annotate_end_in_order() {
        let _stress = crate::perturb::STRESS_LOCK
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let events = Arc::new(Mutex::new(Vec::<String>::new()));
        let (b, a, e) = (events.clone(), events.clone(), events.clone());
        set_hooks(Hooks {
            begin: Box::new(move |name, cat| {
                b.lock().unwrap().push(format!("begin {name} {cat}"));
            }),
            annotate: Box::new(move |key, value| {
                a.lock().unwrap().push(format!("annotate {key}={value}"));
            }),
            end: Box::new(move || {
                e.lock().unwrap().push("end".to_string());
            }),
        });
        set_active(true);
        {
            let g = span(names::GEMM_COMPUTE, cats::GEMM);
            g.annotate("flops", 128);
        }
        set_active(false);
        let got = events.lock().unwrap().clone();
        assert_eq!(
            got,
            vec![
                "begin gemm.compute gemm".to_string(),
                "annotate flops=128".to_string(),
                "end".to_string(),
            ]
        );
    }
}
