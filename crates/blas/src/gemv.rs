//! GEMV: `y ← α·A·x + β·y` for a column-major `m × n` matrix `A`, no
//! transposition, with explicit vector increments (`incx = incy = 1` in the
//! paper's configuration, but general strides — including the BLAS
//! negative-increment convention — are supported and tested).
//!
//! - [`gemv_ref`] — column-sweep (axpy-based) kernel: unit-stride access to
//!   both `A` and `y`; the validation oracle and the serial fast path.
//! - [`gemv_parallel`] — row-block parallel kernel: each thread owns a
//!   contiguous block of `y` and sweeps all columns of its row band. This
//!   is the multithreading AOCL famously *lacks* for GEMV — the cause of
//!   LUMI's surprisingly low GEMV offload thresholds in the paper (§IV-B).
//! - [`gemv`] — serial convenience wrapper over [`gemv_ref`].
//!
//! Every entry point validates its arguments through
//! [`contract`](crate::contract) before touching any buffer and reports
//! violations as a typed [`ContractError`] instead of panicking.

use crate::contract::{self, vec_index, ContractError};
use crate::dispatchhook;
use crate::perturb;
use crate::pool;
use crate::scalar::Scalar;

/// Applies `y ← β·y` honouring the β=0 write-only rule.
fn scale_y<T: Scalar>(m: usize, beta: T, y: &mut [T], incy: isize) {
    if beta == T::ONE {
        return;
    }
    for i in 0..m {
        let at = vec_index(i, m, incy);
        if beta == T::ZERO {
            y[at] = T::ZERO;
        } else {
            y[at] *= beta;
        }
    }
}

/// Reference column-sweep GEMV.
#[allow(clippy::too_many_arguments)]
pub fn gemv_ref<T: Scalar>(
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    x: &[T],
    incx: isize,
    beta: T,
    y: &mut [T],
    incy: isize,
) -> Result<(), ContractError> {
    contract::check_gemv(m, n, a.len(), lda, x.len(), incx, y.len(), incy)?;
    if m == 0 {
        return Ok(());
    }
    scale_y(m, beta, y, incy);
    if alpha == T::ZERO || n == 0 {
        return Ok(());
    }
    if incy == 1 {
        for j in 0..n {
            let w = alpha * x[vec_index(j, n, incx)];
            if w == T::ZERO {
                continue;
            }
            let col = &a[j * lda..j * lda + m];
            for i in 0..m {
                y[i] = col[i].mul_add(w, y[i]);
            }
        }
    } else {
        for j in 0..n {
            let w = alpha * x[vec_index(j, n, incx)];
            if w == T::ZERO {
                continue;
            }
            let col = &a[j * lda..j * lda + m];
            for i in 0..m {
                let at = vec_index(i, m, incy);
                y[at] = col[i].mul_add(w, y[at]);
            }
        }
    }
    Ok(())
}

/// Serial GEMV (alias of the reference kernel — the column sweep *is* the
/// efficient serial algorithm for column-major, non-transposed `A`).
#[allow(clippy::too_many_arguments)]
pub fn gemv<T: Scalar>(
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    x: &[T],
    incx: isize,
    beta: T,
    y: &mut [T],
    incy: isize,
) -> Result<(), ContractError> {
    let _obs = dispatchhook::observe(
        dispatchhook::ObservedKind::Gemv,
        m,
        n,
        1,
        std::mem::size_of::<T>(),
    );
    gemv_ref(m, n, alpha, a, lda, x, incx, beta, y, incy)
}

/// Row-block parallel GEMV.
///
/// `y` is split into contiguous row blocks dispatched through
/// [`pool::run_scoped`]; each block reads the matching row band of every
/// column of `A`. GEMV is bandwidth-bound, so the split width is chosen by
/// streamed volume: [`pool::effective_workers`] grants one worker per
/// [`pool::MIN_ELEMS_PER_THREAD`] elements of `m·n`, and anything below
/// two workers' worth (including the benchmark's tall-skinny 8192×64)
/// runs serially inline with zero dispatch cost.
#[allow(clippy::too_many_arguments)]
pub fn gemv_parallel<T: Scalar>(
    threads: usize,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    x: &[T],
    incx: isize,
    beta: T,
    y: &mut [T],
    incy: isize,
) -> Result<(), ContractError> {
    contract::check_gemv(m, n, a.len(), lda, x.len(), incx, y.len(), incy)?;
    if m == 0 {
        return Ok(());
    }
    let _obs = dispatchhook::observe(
        dispatchhook::ObservedKind::Gemv,
        m,
        n,
        1,
        std::mem::size_of::<T>(),
    );
    let streamed = m.saturating_mul(n.max(1));
    let chunks = pool::effective_workers(threads, streamed, pool::MIN_ELEMS_PER_THREAD).min(m);
    if chunks <= 1 || incy != 1 {
        // Strided y makes clean row-splitting of the slice awkward for no
        // benchmark benefit (the artifact always uses incy = 1).
        return gemv_ref(m, n, alpha, a, lda, x, incx, beta, y, incy);
    }
    let per = m.div_ceil(chunks);
    // Only the first m elements of y participate when incy == 1.
    let mut rest: &mut [T] = &mut y[..m];
    let mut jobs = Vec::with_capacity(chunks);
    let mut i0 = 0usize;
    while i0 < m {
        let rows = per.min(m - i0);
        let (mine, r) = rest.split_at_mut(rows);
        rest = r;
        let row0 = i0;
        jobs.push(move || {
            perturb::point(perturb::tags::GEMV_CHUNK);
            scale_y(rows, beta, mine, 1);
            if alpha == T::ZERO || n == 0 {
                return;
            }
            for j in 0..n {
                let w = alpha * x[vec_index(j, n, incx)];
                if w == T::ZERO {
                    continue;
                }
                let band = &a[j * lda + row0..j * lda + row0 + rows];
                for i in 0..rows {
                    mine[i] = band[i].mul_add(w, mine[i]);
                }
            }
        });
        i0 += rows;
    }
    pool::run_scoped(jobs);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn filled(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        Matrix::from_fn(rows, cols, |i, j| {
            let h = seed
                .wrapping_mul(2862933555777941757)
                .wrapping_add((i * 92821 + j * 68917) as u64);
            ((h >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        })
    }

    fn naive(
        m: usize,
        n: usize,
        alpha: f64,
        a: &Matrix<f64>,
        x: &[f64],
        beta: f64,
        y0: &[f64],
    ) -> Vec<f64> {
        (0..m)
            .map(|i| {
                let dot: f64 = (0..n).map(|j| a[(i, j)] * x[j]).sum();
                alpha * dot + beta * y0[i]
            })
            .collect()
    }

    #[test]
    fn matches_naive_various_shapes() {
        for (m, n) in [
            (1, 1),
            (5, 3),
            (3, 5),
            (64, 64),
            (100, 7),
            (7, 100),
            (257, 33),
        ] {
            let a = filled(m, n, 11);
            let x: Vec<f64> = (0..n).map(|j| (j as f64 * 0.3).sin()).collect();
            let y0: Vec<f64> = (0..m).map(|i| (i as f64 * 0.7).cos()).collect();
            for (alpha, beta) in [(1.0, 0.0), (2.0, 0.0), (1.0, 2.0), (-1.0, 0.5)] {
                let expect = naive(m, n, alpha, &a, &x, beta, &y0);
                let mut y = y0.clone();
                gemv_ref(m, n, alpha, a.as_slice(), a.ld(), &x, 1, beta, &mut y, 1).unwrap();
                for i in 0..m {
                    assert!((y[i] - expect[i]).abs() < 1e-10, "ref ({m},{n}) i={i}");
                }
                let mut yp = y0.clone();
                gemv_parallel(
                    4,
                    m,
                    n,
                    alpha,
                    a.as_slice(),
                    a.ld(),
                    &x,
                    1,
                    beta,
                    &mut yp,
                    1,
                )
                .unwrap();
                for i in 0..m {
                    assert!((yp[i] - expect[i]).abs() < 1e-10, "par ({m},{n}) i={i}");
                }
            }
        }
    }

    #[test]
    fn beta_zero_ignores_garbage_y() {
        let (m, n) = (33, 17);
        let a = filled(m, n, 2);
        let x = vec![1.0; n];
        let mut y = vec![f64::NAN; m];
        gemv_ref(m, n, 1.0, a.as_slice(), m, &x, 1, 0.0, &mut y, 1).unwrap();
        assert!(y.iter().all(|v| v.is_finite()));
        let mut yp = vec![f64::NAN; m];
        gemv_parallel(8, m, n, 1.0, a.as_slice(), m, &x, 1, 0.0, &mut yp, 1).unwrap();
        assert!(yp.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn strided_vectors() {
        let (m, n) = (4, 3);
        let a = filled(m, n, 3);
        // logical x = [1, 2, 3] at stride 2
        let x = [1.0, 0.0, 2.0, 0.0, 3.0];
        let y0 = [1.0, 1.0, 1.0, 1.0];
        let expect = naive(m, n, 1.0, &a, &[1.0, 2.0, 3.0], 1.0, &y0);
        // y at stride 3
        let mut y = vec![0.0; (m - 1) * 3 + 1];
        for i in 0..m {
            y[i * 3] = 1.0;
        }
        gemv_ref(m, n, 1.0, a.as_slice(), m, &x, 2, 1.0, &mut y, 3).unwrap();
        for i in 0..m {
            assert!((y[i * 3] - expect[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn negative_increments_reverse_vectors() {
        let (m, n) = (3, 3);
        let a = filled(m, n, 13);
        // incx = -1: stored x is the logical vector reversed
        let logical_x = [1.0, 2.0, 3.0];
        let stored_x = [3.0, 2.0, 1.0];
        let y0 = [0.5, -0.5, 1.5];
        let expect = naive(m, n, 2.0, &a, &logical_x, 1.0, &y0);
        let mut y = y0;
        gemv_ref(m, n, 2.0, a.as_slice(), m, &stored_x, -1, 1.0, &mut y, 1).unwrap();
        for i in 0..m {
            assert!((y[i] - expect[i]).abs() < 1e-12, "incx=-1 i={i}");
        }
        // incy = -1: result lands reversed in storage
        let mut y_rev = [y0[2], y0[1], y0[0]];
        gemv_ref(
            m,
            n,
            2.0,
            a.as_slice(),
            m,
            &stored_x,
            -1,
            1.0,
            &mut y_rev,
            -1,
        )
        .unwrap();
        for i in 0..m {
            assert!(
                (y_rev[m - 1 - i] - expect[i]).abs() < 1e-12,
                "incy=-1 i={i}"
            );
        }
    }

    #[test]
    fn padded_lda() {
        let (m, n) = (10, 6);
        let tight = filled(m, n, 4);
        let mut a = Matrix::<f64>::zeros_ld(m, n, m + 7);
        for j in 0..n {
            a.col_mut(j).copy_from_slice(tight.col(j));
        }
        let x = vec![0.5; n];
        let mut y1 = vec![0.0; m];
        let mut y2 = vec![0.0; m];
        gemv_ref(
            m,
            n,
            1.0,
            tight.as_slice(),
            tight.ld(),
            &x,
            1,
            0.0,
            &mut y1,
            1,
        )
        .unwrap();
        gemv_ref(m, n, 1.0, a.as_slice(), a.ld(), &x, 1, 0.0, &mut y2, 1).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn alpha_zero_scales_only() {
        let (m, n) = (8, 8);
        let a = filled(m, n, 5);
        let x = vec![1.0; n];
        let mut y = vec![2.0; m];
        gemv_ref(m, n, 0.0, a.as_slice(), m, &x, 1, 3.0, &mut y, 1).unwrap();
        assert!(y.iter().all(|&v| v == 6.0));
    }

    #[test]
    fn n_zero_scales_only() {
        let m = 4;
        let mut y = vec![2.0; m];
        gemv_ref::<f64>(m, 0, 1.0, &[], m, &[], 1, 0.5, &mut y, 1).unwrap();
        assert!(y.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn m_zero_is_noop() {
        let mut y: Vec<f64> = vec![];
        gemv_ref::<f64>(0, 3, 1.0, &[], 1, &[1.0, 2.0, 3.0], 1, 0.0, &mut y, 1).unwrap();
    }

    #[test]
    fn parallel_many_threads_small_m_falls_back() {
        let (m, n) = (10, 10);
        let a = filled(m, n, 6);
        let x = vec![1.0; n];
        let mut y1 = vec![0.0; m];
        let mut y2 = vec![0.0; m];
        gemv_ref(m, n, 1.0, a.as_slice(), m, &x, 1, 0.0, &mut y1, 1).unwrap();
        gemv_parallel(128, m, n, 1.0, a.as_slice(), m, &x, 1, 0.0, &mut y2, 1).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn parallel_large_m_splits_correctly() {
        let (m, n) = (2048, 16);
        let a = filled(m, n, 7);
        let x: Vec<f64> = (0..n).map(|j| j as f64 - 8.0).collect();
        let mut y1 = vec![1.0; m];
        let mut y2 = vec![1.0; m];
        gemv_ref(m, n, 2.0, a.as_slice(), m, &x, 1, -1.0, &mut y1, 1).unwrap();
        gemv_parallel(4, m, n, 2.0, a.as_slice(), m, &x, 1, -1.0, &mut y2, 1).unwrap();
        for i in 0..m {
            assert!((y1[i] - y2[i]).abs() < 1e-12, "i={i}");
        }
    }

    #[test]
    fn short_a_rejected() {
        let a = [0.0f64; 3];
        let x = [1.0f64; 2];
        let mut y = [0.0f64; 2];
        let err = gemv_ref(2, 2, 1.0, &a, 2, &x, 1, 0.0, &mut y, 1).unwrap_err();
        assert!(matches!(
            err,
            crate::contract::ContractError::BufferTooShort { arg: "a", .. }
        ));
    }

    #[test]
    fn zero_increment_rejected() {
        let a = [0.0f64; 4];
        let x = [1.0f64; 2];
        let mut y = [0.0f64; 2];
        let err = gemv_ref(2, 2, 1.0, &a, 2, &x, 0, 0.0, &mut y, 1).unwrap_err();
        assert_eq!(
            err,
            crate::contract::ContractError::ZeroIncrement { arg: "x" }
        );
        let err = gemv_parallel(2, 2, 2, 1.0, &a, 2, &x, 1, 0.0, &mut y, 0).unwrap_err();
        assert_eq!(
            err,
            crate::contract::ContractError::ZeroIncrement { arg: "y" }
        );
    }

    #[test]
    fn f32_path() {
        let (m, n) = (19, 23);
        let a = Matrix::<f32>::from_fn(m, n, |i, j| ((i * 3 + j) % 11) as f32 - 5.0);
        let x: Vec<f32> = (0..n).map(|j| (j % 3) as f32).collect();
        let mut y1 = vec![0.0f32; m];
        let mut y2 = vec![0.0f32; m];
        gemv_ref(m, n, 1.0f32, a.as_slice(), m, &x, 1, 0.0, &mut y1, 1).unwrap();
        gemv_parallel(3, m, n, 1.0f32, a.as_slice(), m, &x, 1, 0.0, &mut y2, 1).unwrap();
        for i in 0..m {
            assert!((y1[i] - y2[i]).abs() < 1e-3);
        }
    }
}
