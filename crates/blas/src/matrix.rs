//! Column-major matrix storage and views.
//!
//! The paper's artifact stores all matrices in column-major format with no
//! transpositions: GEMM leading dimensions `lda = M`, `ldb = K`, `ldc = M`,
//! and GEMV increments `incx = incy = 1`. [`Matrix`] owns a column-major
//! buffer with an arbitrary leading dimension so those semantics (including
//! padded leading dimensions) are exercised by tests.

use crate::scalar::Scalar;

/// An owned, column-major matrix with an explicit leading dimension.
///
/// Element `(i, j)` lives at `data[i + j * ld]` with `i < rows`, `j < cols`,
/// `ld >= rows`. The padding rows between `rows` and `ld` are preserved by
/// all kernels, matching BLAS leading-dimension semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T: Scalar> {
    rows: usize,
    cols: usize,
    ld: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// A `rows × cols` matrix of zeros with a tight leading dimension.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::zeros_ld(rows, cols, rows.max(1))
    }

    /// A zero matrix with an explicit leading dimension `ld >= rows`.
    ///
    /// # Panics
    /// If `ld < rows` (or `ld == 0` while `rows > 0`).
    pub fn zeros_ld(rows: usize, cols: usize, ld: usize) -> Self {
        assert!(
            ld >= rows && (rows == 0 || ld > 0),
            "leading dimension {ld} must be >= rows {rows}"
        );
        Self {
            rows,
            cols,
            ld,
            data: vec![T::ZERO; ld * cols],
        }
    }

    /// Builds a matrix from a generator called as `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Self::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Wraps an existing column-major buffer.
    ///
    /// # Panics
    /// If `data.len() != ld * cols` or `ld < rows`.
    pub fn from_vec(rows: usize, cols: usize, ld: usize, data: Vec<T>) -> Self {
        assert!(ld >= rows, "leading dimension {ld} must be >= rows {rows}");
        assert_eq!(data.len(), ld * cols, "buffer length must equal ld * cols");
        Self {
            rows,
            cols,
            ld,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (column stride).
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// The underlying column-major buffer, including any ld padding.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Borrow of column `j` (only the `rows` live elements).
    #[inline]
    pub fn col(&self, j: usize) -> &[T] {
        debug_assert!(j < self.cols);
        &self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Mutable borrow of column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        debug_assert!(j < self.cols);
        &mut self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Fills every live element (not the ld padding) with `v`.
    pub fn fill(&mut self, v: T) {
        for j in 0..self.cols {
            self.col_mut(j).fill(v);
        }
    }

    /// Sum of all live elements widened to `f64` — the checksum the paper
    /// uses to cross-validate CPU and GPU library results (§III-B).
    pub fn checksum(&self) -> f64 {
        let mut acc = 0.0f64;
        for j in 0..self.cols {
            for &v in self.col(j) {
                acc += v.to_f64();
            }
        }
        acc
    }

    /// Largest absolute element-wise difference to `other`, widened to f64.
    ///
    /// # Panics
    /// If shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "col mismatch");
        let mut worst = 0.0f64;
        for j in 0..self.cols {
            for i in 0..self.rows {
                let d = (self[(i, j)].to_f64() - other[(i, j)].to_f64()).abs();
                if d > worst {
                    worst = d;
                }
            }
        }
        worst
    }

    /// True when every live element of `self` is within `rel_tol` of
    /// `other`, relative to the larger magnitude (absolute for tiny values).
    pub fn approx_eq(&self, other: &Self, rel_tol: f64) -> bool {
        if self.rows != other.rows || self.cols != other.cols {
            return false;
        }
        for j in 0..self.cols {
            for i in 0..self.rows {
                let a = self[(i, j)].to_f64();
                let b = other[(i, j)].to_f64();
                let scale = a.abs().max(b.abs()).max(1.0);
                if (a - b).abs() > rel_tol * scale {
                    return false;
                }
            }
        }
        true
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i + j * self.ld]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i + j * self.ld]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_contents() {
        let m = Matrix::<f64>::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.ld(), 3);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn column_major_indexing() {
        let m = Matrix::<f64>::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        // data layout: col 0 = [0,10], col 1 = [1,11], col 2 = [2,12]
        assert_eq!(m.as_slice(), &[0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
        assert_eq!(m[(1, 2)], 12.0);
    }

    #[test]
    fn padded_leading_dimension() {
        let mut m = Matrix::<f32>::zeros_ld(2, 2, 5);
        m[(0, 0)] = 1.0;
        m[(1, 1)] = 2.0;
        assert_eq!(m.ld(), 5);
        assert_eq!(m.as_slice().len(), 10);
        assert_eq!(m.as_slice()[0], 1.0);
        assert_eq!(m.as_slice()[5 + 1], 2.0);
        // padding untouched
        assert_eq!(m.as_slice()[2], 0.0);
    }

    #[test]
    #[should_panic(expected = "leading dimension")]
    fn ld_smaller_than_rows_panics() {
        let _ = Matrix::<f64>::zeros_ld(4, 2, 3);
    }

    #[test]
    fn from_vec_validates_length() {
        let m = Matrix::<f64>::from_vec(2, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 1)], 3.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_wrong_length() {
        let _ = Matrix::<f64>::from_vec(2, 2, 2, vec![1.0; 5]);
    }

    #[test]
    fn checksum_sums_live_elements_only() {
        let mut m = Matrix::<f64>::zeros_ld(2, 2, 4);
        m.fill(1.0);
        // poke the padding; checksum must ignore it
        m.as_mut_slice()[2] = 100.0;
        assert_eq!(m.checksum(), 4.0);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Matrix::<f64>::from_fn(2, 2, |i, j| (i + j) as f64 + 1.0);
        let mut b = a.clone();
        b[(0, 0)] += 1e-9;
        assert!(a.approx_eq(&b, 1e-6));
        b[(0, 0)] += 1.0;
        assert!(!a.approx_eq(&b, 1e-6));
        // paper's 0.1% margin
        let mut c = a.clone();
        c[(1, 1)] *= 1.0005;
        assert!(a.approx_eq(&c, 1e-3));
    }

    #[test]
    fn max_abs_diff() {
        let a = Matrix::<f32>::from_fn(3, 3, |i, j| (i * 3 + j) as f32);
        let mut b = a.clone();
        b[(2, 1)] += 0.5;
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn fill_respects_padding() {
        let mut m = Matrix::<f64>::zeros_ld(2, 3, 4);
        m.fill(7.0);
        for j in 0..3 {
            assert_eq!(m.col(j), &[7.0, 7.0]);
            // padding rows stay zero
            assert_eq!(m.as_slice()[j * 4 + 2], 0.0);
            assert_eq!(m.as_slice()[j * 4 + 3], 0.0);
        }
    }

    #[test]
    fn empty_matrix() {
        let m = Matrix::<f64>::zeros(0, 0);
        assert_eq!(m.checksum(), 0.0);
        let n = Matrix::<f64>::zeros(0, 5);
        assert_eq!(n.cols(), 5);
        assert_eq!(n.checksum(), 0.0);
    }
}
