//! Additional Level 2/3 kernels: GER, SYRK and TRSV.
//!
//! GEMM and GEMV "form the basis of many other BLAS kernels" (paper §I);
//! the related work the paper builds on benchmarks DOT, GEMV, GEMM *and
//! TRSV/TRSM* (Li et al.). These kernels round out the substrate so the
//! benchmark's call surface matches what a real BLAS client uses:
//!
//! - [`ger`] — rank-1 update `A ← α·x·yᵀ + A` (the GEMM building block);
//! - [`syrk`] — symmetric rank-k update `C ← α·A·Aᵀ + β·C` (normal
//!   equations, covariance);
//! - [`trsv`] — triangular solve `T·x = b` (the TRSV of Li et al.'s
//!   comparison; the kernel whose CPU/GPU picture the paper calls
//!   "more complex").
//!
//! All column-major, no transposition flags (matching the artifact's
//! conventions); triangular kernels take an [`UpLo`] selector.
//!
//! Every entry point validates its arguments through
//! [`contract`](crate::contract) before touching any buffer; singular
//! triangles surface as [`ContractError::SingularDiagonal`] rather than a
//! panic.

use crate::contract::{self, vec_index, ContractError};
use crate::pool;
use crate::scalar::Scalar;

/// Which triangle of a matrix a triangular kernel reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpLo {
    /// The lower triangle (including the diagonal).
    Lower,
    /// The upper triangle (including the diagonal).
    Upper,
}

/// GER: `A ← α·x·yᵀ + A` for an `m × n` column-major `A`.
pub fn ger<T: Scalar>(
    m: usize,
    n: usize,
    alpha: T,
    x: &[T],
    incx: isize,
    y: &[T],
    incy: isize,
    a: &mut [T],
    lda: usize,
) -> Result<(), ContractError> {
    contract::check_ger(m, n, x.len(), incx, y.len(), incy, a.len(), lda)?;
    if alpha == T::ZERO {
        return Ok(());
    }
    for j in 0..n {
        let w = alpha * y[vec_index(j, n, incy)];
        if w == T::ZERO {
            continue;
        }
        let col = &mut a[j * lda..j * lda + m];
        for i in 0..m {
            col[i] = x[vec_index(i, m, incx)].mul_add(w, col[i]);
        }
    }
    Ok(())
}

/// SYRK: `C ← α·A·Aᵀ + β·C`, updating only the `uplo` triangle of the
/// `n × n` matrix `C`; `A` is `n × k`.
#[allow(clippy::too_many_arguments)]
pub fn syrk<T: Scalar>(
    uplo: UpLo,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) -> Result<(), ContractError> {
    contract::check_syrk(n, k, a.len(), lda, c.len(), ldc)?;
    for j in 0..n {
        let (lo, hi) = match uplo {
            UpLo::Lower => (j, n),
            UpLo::Upper => (0, j + 1),
        };
        // β pass over the stored triangle of column j
        for i in lo..hi {
            let idx = i + j * ldc;
            c[idx] = if beta == T::ZERO {
                T::ZERO
            } else {
                c[idx] * beta
            };
        }
        if alpha == T::ZERO {
            continue;
        }
        for l in 0..k {
            let w = alpha * a[j + l * lda];
            if w == T::ZERO {
                continue;
            }
            for i in lo..hi {
                let idx = i + j * ldc;
                c[idx] = a[i + l * lda].mul_add(w, c[idx]);
            }
        }
    }
    Ok(())
}

/// TRSV: solves `T·x = b` in place (`x` enters holding `b`), where `T` is
/// the `uplo` triangle of the `n × n` column-major matrix `a`.
///
/// # Errors
/// [`ContractError::SingularDiagonal`] on a zero diagonal element, in which
/// case `x` may be partially updated; argument-contract errors leave `x`
/// untouched.
pub fn trsv<T: Scalar>(
    uplo: UpLo,
    n: usize,
    a: &[T],
    lda: usize,
    x: &mut [T],
    incx: isize,
) -> Result<(), ContractError> {
    contract::check_trsv(n, a.len(), lda, x.len(), incx)?;
    if n == 0 {
        return Ok(());
    }
    match uplo {
        UpLo::Lower => {
            // forward substitution, column-oriented: after computing x[j],
            // eliminate it from all later rows
            for j in 0..n {
                let d = a[j + j * lda];
                if d == T::ZERO {
                    return Err(ContractError::SingularDiagonal { index: j });
                }
                let at = vec_index(j, n, incx);
                let xj = x[at] / d;
                x[at] = xj;
                if xj != T::ZERO {
                    for i in j + 1..n {
                        let aij = a[i + j * lda];
                        x[vec_index(i, n, incx)] -= aij * xj;
                    }
                }
            }
        }
        UpLo::Upper => {
            // backward substitution
            for j in (0..n).rev() {
                let d = a[j + j * lda];
                if d == T::ZERO {
                    return Err(ContractError::SingularDiagonal { index: j });
                }
                let at = vec_index(j, n, incx);
                let xj = x[at] / d;
                x[at] = xj;
                if xj != T::ZERO {
                    for i in 0..j {
                        let aij = a[i + j * lda];
                        x[vec_index(i, n, incx)] -= aij * xj;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Scan the diagonal of the `n × n` triangle for zeros, so batch drivers
/// can reject a singular system before touching any right-hand side.
fn find_singular_diagonal<T: Scalar>(n: usize, a: &[T], lda: usize) -> Option<usize> {
    (0..n).find(|&j| a[j + j * lda] == T::ZERO)
}

/// TRSM (left side): solves `T·X = α·B` in place (`b` enters holding `B`,
/// leaves holding `X`), where `T` is the `uplo` triangle of the `m × m`
/// column-major matrix `a` and `B` is `m × n`.
///
/// Column-wise: each of `B`'s columns is an independent [`trsv`]-shaped
/// solve — which is also why TRSM parallelises so much better than TRSV
/// (the Li et al. comparison in the paper's related work).
///
/// # Errors
/// [`ContractError::SingularDiagonal`] if the triangle has a zero diagonal
/// element; `B` is untouched in that case (the diagonal is scanned before
/// any solve starts).
#[allow(clippy::too_many_arguments)]
pub fn trsm<T: Scalar>(
    uplo: UpLo,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) -> Result<(), ContractError> {
    contract::check_trsm(m, n, a.len(), lda, b.len(), ldb)?;
    if m == 0 || n == 0 {
        return Ok(());
    }
    if let Some(index) = find_singular_diagonal(m, a, lda) {
        return Err(ContractError::SingularDiagonal { index });
    }
    for j in 0..n {
        let col = &mut b[j * ldb..j * ldb + m];
        if alpha != T::ONE {
            for v in col.iter_mut() {
                *v *= alpha;
            }
        }
        // Diagonal pre-scanned above, per-column args derived from the
        // validated whole: this solve cannot fail.
        let _ = trsv(uplo, m, a, lda, col, 1);
    }
    Ok(())
}

/// Parallel TRSM: `B`'s columns split over workers dispatched through
/// [`pool::run_scoped`] (column solves are independent). The worker count
/// is work-based — one worker per [`pool::MIN_FLOPS_PER_THREAD`] flops of
/// the `≈ m²·n` solve ([`pool::effective_workers`]) — so small systems
/// run serially inline with zero dispatch cost.
///
/// # Errors
/// Same contract as [`trsm`]; the diagonal is scanned before any thread is
/// spawned, so worker threads can never encounter an error.
#[allow(clippy::too_many_arguments)]
pub fn trsm_parallel<T: Scalar>(
    threads: usize,
    uplo: UpLo,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) -> Result<(), ContractError> {
    contract::check_trsm(m, n, a.len(), lda, b.len(), ldb)?;
    if m == 0 || n == 0 {
        return Ok(());
    }
    if let Some(index) = find_singular_diagonal(m, a, lda) {
        return Err(ContractError::SingularDiagonal { index });
    }
    let flops = m.saturating_mul(m).saturating_mul(n);
    let chunks = pool::effective_workers(threads, flops, pool::MIN_FLOPS_PER_THREAD).clamp(1, n);
    if chunks <= 1 {
        return trsm(uplo, m, n, alpha, a, lda, b, ldb);
    }
    let per = n.div_ceil(chunks);
    let mut rest: &mut [T] = b;
    let mut jobs = Vec::with_capacity(chunks);
    let mut j0 = 0usize;
    while j0 < n {
        let cols = per.min(n - j0);
        let take = if j0 + cols >= n {
            rest.len()
        } else {
            cols * ldb
        };
        let (mine, r) = rest.split_at_mut(take);
        rest = r;
        jobs.push(move || {
            for j in 0..cols {
                let col = &mut mine[j * ldb..j * ldb + m];
                if alpha != T::ONE {
                    for v in col.iter_mut() {
                        *v *= alpha;
                    }
                }
                // Contract validated and diagonal pre-scanned before
                // spawning: the per-column solve cannot fail.
                let _ = trsv(uplo, m, a, lda, col, 1);
            }
        });
        j0 += cols;
    }
    pool::run_scoped(jobs);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm_ref;
    use crate::matrix::Matrix;

    fn filled(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        Matrix::from_fn(rows, cols, |i, j| {
            let h = seed
                .wrapping_mul(0x2545F4914F6CDD1D)
                .wrapping_add((i * 7919 + j * 104729) as u64);
            ((h >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        })
    }

    #[test]
    fn ger_matches_naive() {
        let (m, n) = (7, 5);
        let x: Vec<f64> = (0..m).map(|i| i as f64 + 1.0).collect();
        let y: Vec<f64> = (0..n).map(|j| (j as f64) * 0.5 - 1.0).collect();
        let a0 = filled(m, n, 1);
        let mut a = a0.clone();
        ger(m, n, 2.0, &x, 1, &y, 1, a.as_mut_slice(), m).unwrap();
        for j in 0..n {
            for i in 0..m {
                let want = a0[(i, j)] + 2.0 * x[i] * y[j];
                assert!((a[(i, j)] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ger_alpha_zero_untouched() {
        let (m, n) = (4, 4);
        let a0 = filled(m, n, 2);
        let mut a = a0.clone();
        ger(
            m,
            n,
            0.0,
            &vec![1.0; m],
            1,
            &vec![1.0; n],
            1,
            a.as_mut_slice(),
            m,
        )
        .unwrap();
        assert_eq!(a, a0);
    }

    #[test]
    fn ger_strided_vectors() {
        let (m, n) = (3, 2);
        let x = [1.0, 9.0, 2.0, 9.0, 3.0]; // stride 2 -> [1, 2, 3]
        let y = [4.0, 9.0, 9.0, 5.0]; // stride 3 -> [4, 5]
        let mut a = Matrix::<f64>::zeros(m, n);
        ger(m, n, 1.0, &x, 2, &y, 3, a.as_mut_slice(), m).unwrap();
        assert_eq!(a[(2, 1)], 15.0);
        assert_eq!(a[(0, 0)], 4.0);
    }

    #[test]
    fn ger_negative_increment() {
        let (m, n) = (3, 2);
        // incx = -1: logical x = [3, 2, 1]
        let x = [1.0, 2.0, 3.0];
        let y = [1.0, 10.0];
        let mut a = Matrix::<f64>::zeros(m, n);
        ger(m, n, 1.0, &x, -1, &y, 1, a.as_mut_slice(), m).unwrap();
        assert_eq!(a[(0, 0)], 3.0);
        assert_eq!(a[(2, 1)], 10.0);
    }

    #[test]
    fn ger_rejects_zero_increment() {
        let mut a = Matrix::<f64>::zeros(2, 2);
        let err = ger(
            2,
            2,
            1.0,
            &[1.0, 1.0],
            0,
            &[1.0, 1.0],
            1,
            a.as_mut_slice(),
            2,
        )
        .unwrap_err();
        assert_eq!(err, ContractError::ZeroIncrement { arg: "x" });
    }

    #[test]
    fn gemm_as_k_rank1_updates() {
        // definitional: C = A·B equals k GER updates with A's columns and
        // B's rows — ties GER to GEMM
        let (m, n, k) = (6, 5, 4);
        let a = filled(m, k, 3);
        let b = filled(k, n, 4);
        let mut via_gemm = Matrix::<f64>::zeros(m, n);
        gemm_ref(
            m,
            n,
            k,
            1.0,
            a.as_slice(),
            m,
            b.as_slice(),
            k,
            0.0,
            via_gemm.as_mut_slice(),
            m,
        )
        .unwrap();
        let mut via_ger = Matrix::<f64>::zeros(m, n);
        for l in 0..k {
            let col: Vec<f64> = (0..m).map(|i| a[(i, l)]).collect();
            let row: Vec<f64> = (0..n).map(|j| b[(l, j)]).collect();
            ger(m, n, 1.0, &col, 1, &row, 1, via_ger.as_mut_slice(), m).unwrap();
        }
        assert!(via_gemm.approx_eq(&via_ger, 1e-12));
    }

    #[test]
    fn syrk_matches_gemm_with_transpose() {
        let (n, k) = (6, 9);
        let a = filled(n, k, 5);
        // reference: full C = A * A^T via gemm with explicit A^T
        let at = Matrix::<f64>::from_fn(k, n, |i, j| a[(j, i)]);
        let mut full = Matrix::<f64>::zeros(n, n);
        gemm_ref(
            n,
            n,
            k,
            1.0,
            a.as_slice(),
            n,
            at.as_slice(),
            k,
            0.0,
            full.as_mut_slice(),
            n,
        )
        .unwrap();

        for uplo in [UpLo::Lower, UpLo::Upper] {
            let mut c = Matrix::<f64>::zeros(n, n);
            syrk(uplo, n, k, 1.0, a.as_slice(), n, 0.0, c.as_mut_slice(), n).unwrap();
            for j in 0..n {
                for i in 0..n {
                    let stored = match uplo {
                        UpLo::Lower => i >= j,
                        UpLo::Upper => i <= j,
                    };
                    if stored {
                        assert!((c[(i, j)] - full[(i, j)]).abs() < 1e-12, "{uplo:?} {i},{j}");
                    } else {
                        assert_eq!(c[(i, j)], 0.0, "untouched triangle {i},{j}");
                    }
                }
            }
        }
    }

    #[test]
    fn syrk_beta_semantics() {
        let (n, k) = (4, 3);
        let a = filled(n, k, 6);
        let mut c = Matrix::<f64>::zeros(n, n);
        c.fill(f64::NAN);
        // beta = 0 overwrites the stored triangle even over NaN
        syrk(
            UpLo::Lower,
            n,
            k,
            1.0,
            a.as_slice(),
            n,
            0.0,
            c.as_mut_slice(),
            n,
        )
        .unwrap();
        for j in 0..n {
            for i in j..n {
                assert!(c[(i, j)].is_finite());
            }
        }
    }

    #[test]
    fn trsv_lower_and_upper_solve() {
        let n = 8;
        // well-conditioned triangles: dominant diagonal
        let l = Matrix::<f64>::from_fn(n, n, |i, j| {
            if i == j {
                4.0 + i as f64
            } else if i > j {
                ((i * 3 + j) % 5) as f64 * 0.2 - 0.4
            } else {
                77.0 // garbage in the unused triangle must be ignored
            }
        });
        let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 1.5).collect();
        // b = L * x
        let mut b = vec![0.0; n];
        for j in 0..n {
            for i in j..n {
                b[i] += l[(i, j)] * xs[j];
            }
        }
        let mut x = b.clone();
        trsv(UpLo::Lower, n, l.as_slice(), n, &mut x, 1).unwrap();
        for i in 0..n {
            assert!((x[i] - xs[i]).abs() < 1e-10, "lower i={i}");
        }

        let u = Matrix::<f64>::from_fn(n, n, |i, j| {
            if i == j {
                3.0 + j as f64
            } else if i < j {
                ((i + 2 * j) % 7) as f64 * 0.15 - 0.3
            } else {
                -55.0
            }
        });
        let mut b = vec![0.0; n];
        for j in 0..n {
            for i in 0..=j {
                b[i] += u[(i, j)] * xs[j];
            }
        }
        let mut x = b.clone();
        trsv(UpLo::Upper, n, u.as_slice(), n, &mut x, 1).unwrap();
        for i in 0..n {
            assert!((x[i] - xs[i]).abs() < 1e-10, "upper i={i}");
        }
    }

    #[test]
    fn trsv_identity_is_noop() {
        let n = 5;
        let i_mat = Matrix::<f64>::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 });
        let mut x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let expect = x.clone();
        trsv(UpLo::Lower, n, i_mat.as_slice(), n, &mut x, 1).unwrap();
        assert_eq!(x, expect);
    }

    #[test]
    fn trsv_rejects_zero_diagonal() {
        let n = 3;
        let mut t = Matrix::<f64>::zeros(n, n);
        t[(0, 0)] = 1.0;
        t[(2, 2)] = 1.0; // t[(1,1)] stays 0
        let mut x = vec![1.0; n];
        let err = trsv(UpLo::Lower, n, t.as_slice(), n, &mut x, 1).unwrap_err();
        assert_eq!(err, ContractError::SingularDiagonal { index: 1 });
    }

    #[test]
    fn trsv_strided_x() {
        let n = 4;
        let l = Matrix::<f64>::from_fn(n, n, |i, j| {
            if i == j {
                2.0
            } else if i > j {
                0.5
            } else {
                0.0
            }
        });
        let xs = [1.0, -1.0, 2.0, 0.5];
        let mut b = vec![0.0; n];
        for j in 0..n {
            for i in j..n {
                b[i] += l[(i, j)] * xs[j];
            }
        }
        // embed b at stride 2
        let mut x = vec![0.0; 2 * n];
        for i in 0..n {
            x[2 * i] = b[i];
        }
        trsv(UpLo::Lower, n, l.as_slice(), n, &mut x, 2).unwrap();
        for i in 0..n {
            assert!((x[2 * i] - xs[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn trsm_reconstructs_b() {
        let (m, n) = (10, 7);
        let l = Matrix::<f64>::from_fn(m, m, |i, j| {
            if i == j {
                3.0 + i as f64 * 0.5
            } else if i > j {
                ((i + j) % 5) as f64 * 0.1 - 0.2
            } else {
                99.0 // ignored triangle
            }
        });
        let x_true = filled(m, n, 21);
        // B = L * X (using only the lower triangle)
        let mut b = Matrix::<f64>::zeros(m, n);
        for jc in 0..n {
            for j in 0..m {
                for i in j..m {
                    b[(i, jc)] += l[(i, j)] * x_true[(j, jc)];
                }
            }
        }
        let mut x = b.clone();
        trsm(UpLo::Lower, m, n, 1.0, l.as_slice(), m, x.as_mut_slice(), m).unwrap();
        assert!(
            x.approx_eq(&x_true, 1e-9),
            "max diff {}",
            x.max_abs_diff(&x_true)
        );
    }

    #[test]
    fn trsm_alpha_scales_rhs() {
        let m = 4;
        let i_mat = Matrix::<f64>::from_fn(m, m, |i, j| if i == j { 1.0 } else { 0.0 });
        let mut b = Matrix::<f64>::from_fn(m, 3, |i, j| (i + j) as f64);
        let expect = Matrix::<f64>::from_fn(m, 3, |i, j| 2.0 * (i + j) as f64);
        trsm(
            UpLo::Upper,
            m,
            3,
            2.0,
            i_mat.as_slice(),
            m,
            b.as_mut_slice(),
            m,
        )
        .unwrap();
        assert!(b.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn trsm_singular_leaves_b_untouched() {
        let m = 3;
        let mut t = Matrix::<f64>::zeros(m, m);
        t[(0, 0)] = 1.0; // t[(1,1)] stays 0
        t[(2, 2)] = 1.0;
        let b0 = Matrix::<f64>::from_fn(m, 2, |i, j| (i + j) as f64);
        let mut b = b0.clone();
        let err = trsm(UpLo::Lower, m, 2, 1.0, t.as_slice(), m, b.as_mut_slice(), m).unwrap_err();
        assert_eq!(err, ContractError::SingularDiagonal { index: 1 });
        assert_eq!(
            b, b0,
            "B must be untouched on a pre-scanned singular triangle"
        );
        let mut b = b0.clone();
        let err = trsm_parallel(
            4,
            UpLo::Lower,
            m,
            2,
            1.0,
            t.as_slice(),
            m,
            b.as_mut_slice(),
            m,
        )
        .unwrap_err();
        assert_eq!(err, ContractError::SingularDiagonal { index: 1 });
        assert_eq!(b, b0);
    }

    #[test]
    fn trsm_parallel_matches_serial() {
        let (m, n) = (32, 50);
        let u = Matrix::<f64>::from_fn(m, m, |i, j| {
            if i == j {
                5.0 + (j % 3) as f64
            } else if i < j {
                ((2 * i + j) % 7) as f64 * 0.1
            } else {
                -1.0
            }
        });
        let b0 = filled(m, n, 22);
        let mut serial = b0.clone();
        trsm(
            UpLo::Upper,
            m,
            n,
            1.5,
            u.as_slice(),
            m,
            serial.as_mut_slice(),
            m,
        )
        .unwrap();
        for threads in [1usize, 3, 8] {
            let mut par = b0.clone();
            trsm_parallel(
                threads,
                UpLo::Upper,
                m,
                n,
                1.5,
                u.as_slice(),
                m,
                par.as_mut_slice(),
                m,
            )
            .unwrap();
            assert!(serial.approx_eq(&par, 1e-12), "threads {threads}");
        }
    }

    #[test]
    fn trsm_single_column_equals_trsv() {
        let m = 9;
        let l = Matrix::<f64>::from_fn(m, m, |i, j| {
            if i == j {
                2.0
            } else if i > j {
                0.3
            } else {
                0.0
            }
        });
        let b: Vec<f64> = (0..m).map(|i| i as f64 + 1.0).collect();
        let mut via_trsm = b.clone();
        trsm(UpLo::Lower, m, 1, 1.0, l.as_slice(), m, &mut via_trsm, m).unwrap();
        let mut via_trsv = b.clone();
        trsv(UpLo::Lower, m, l.as_slice(), m, &mut via_trsv, 1).unwrap();
        assert_eq!(via_trsm, via_trsv);
    }
}
