//! Fault-injection hook for the execution substrate.
//!
//! The workspace-wide fault plane lives in `blob_core::fault`, but this
//! crate sits *below* `blob-core` in the dependency graph, so the thread
//! pool cannot call it directly. Instead the pool calls [`point`], which
//! consults a process-global hook that `blob_core::fault::install`
//! registers. With no hook (or the plane inactive) a point is a single
//! relaxed atomic load and a branch — the same zero-cost pattern as
//! [`crate::perturb::point`].
//!
//! Tests inside this crate can register their own hook (e.g. "kill the
//! first two workers") without pulling in `blob-core`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// What a fault point tells its caller to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Directive {
    /// No fault: carry on.
    Proceed,
    /// Terminate the current worker cleanly (worker-death injection).
    Die,
    /// Panic at the point (exercises unwind containment).
    Panic,
    /// Sleep for the given duration, then carry on.
    Delay(Duration),
}

/// Site names this crate's fault points use. `blob_core::fault::sites`
/// re-exports them so the plan vocabulary has a single source of truth.
pub mod sites {
    /// Thread-pool worker, between jobs (Die ⇒ worker death).
    pub const POOL_WORKER: &str = "pool.worker";
}

/// The hook signature: maps a site name to a directive.
pub type Hook = Box<dyn Fn(&'static str) -> Directive + Send + Sync>;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static HOOK: Mutex<Option<Hook>> = Mutex::new(None);

/// Installs (or replaces) the process-global hook. The hook only runs
/// while [`set_active`]`(true)` is in effect.
pub fn set_hook(hook: impl Fn(&'static str) -> Directive + Send + Sync + 'static) {
    *HOOK.lock().unwrap_or_else(PoisonError::into_inner) = Some(Box::new(hook));
}

/// Turns the hook on or off. Off ⇒ every point is the fast path.
pub fn set_active(active: bool) {
    ACTIVE.store(active, Ordering::Release);
}

/// A fault point inside the execution substrate. Site names come from
/// `blob_core::fault::sites` (e.g. `"pool.worker"`).
#[inline]
pub fn point(site: &'static str) -> Directive {
    // relaxed: arm gate only — a stale read skips at most one injection
    // window; the hook behind it is published under the registry lock
    if !ACTIVE.load(Ordering::Relaxed) {
        return Directive::Proceed;
    }
    armed_point(site)
}

#[cold]
fn armed_point(site: &'static str) -> Directive {
    let guard = HOOK.lock().unwrap_or_else(PoisonError::into_inner);
    match guard.as_ref() {
        Some(hook) => hook(site),
        None => Directive::Proceed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perturb::STRESS_LOCK;

    #[test]
    fn inactive_point_proceeds_without_consulting_hook() {
        let _guard = STRESS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_hook(|_| Directive::Die);
        set_active(false);
        assert_eq!(point("pool.worker"), Directive::Proceed);
    }

    #[test]
    fn active_point_follows_hook() {
        let _guard = STRESS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_hook(|site| {
            if site == "pool.worker" {
                Directive::Delay(Duration::from_millis(1))
            } else {
                Directive::Proceed
            }
        });
        set_active(true);
        assert_eq!(
            point("pool.worker"),
            Directive::Delay(Duration::from_millis(1))
        );
        set_active(false);
    }
}
