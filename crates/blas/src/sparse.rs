//! Sparse BLAS: CSR storage and SpMV — the paper's final future-work item
//! (§V): "we are currently working to support sparse BLAS computations in
//! GPU-BLOB".
//!
//! Compressed Sparse Row is the representative format the sparse-BLAS
//! literature converges on for SpMV. [`CsrMatrix`] validates its structure
//! on construction, so the kernels can index without per-element checks.

use crate::pool;
use crate::scalar::Scalar;

/// A sparse matrix in Compressed Sparse Row format.
///
/// Row `i`'s entries live at positions `row_ptr[i] .. row_ptr[i+1]` of
/// `col_idx`/`values`, with column indices strictly increasing within a
/// row.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T: Scalar> {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Builds a CSR matrix from raw arrays, validating the invariants.
    ///
    /// # Panics
    /// If `row_ptr` has the wrong length, is non-monotone, disagrees with
    /// the value count, or any column index is out of range / unsorted
    /// within its row.
    pub fn new(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<T>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr must have rows+1 entries");
        assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(row_ptr[rows], values.len(), "row_ptr must end at nnz");
        assert_eq!(
            col_idx.len(),
            values.len(),
            "col_idx/values length mismatch"
        );
        for i in 0..rows {
            assert!(row_ptr[i] <= row_ptr[i + 1], "row_ptr must be monotone");
            let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            for w in row.windows(2) {
                assert!(w[0] < w[1], "column indices must be strictly increasing");
            }
            if let Some(&last) = row.last() {
                assert!(last < cols, "column index {last} out of range");
            }
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds from `(row, col, value)` triplets; duplicates are summed.
    pub fn from_triplets(rows: usize, cols: usize, mut t: Vec<(usize, usize, T)>) -> Self {
        for &(r, c, _) in &t {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of range");
        }
        t.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(t.len());
        let mut values: Vec<T> = Vec::with_capacity(t.len());
        let mut prev: Option<(usize, usize)> = None;
        for (r, c, v) in t {
            if prev == Some((r, c)) {
                // `prev` is only Some after at least one push, so a last
                // element is guaranteed to exist here.
                if let Some(last) = values.last_mut() {
                    *last += v;
                }
            } else {
                col_idx.push(c);
                values.push(v);
                row_ptr[r + 1] += 1;
                prev = Some((r, c));
            }
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Self::new(rows, cols, row_ptr, col_idx, values)
    }

    /// Densifies a column-major buffer into CSR, keeping entries with
    /// `|v| > tol`.
    pub fn from_dense(rows: usize, cols: usize, dense: &[T], ld: usize, tol: f64) -> Self {
        assert!(ld >= rows.max(1));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for i in 0..rows {
            for j in 0..cols {
                let v = dense[i + j * ld];
                if v.abs().to_f64() > tol {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr[i + 1] = values.len();
        }
        Self::new(rows, cols, row_ptr, col_idx, values)
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Self::new(n, n, (0..=n).collect(), (0..n).collect(), vec![T::ONE; n])
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }
    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }
    /// Stored non-zero count.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }
    /// nnz / (rows·cols).
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// Converts to a dense column-major buffer with `ld = rows`.
    pub fn to_dense(&self) -> Vec<T> {
        let mut out = vec![T::ZERO; self.rows.max(1) * self.cols];
        for i in 0..self.rows {
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                out[i + self.col_idx[p] * self.rows] = self.values[p];
            }
        }
        out
    }

    /// Sparse matrix-vector multiply: `y ← α·A·x + β·y`.
    pub fn spmv(&self, alpha: T, x: &[T], beta: T, y: &mut [T]) {
        assert!(x.len() >= self.cols, "x too short");
        assert!(y.len() >= self.rows, "y too short");
        for (i, yi) in y.iter_mut().enumerate().take(self.rows) {
            let mut acc = T::ZERO;
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc = self.values[p].mul_add(x[self.col_idx[p]], acc);
            }
            *yi = if beta == T::ZERO {
                alpha * acc
            } else {
                acc.mul_add(alpha, beta * *yi)
            };
        }
    }

    /// Row-parallel SpMV dispatched through [`pool::run_scoped`].
    ///
    /// The worker count is work-based: one worker per
    /// [`pool::MIN_NNZ_PER_THREAD`] stored non-zeros
    /// ([`pool::effective_workers`]), so small matrices run serially
    /// inline instead of paying dispatch overhead.
    pub fn spmv_parallel(&self, threads: usize, alpha: T, x: &[T], beta: T, y: &mut [T]) {
        assert!(x.len() >= self.cols, "x too short");
        assert!(y.len() >= self.rows, "y too short");
        let chunks = pool::effective_workers(threads, self.nnz(), pool::MIN_NNZ_PER_THREAD)
            .min(self.rows.max(1));
        if chunks <= 1 {
            self.spmv(alpha, x, beta, y);
            return;
        }
        let per = self.rows.div_ceil(chunks);
        let mut rest: &mut [T] = &mut y[..self.rows];
        let mut jobs = Vec::with_capacity(chunks);
        let mut i0 = 0usize;
        while i0 < self.rows {
            let n = per.min(self.rows - i0);
            let (mine, r) = rest.split_at_mut(n);
            rest = r;
            let base = i0;
            jobs.push(move || {
                for (di, yi) in mine.iter_mut().enumerate() {
                    let i = base + di;
                    let mut acc = T::ZERO;
                    for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                        acc = self.values[p].mul_add(x[self.col_idx[p]], acc);
                    }
                    *yi = if beta == T::ZERO {
                        alpha * acc
                    } else {
                        acc.mul_add(alpha, beta * *yi)
                    };
                }
            });
            i0 += n;
        }
        pool::run_scoped(jobs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemv_ref;

    fn example() -> CsrMatrix<f64> {
        // [1 0 2]
        // [0 0 3]
        // [4 5 0]
        CsrMatrix::from_triplets(
            3,
            3,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 2, 3.0),
                (2, 0, 4.0),
                (2, 1, 5.0),
            ],
        )
    }

    #[test]
    fn construction_and_accessors() {
        let m = example();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 5);
        assert!((m.density() - 5.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn spmv_matches_dense_gemv() {
        let m = example();
        let dense = m.to_dense();
        let x = [1.0, 2.0, 3.0];
        let mut y_sparse = [0.5, 0.5, 0.5];
        let mut y_dense = [0.5, 0.5, 0.5];
        m.spmv(2.0, &x, 0.5, &mut y_sparse);
        gemv_ref(3, 3, 2.0, &dense, 3, &x, 1, 0.5, &mut y_dense, 1).unwrap();
        for i in 0..3 {
            assert!((y_sparse[i] - y_dense[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn beta_zero_ignores_garbage() {
        let m = example();
        let x = [1.0, 1.0, 1.0];
        let mut y = [f64::NAN; 3];
        m.spmv(1.0, &x, 0.0, &mut y);
        assert!(y.iter().all(|v| v.is_finite()));
        assert_eq!(y, [3.0, 3.0, 9.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.5), (1, 1, 1.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.to_dense(), vec![3.5, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn identity_round_trip() {
        let i = CsrMatrix::<f32>::identity(4);
        let x = [1.0f32, 2.0, 3.0, 4.0];
        let mut y = [0.0f32; 4];
        i.spmv(1.0, &x, 0.0, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn from_dense_thresholds_small_entries() {
        let dense = [1.0f64, 0.0, 1e-12, 2.0]; // 2x2 col-major
        let m = CsrMatrix::from_dense(2, 2, &dense, 2, 1e-9);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.to_dense(), vec![1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn parallel_matches_serial() {
        // banded 500x500 with ~5 entries per row
        let n = 500;
        let mut trip = Vec::new();
        for i in 0..n {
            for d in -2i64..=2 {
                let j = i as i64 + d;
                if (0..n as i64).contains(&j) {
                    trip.push((i, j as usize, (i + j as usize) as f64 * 0.01 - 1.0));
                }
            }
        }
        let m = CsrMatrix::from_triplets(n, n, trip);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut y1 = vec![0.25; n];
        let mut y2 = vec![0.25; n];
        m.spmv(1.5, &x, -0.5, &mut y1);
        for threads in [1, 3, 8] {
            let mut y = y2.clone();
            m.spmv_parallel(threads, 1.5, &x, -0.5, &mut y);
            for i in 0..n {
                assert!((y[i] - y1[i]).abs() < 1e-12, "threads {threads} row {i}");
            }
        }
        let _ = &mut y2;
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = CsrMatrix::<f64>::from_triplets(3, 3, vec![(2, 0, 7.0)]);
        let x = [1.0, 1.0, 1.0];
        let mut y = [9.0; 3];
        m.spmv(1.0, &x, 0.0, &mut y);
        assert_eq!(y, [0.0, 0.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_columns_rejected() {
        let _ = CsrMatrix::<f64>::new(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_column_rejected() {
        let _ = CsrMatrix::<f64>::new(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "row_ptr must end at nnz")]
    fn inconsistent_row_ptr_rejected() {
        let _ = CsrMatrix::<f64>::new(1, 2, vec![0, 2], vec![0], vec![1.0]);
    }
}
