//! cblas-style argument-contract validation for every public kernel.
//!
//! Reference BLAS responds to a bad argument by calling `XERBLA`, which
//! prints and aborts.  That is exactly the failure mode a long-running
//! benchmark harness cannot afford, so every public kernel in this crate
//! instead routes its arguments through one of the `check_*` functions
//! below *before touching any slice*, and surfaces problems as a typed
//! [`ContractError`].  The `blob-check` static-analysis tool's
//! `contract-guard` rule verifies the "before touching any slice" part
//! mechanically.
//!
//! The contract mirrors the cblas one for column-major storage:
//!
//! - dimensions are arbitrary `usize` (zero is legal and means "empty");
//! - a leading dimension must satisfy `ld >= max(1, rows)`;
//! - a vector increment must be non-zero (negative walks the vector
//!   backwards, as in BLAS: element `i` lives at `(n-1-i) * |inc|`);
//! - every buffer must be long enough for the highest element the kernel
//!   will address.

use core::fmt;

/// A violated kernel-argument contract.
///
/// Each variant carries enough context to identify the offending argument
/// without the caller having to re-derive it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContractError {
    /// A leading dimension is below `max(1, rows)`.
    LeadingDim {
        /// Which matrix argument (`"a"`, `"b"`, `"c"`).
        arg: &'static str,
        /// The supplied leading dimension.
        ld: usize,
        /// The number of rows the matrix claims to have.
        rows: usize,
    },
    /// A vector increment of zero was supplied.
    ZeroIncrement {
        /// Which vector argument (`"x"`, `"y"`).
        arg: &'static str,
    },
    /// A buffer is too short for the elements the kernel would address.
    BufferTooShort {
        /// Which buffer argument.
        arg: &'static str,
        /// Length the contract requires.
        required: usize,
        /// Length actually supplied.
        actual: usize,
    },
    /// A strided batch layout would make consecutive problems overlap.
    OverlappingBatchStride {
        /// Which batched buffer argument.
        arg: &'static str,
        /// The supplied batch stride.
        stride: usize,
        /// Minimum stride for non-overlapping problems.
        required: usize,
    },
    /// A triangular solve met a zero on the diagonal.
    SingularDiagonal {
        /// Index of the zero diagonal element.
        index: usize,
    },
}

impl fmt::Display for ContractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LeadingDim { arg, ld, rows } => write!(
                f,
                "leading dimension of `{arg}` is {ld} but must be >= max(1, {rows})"
            ),
            Self::ZeroIncrement { arg } => {
                write!(f, "increment of vector `{arg}` must be non-zero")
            }
            Self::BufferTooShort {
                arg,
                required,
                actual,
            } => write!(
                f,
                "buffer `{arg}` holds {actual} elements but the call addresses {required}"
            ),
            Self::OverlappingBatchStride {
                arg,
                stride,
                required,
            } => write!(
                f,
                "batch stride of `{arg}` is {stride} but problems need at least {required} to not overlap"
            ),
            Self::SingularDiagonal { index } => {
                write!(f, "triangular matrix is singular: zero diagonal at index {index}")
            }
        }
    }
}

impl std::error::Error for ContractError {}

/// Storage offset of logical vector element `i` under the BLAS increment
/// convention: for `inc < 0` the vector is traversed backwards, with
/// logical element `i` of an `n`-element vector at `(n - 1 - i) * |inc|`.
///
/// `n` must be non-zero and `i < n`; callers validate via [`check_vector`]
/// first.
#[inline]
pub fn vec_index(i: usize, n: usize, inc: isize) -> usize {
    debug_assert!(i < n);
    if inc >= 0 {
        i * inc as usize
    } else {
        (n - 1 - i) * inc.unsigned_abs()
    }
}

/// Number of buffer elements an `n`-element vector with increment `inc`
/// addresses: `1 + (n-1) * |inc|`, or zero when `n == 0`.
#[inline]
pub fn vec_span(n: usize, inc: isize) -> usize {
    if n == 0 {
        0
    } else {
        1 + (n - 1) * inc.unsigned_abs()
    }
}

/// Validate one column-major matrix argument: `ld >= max(1, rows)` and the
/// buffer holds `ld * cols` elements (the last column may be short by
/// `ld - rows`, but we require the full panel like cblas does — it keeps
/// blocked kernels free to read whole panels).
pub fn check_matrix(
    arg: &'static str,
    buf_len: usize,
    rows: usize,
    cols: usize,
    ld: usize,
) -> Result<(), ContractError> {
    if ld < rows.max(1) {
        return Err(ContractError::LeadingDim { arg, ld, rows });
    }
    // An empty matrix (either dimension zero) addresses no storage.
    let required = if rows == 0 || cols == 0 {
        0
    } else {
        ld * (cols - 1) + rows
    };
    if buf_len < required {
        return Err(ContractError::BufferTooShort {
            arg,
            required,
            actual: buf_len,
        });
    }
    Ok(())
}

/// Validate one strided vector argument: `inc != 0` and the buffer covers
/// `1 + (n-1)*|inc|` elements.
pub fn check_vector(
    arg: &'static str,
    buf_len: usize,
    n: usize,
    inc: isize,
) -> Result<(), ContractError> {
    if inc == 0 {
        return Err(ContractError::ZeroIncrement { arg });
    }
    let required = vec_span(n, inc);
    if buf_len < required {
        return Err(ContractError::BufferTooShort {
            arg,
            required,
            actual: buf_len,
        });
    }
    Ok(())
}

/// Full GEMM contract: `C(m×n) += A(m×k) · B(k×n)`, all column-major.
#[allow(clippy::too_many_arguments)]
pub fn check_gemm(
    m: usize,
    n: usize,
    k: usize,
    a_len: usize,
    lda: usize,
    b_len: usize,
    ldb: usize,
    c_len: usize,
    ldc: usize,
) -> Result<(), ContractError> {
    check_matrix("a", a_len, m, k, lda)?;
    check_matrix("b", b_len, k, n, ldb)?;
    check_matrix("c", c_len, m, n, ldc)
}

/// Full GEMV contract: `y(m) += A(m×n) · x(n)`, column-major `A`, strided
/// `x` and `y`.
#[allow(clippy::too_many_arguments)]
pub fn check_gemv(
    m: usize,
    n: usize,
    a_len: usize,
    lda: usize,
    x_len: usize,
    incx: isize,
    y_len: usize,
    incy: isize,
) -> Result<(), ContractError> {
    check_matrix("a", a_len, m, n, lda)?;
    check_vector("x", x_len, n, incx)?;
    check_vector("y", y_len, m, incy)
}

/// GER contract: `A(m×n) += alpha · x(m) · y(n)ᵀ`.
#[allow(clippy::too_many_arguments)]
pub fn check_ger(
    m: usize,
    n: usize,
    x_len: usize,
    incx: isize,
    y_len: usize,
    incy: isize,
    a_len: usize,
    lda: usize,
) -> Result<(), ContractError> {
    check_vector("x", x_len, m, incx)?;
    check_vector("y", y_len, n, incy)?;
    check_matrix("a", a_len, m, n, lda)
}

/// SYRK contract: `C(n×n) += alpha · A(n×k) · Aᵀ`.
pub fn check_syrk(
    n: usize,
    k: usize,
    a_len: usize,
    lda: usize,
    c_len: usize,
    ldc: usize,
) -> Result<(), ContractError> {
    check_matrix("a", a_len, n, k, lda)?;
    check_matrix("c", c_len, n, n, ldc)
}

/// TRSV contract: solve `op(A) · x = b` in place for triangular `A(n×n)`.
pub fn check_trsv(
    n: usize,
    a_len: usize,
    lda: usize,
    x_len: usize,
    incx: isize,
) -> Result<(), ContractError> {
    check_matrix("a", a_len, n, n, lda)?;
    check_vector("x", x_len, n, incx)
}

/// TRSM contract: solve `A · X = alpha · B` in place for triangular
/// `A(m×m)` and `B(m×n)`.
pub fn check_trsm(
    m: usize,
    n: usize,
    a_len: usize,
    lda: usize,
    b_len: usize,
    ldb: usize,
) -> Result<(), ContractError> {
    check_matrix("a", a_len, m, m, lda)?;
    check_matrix("b", b_len, m, n, ldb)
}

/// One strided-batch operand: per-problem matrix contract plus
/// non-overlap of consecutive problems in the shared buffer.
#[allow(clippy::too_many_arguments)]
pub fn check_batched_operand(
    arg: &'static str,
    buf_len: usize,
    batch: usize,
    rows: usize,
    cols: usize,
    ld: usize,
    stride: usize,
) -> Result<(), ContractError> {
    if ld < rows.max(1) {
        return Err(ContractError::LeadingDim { arg, ld, rows });
    }
    let per_problem = if rows == 0 || cols == 0 {
        0
    } else {
        ld * (cols - 1) + rows
    };
    if batch == 0 || per_problem == 0 {
        return Ok(());
    }
    if batch > 1 && stride < per_problem {
        return Err(ContractError::OverlappingBatchStride {
            arg,
            stride,
            required: per_problem,
        });
    }
    let required = stride * (batch - 1) + per_problem;
    if buf_len < required {
        return Err(ContractError::BufferTooShort {
            arg,
            required,
            actual: buf_len,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_accepts_tight_and_padded_layouts() {
        assert!(check_matrix("a", 12, 3, 4, 3).is_ok());
        assert!(check_matrix("a", 5 * 3 + 3, 3, 4, 5).is_ok());
        // last column may stop at `rows`, not `ld`
        assert!(check_matrix("a", 5 * 3 + 3, 3, 4, 5).is_ok());
    }

    #[test]
    fn matrix_rejects_small_ld() {
        assert_eq!(
            check_matrix("a", 100, 4, 4, 3),
            Err(ContractError::LeadingDim {
                arg: "a",
                ld: 3,
                rows: 4
            })
        );
    }

    #[test]
    fn matrix_requires_ld_one_when_empty_rows() {
        // cblas: ld >= max(1, rows) even for 0-row matrices
        assert!(check_matrix("a", 0, 0, 4, 0).is_err());
        assert!(check_matrix("a", 3, 0, 4, 1).is_ok());
    }

    #[test]
    fn matrix_rejects_short_buffer() {
        assert_eq!(
            check_matrix("b", 11, 3, 4, 3),
            Err(ContractError::BufferTooShort {
                arg: "b",
                required: 12,
                actual: 11
            })
        );
    }

    #[test]
    fn zero_cols_needs_no_buffer() {
        assert!(check_matrix("a", 0, 7, 0, 7).is_ok());
    }

    #[test]
    fn vector_rejects_zero_increment() {
        assert_eq!(
            check_vector("x", 10, 5, 0),
            Err(ContractError::ZeroIncrement { arg: "x" })
        );
    }

    #[test]
    fn vector_span_and_negative_increments() {
        assert!(check_vector("x", 9, 5, 2).is_ok()); // needs 1+4*2 = 9
        assert!(check_vector("x", 8, 5, 2).is_err());
        assert!(check_vector("x", 9, 5, -2).is_ok()); // same span backwards
        assert!(check_vector("x", 0, 0, -3).is_ok()); // empty vector: no storage
    }

    #[test]
    fn vec_index_walks_backwards_for_negative_inc() {
        // n = 4, inc = -2: logical 0..4 live at 6, 4, 2, 0
        let offsets: Vec<usize> = (0..4).map(|i| vec_index(i, 4, -2)).collect();
        assert_eq!(offsets, vec![6, 4, 2, 0]);
        let fwd: Vec<usize> = (0..4).map(|i| vec_index(i, 4, 2)).collect();
        assert_eq!(fwd, vec![0, 2, 4, 6]);
    }

    #[test]
    fn gemm_contract_checks_all_three_operands() {
        assert!(check_gemm(2, 3, 4, 8, 2, 12, 4, 6, 2).is_ok());
        assert!(matches!(
            check_gemm(2, 3, 4, 8, 1, 12, 4, 6, 2),
            Err(ContractError::LeadingDim { arg: "a", .. })
        ));
        assert!(matches!(
            check_gemm(2, 3, 4, 8, 2, 11, 4, 6, 2),
            Err(ContractError::BufferTooShort { arg: "b", .. })
        ));
        assert!(matches!(
            check_gemm(2, 3, 4, 8, 2, 12, 4, 5, 2),
            Err(ContractError::BufferTooShort { arg: "c", .. })
        ));
    }

    #[test]
    fn batched_operand_rejects_overlap() {
        // 2 problems of 3x3 tight (9 elems) with stride 4 overlap
        assert!(matches!(
            check_batched_operand("a", 100, 2, 3, 3, 3, 4),
            Err(ContractError::OverlappingBatchStride {
                arg: "a",
                stride: 4,
                required: 9
            })
        ));
        assert!(check_batched_operand("a", 9 + 9, 2, 3, 3, 3, 9).is_ok());
        // single problem: stride unused
        assert!(check_batched_operand("a", 9, 1, 3, 3, 3, 0).is_ok());
    }

    #[test]
    fn errors_render_useful_messages() {
        let e = ContractError::LeadingDim {
            arg: "a",
            ld: 2,
            rows: 5,
        };
        assert!(e.to_string().contains("leading dimension"));
        let e = ContractError::SingularDiagonal { index: 3 };
        assert!(e.to_string().contains("singular"));
    }
}
