//! Edge-shape tests: every GEMM/GEMV entry point against a naive reference
//! written independently in this file, across the shapes that historically
//! break BLAS implementations — empty dimensions, `β = 0` with poisoned `C`,
//! negative vector increments, and padded leading dimensions — for both
//! `f32` and `f64`.

use blob_blas::scalar::Scalar;
use blob_blas::{gemm, gemm_blocked, gemm_parallel, gemm_ref, gemv, gemv_parallel, gemv_ref};

/// Storage offset of logical element `i` of an `n`-vector with stride `inc`
/// (BLAS convention: negative increments walk the buffer backwards).
fn at(i: usize, n: usize, inc: isize) -> usize {
    let step = inc.unsigned_abs();
    if inc >= 0 {
        i * step
    } else {
        (n - 1 - i) * step
    }
}

/// Naive GEMM, written without reference to the crate's kernels: per-element
/// dot products, honoring the `β = 0` overwrite rule.
fn naive_gemm<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    for j in 0..n {
        for i in 0..m {
            let mut acc = T::ZERO;
            for p in 0..k {
                acc += a[i + p * lda] * b[p + j * ldb];
            }
            let out = &mut c[i + j * ldc];
            *out = if beta == T::ZERO {
                alpha * acc
            } else {
                alpha * acc + beta * *out
            };
        }
    }
}

/// Naive GEMV with explicit increments, honoring the `β = 0` overwrite rule.
fn naive_gemv<T: Scalar>(
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    x: &[T],
    incx: isize,
    beta: T,
    y: &mut [T],
    incy: isize,
) {
    for i in 0..m {
        let mut acc = T::ZERO;
        for j in 0..n {
            acc += a[i + j * lda] * x[at(j, n, incx)];
        }
        let out = &mut y[at(i, m, incy)];
        *out = if beta == T::ZERO {
            alpha * acc
        } else {
            alpha * acc + beta * *out
        };
    }
}

/// Deterministic fill in roughly [-0.5, 0.5).
fn fill<T: Scalar>(seed: u64, len: usize) -> Vec<T> {
    (0..len)
        .map(|i| {
            let mut h = seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15);
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51afd7ed558ccd);
            h ^= h >> 33;
            T::from_f64((h >> 11) as f64 / (1u64 << 53) as f64 - 0.5)
        })
        .collect()
}

fn assert_close<T: Scalar>(got: &[T], want: &[T], tol: f64, ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        let (g, w) = (g.to_f64(), w.to_f64());
        assert!(
            (g - w).abs() <= tol * w.abs().max(1.0),
            "{ctx}: element {i}: {g} vs {w}"
        );
    }
}

/// Every GEMM entry point, one shape, vs the naive reference.
fn check_gemm_all_entry_points<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    lda: usize,
    ldb: usize,
    ldc: usize,
    alpha: f64,
    beta: f64,
    c0: &[T],
    tol: f64,
) {
    let alpha = T::from_f64(alpha);
    let beta = T::from_f64(beta);
    let a: Vec<T> = fill(11, if k == 0 { 0 } else { lda * (k - 1) + m });
    let b: Vec<T> = fill(22, if n == 0 { 0 } else { ldb * (n - 1) + k });
    let mut want = c0.to_vec();
    naive_gemm(m, n, k, alpha, &a, lda, &b, ldb, beta, &mut want, ldc);

    let mut c = c0.to_vec();
    gemm_ref(m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c, ldc).unwrap();
    assert_close(&c, &want, tol, "gemm_ref");

    let mut c = c0.to_vec();
    gemm_blocked(m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c, ldc).unwrap();
    assert_close(&c, &want, tol, "gemm_blocked");

    let mut c = c0.to_vec();
    gemm(m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c, ldc).unwrap();
    assert_close(&c, &want, tol, "gemm");

    for threads in [1, 4] {
        let mut c = c0.to_vec();
        gemm_parallel(threads, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c, ldc).unwrap();
        assert_close(&c, &want, tol, "gemm_parallel");
    }
}

fn c_len(m: usize, n: usize, ldc: usize) -> usize {
    if m == 0 || n == 0 {
        0
    } else {
        ldc * (n - 1) + m
    }
}

#[test]
fn gemm_empty_dimensions_f64() {
    // m == 0, n == 0: C is empty and nothing must be touched.
    for (m, n, k) in [(0, 5, 3), (5, 0, 3), (0, 0, 0)] {
        let c0: Vec<f64> = fill(33, c_len(m, n, m.max(1)));
        check_gemm_all_entry_points::<f64>(
            m,
            n,
            k,
            m.max(1),
            k.max(1),
            m.max(1),
            1.5,
            0.5,
            &c0,
            1e-12,
        );
    }
}

#[test]
fn gemm_k_zero_is_pure_scale_f64() {
    // k == 0 degenerates to C ← β·C; A and B are empty.
    let (m, n) = (4, 3);
    let c0: Vec<f64> = fill(44, m * n);
    check_gemm_all_entry_points::<f64>(m, n, 0, m, 1, m, 2.0, -0.5, &c0, 1e-12);
}

#[test]
fn gemm_beta_zero_overwrites_nan_poisoned_c() {
    // β = 0 must *overwrite*, not multiply: NaN·0 = NaN would leak through
    // a read-modify-write implementation.
    let (m, n, k) = (7, 6, 5);
    let c0 = vec![f64::NAN; m * n];
    check_gemm_all_entry_points::<f64>(m, n, k, m, k, m, 1.25, 0.0, &c0, 1e-12);

    let c0f = vec![f32::NAN; m * n];
    check_gemm_all_entry_points::<f32>(m, n, k, m, k, m, 1.25, 0.0, &c0f, 1e-5);
}

#[test]
fn gemm_padded_leading_dimensions() {
    // ld strictly greater than rows on every operand; padding must be
    // neither read (beyond contract) nor written.
    let (m, n, k) = (5, 4, 6);
    let (lda, ldb, ldc) = (m + 3, k + 2, m + 1);
    let c0: Vec<f64> = fill(55, c_len(m, n, ldc));
    check_gemm_all_entry_points::<f64>(m, n, k, lda, ldb, ldc, -1.0, 2.0, &c0, 1e-12);

    let c0f: Vec<f32> = fill(66, c_len(m, n, ldc));
    check_gemm_all_entry_points::<f32>(m, n, k, lda, ldb, ldc, -1.0, 2.0, &c0f, 1e-4);

    // the pad rows of C are untouched
    let mut c = c0.clone();
    let a: Vec<f64> = fill(11, lda * (k - 1) + m);
    let b: Vec<f64> = fill(22, ldb * (n - 1) + k);
    gemm_blocked(m, n, k, -1.0, &a, lda, &b, ldb, 2.0, &mut c, ldc).unwrap();
    for j in 0..n - 1 {
        for i in m..ldc {
            assert_eq!(c[i + j * ldc], c0[i + j * ldc], "pad ({i},{j}) modified");
        }
    }
}

#[test]
fn gemm_larger_shape_f32_vs_naive() {
    let (m, n, k) = (33, 29, 41);
    let c0: Vec<f32> = fill(77, m * n);
    check_gemm_all_entry_points::<f32>(m, n, k, m, k, m, 0.75, 1.5, &c0, 1e-3);
}

/// Every GEMV entry point, one configuration, vs the naive reference.
fn check_gemv_all_entry_points<T: Scalar>(
    m: usize,
    n: usize,
    lda: usize,
    incx: isize,
    incy: isize,
    alpha: f64,
    beta: f64,
    y0: &[T],
    tol: f64,
) {
    let alpha = T::from_f64(alpha);
    let beta = T::from_f64(beta);
    let a: Vec<T> = fill(10, if n == 0 { 0 } else { lda * (n - 1) + m });
    let xlen = if n == 0 {
        0
    } else {
        1 + (n - 1) * incx.unsigned_abs()
    };
    let x: Vec<T> = fill(20, xlen);
    let mut want = y0.to_vec();
    naive_gemv(m, n, alpha, &a, lda, &x, incx, beta, &mut want, incy);

    let mut y = y0.to_vec();
    gemv_ref(m, n, alpha, &a, lda, &x, incx, beta, &mut y, incy).unwrap();
    assert_close(&y, &want, tol, "gemv_ref");

    let mut y = y0.to_vec();
    gemv(m, n, alpha, &a, lda, &x, incx, beta, &mut y, incy).unwrap();
    assert_close(&y, &want, tol, "gemv");

    for threads in [1, 4] {
        let mut y = y0.to_vec();
        gemv_parallel(threads, m, n, alpha, &a, lda, &x, incx, beta, &mut y, incy).unwrap();
        assert_close(&y, &want, tol, "gemv_parallel");
    }
}

fn y_len(m: usize, incy: isize) -> usize {
    if m == 0 {
        0
    } else {
        1 + (m - 1) * incy.unsigned_abs()
    }
}

#[test]
fn gemv_empty_dimensions() {
    // m == 0: y empty. n == 0: y ← β·y only.
    let y0: Vec<f64> = vec![];
    check_gemv_all_entry_points::<f64>(0, 4, 1, 1, 1, 1.0, 0.5, &y0, 1e-12);
    let y0: Vec<f64> = fill(30, 5);
    check_gemv_all_entry_points::<f64>(5, 0, 5, 1, 1, 1.0, -2.0, &y0, 1e-12);
}

#[test]
fn gemv_beta_zero_overwrites_nan_poisoned_y() {
    let (m, n) = (9, 7);
    let y0 = vec![f64::NAN; m];
    check_gemv_all_entry_points::<f64>(m, n, m, 1, 1, 1.5, 0.0, &y0, 1e-12);
    let y0f = vec![f32::NAN; m];
    check_gemv_all_entry_points::<f32>(m, n, m, 1, 1, 1.5, 0.0, &y0f, 1e-5);
}

#[test]
fn gemv_negative_and_strided_increments() {
    let (m, n) = (6, 5);
    for (incx, incy) in [(-1, 1), (1, -1), (-2, 3), (2, -2), (-1, -1)] {
        let y0: Vec<f64> = fill(40, y_len(m, incy));
        check_gemv_all_entry_points::<f64>(m, n, m, incx, incy, 1.25, 0.75, &y0, 1e-12);
        let y0f: Vec<f32> = fill(50, y_len(m, incy));
        check_gemv_all_entry_points::<f32>(m, n, m, incx, incy, 1.25, 0.75, &y0f, 1e-4);
    }
}

#[test]
fn gemv_padded_leading_dimension() {
    let (m, n) = (8, 6);
    let lda = m + 5; // ld strictly greater than rows
    let y0: Vec<f64> = fill(60, m);
    check_gemv_all_entry_points::<f64>(m, n, lda, 1, 1, -0.5, 1.0, &y0, 1e-12);
    let y0f: Vec<f32> = fill(70, m);
    check_gemv_all_entry_points::<f32>(m, n, lda, 1, 1, -0.5, 1.0, &y0f, 1e-4);
}

#[test]
fn gemv_tall_parallel_shape_vs_naive() {
    // tall enough that gemv_parallel actually splits into chunks
    let (m, n) = (513, 17);
    let y0: Vec<f64> = fill(80, m);
    check_gemv_all_entry_points::<f64>(m, n, m, 1, 1, 2.0, -1.0, &y0, 1e-11);
}
