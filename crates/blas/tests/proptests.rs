//! Property-based tests for the BLAS kernels.
//!
//! Strategy: generate random shapes, leading dimensions, scalars and data,
//! then assert algebraic invariants that must hold regardless of the
//! blocking/threading path taken — agreement with the reference kernel,
//! linearity, and the BLAS α/β contracts.
//!
//! Driven by `blob_core::testkit` (the in-repo proptest stand-in); a failing
//! case prints its seed so it can be replayed with `testkit::run_case`.

use blob_blas::{
    gemm_blocked, gemm_blocked_with, gemm_parallel, gemm_ref, gemv_parallel, gemv_ref, level1,
    BlockConfig, Matrix,
};
use blob_core::testkit::{forall, Config, Gen};

/// Shape generator matching the original proptest `1..48` ranges.
fn dims(g: &mut Gen) -> (usize, usize, usize) {
    (g.usize_in(1, 47), g.usize_in(1, 47), g.usize_in(1, 47))
}

#[test]
fn gemm_blocked_agrees_with_reference() {
    forall(Config::default().cases(64), |g| {
        let (m, n, k) = dims(g);
        let pad_a = g.usize_in(0, 3);
        let pad_b = g.usize_in(0, 3);
        let alpha = g.f64_in(-2.0, 2.0);
        let beta = g.f64_in(-2.0, 2.0);
        let seed = g.u64();
        let a = Matrix::from_fn(m, k, |i, j| hash01(seed, i, j) - 0.5);
        let b = Matrix::from_fn(k, n, |i, j| hash01(seed ^ 0xabc, i, j) - 0.5);
        let c0 = Matrix::from_fn(m, n, |i, j| hash01(seed ^ 0xdef, i, j) - 0.5);
        // re-embed with padded lds
        let a = pad_mat(&a, pad_a);
        let b = pad_mat(&b, pad_b);

        let mut c_ref = c0.clone();
        gemm_ref(
            m,
            n,
            k,
            alpha,
            a.as_slice(),
            a.ld(),
            b.as_slice(),
            b.ld(),
            beta,
            c_ref.as_mut_slice(),
            m,
        )
        .unwrap();
        let mut c_blk = c0.clone();
        gemm_blocked(
            m,
            n,
            k,
            alpha,
            a.as_slice(),
            a.ld(),
            b.as_slice(),
            b.ld(),
            beta,
            c_blk.as_mut_slice(),
            m,
        )
        .unwrap();
        assert!(
            c_ref.approx_eq(&c_blk, 1e-9),
            "max diff {}",
            c_ref.max_abs_diff(&c_blk)
        );
    });
}

#[test]
fn gemm_parallel_agrees_with_reference() {
    forall(Config::default().cases(64), |g| {
        let (m, n, k) = dims(g);
        let threads = g.usize_in(1, 8);
        let seed = g.u64();
        let a = Matrix::from_fn(m, k, |i, j| hash01(seed, i, j) - 0.5);
        let b = Matrix::from_fn(k, n, |i, j| hash01(seed ^ 1, i, j) - 0.5);
        let mut c_ref = Matrix::zeros(m, n);
        gemm_ref(
            m,
            n,
            k,
            1.0,
            a.as_slice(),
            m,
            b.as_slice(),
            k,
            0.0,
            c_ref.as_mut_slice(),
            m,
        )
        .unwrap();
        let mut c_par = Matrix::zeros(m, n);
        gemm_parallel(
            threads,
            m,
            n,
            k,
            1.0,
            a.as_slice(),
            m,
            b.as_slice(),
            k,
            0.0,
            c_par.as_mut_slice(),
            m,
        )
        .unwrap();
        assert!(c_ref.approx_eq(&c_par, 1e-9));
    });
}

/// Any valid blocking configuration computes the same product.
#[test]
fn gemm_blocking_config_invariant() {
    forall(Config::default().cases(64), |g| {
        let (m, n, k) = dims(g);
        let mc = g.usize_in(1, 63);
        let kc = g.usize_in(1, 63);
        let nc = g.usize_in(1, 63);
        let seed = g.u64();
        let a = Matrix::from_fn(m, k, |i, j| hash01(seed, i, j) - 0.5);
        let b = Matrix::from_fn(k, n, |i, j| hash01(seed ^ 0x55, i, j) - 0.5);
        let mut c_ref = Matrix::zeros(m, n);
        gemm_ref(
            m,
            n,
            k,
            1.0,
            a.as_slice(),
            m,
            b.as_slice(),
            k,
            0.0,
            c_ref.as_mut_slice(),
            m,
        )
        .unwrap();
        let mut c_cfg = Matrix::zeros(m, n);
        gemm_blocked_with(
            BlockConfig::new(mc, kc, nc),
            m,
            n,
            k,
            1.0,
            a.as_slice(),
            m,
            b.as_slice(),
            k,
            0.0,
            c_cfg.as_mut_slice(),
            m,
        )
        .unwrap();
        assert!(c_ref.approx_eq(&c_cfg, 1e-9));
    });
}

/// GEMM is linear in alpha: gemm(2α) == 2 * gemm(α) when β = 0.
#[test]
fn gemm_linear_in_alpha() {
    forall(Config::default().cases(64), |g| {
        let (m, n, k) = dims(g);
        let alpha = g.f64_in(-2.0, 2.0);
        let seed = g.u64();
        let a = Matrix::from_fn(m, k, |i, j| hash01(seed, i, j) - 0.5);
        let b = Matrix::from_fn(k, n, |i, j| hash01(seed ^ 2, i, j) - 0.5);
        let mut c1 = Matrix::zeros(m, n);
        gemm_blocked(
            m,
            n,
            k,
            alpha,
            a.as_slice(),
            m,
            b.as_slice(),
            k,
            0.0,
            c1.as_mut_slice(),
            m,
        )
        .unwrap();
        let mut c2 = Matrix::zeros(m, n);
        gemm_blocked(
            m,
            n,
            k,
            2.0 * alpha,
            a.as_slice(),
            m,
            b.as_slice(),
            k,
            0.0,
            c2.as_mut_slice(),
            m,
        )
        .unwrap();
        for j in 0..n {
            for i in 0..m {
                assert!((2.0 * c1[(i, j)] - c2[(i, j)]).abs() < 1e-9);
            }
        }
    });
}

/// The β contract: gemm(α, β) == gemm(α, 0) + β·C₀.
#[test]
fn gemm_beta_contract() {
    forall(Config::default().cases(64), |g| {
        let (m, n, k) = dims(g);
        let beta = g.f64_in(-2.0, 2.0);
        let seed = g.u64();
        let a = Matrix::from_fn(m, k, |i, j| hash01(seed, i, j) - 0.5);
        let b = Matrix::from_fn(k, n, |i, j| hash01(seed ^ 3, i, j) - 0.5);
        let c0 = Matrix::from_fn(m, n, |i, j| hash01(seed ^ 4, i, j) - 0.5);
        let mut with_beta = c0.clone();
        gemm_blocked(
            m,
            n,
            k,
            1.0,
            a.as_slice(),
            m,
            b.as_slice(),
            k,
            beta,
            with_beta.as_mut_slice(),
            m,
        )
        .unwrap();
        let mut product = Matrix::zeros(m, n);
        gemm_blocked(
            m,
            n,
            k,
            1.0,
            a.as_slice(),
            m,
            b.as_slice(),
            k,
            0.0,
            product.as_mut_slice(),
            m,
        )
        .unwrap();
        for j in 0..n {
            for i in 0..m {
                let want = product[(i, j)] + beta * c0[(i, j)];
                assert!((with_beta[(i, j)] - want).abs() < 1e-9);
            }
        }
    });
}

/// GEMV agrees with a GEMM where B is a single column.
#[test]
fn gemv_is_single_column_gemm() {
    forall(Config::default().cases(64), |g| {
        let m = g.usize_in(1, 63);
        let n = g.usize_in(1, 63);
        let alpha = g.f64_in(-2.0, 2.0);
        let beta = g.f64_in(-2.0, 2.0);
        let seed = g.u64();
        let a = Matrix::from_fn(m, n, |i, j| hash01(seed, i, j) - 0.5);
        let x: Vec<f64> = (0..n).map(|j| hash01(seed ^ 5, j, 0) - 0.5).collect();
        let y0: Vec<f64> = (0..m).map(|i| hash01(seed ^ 6, i, 0) - 0.5).collect();

        let mut y = y0.clone();
        gemv_ref(m, n, alpha, a.as_slice(), m, &x, 1, beta, &mut y, 1).unwrap();

        let mut c = y0.clone();
        gemm_ref(m, 1, n, alpha, a.as_slice(), m, &x, n, beta, &mut c, m).unwrap();
        for i in 0..m {
            assert!((y[i] - c[i]).abs() < 1e-10);
        }
    });
}

#[test]
fn gemv_parallel_agrees() {
    forall(Config::default().cases(64), |g| {
        let m = g.usize_in(1, 599);
        let n = g.usize_in(1, 31);
        let threads = g.usize_in(1, 8);
        let seed = g.u64();
        let a = Matrix::from_fn(m, n, |i, j| hash01(seed, i, j) - 0.5);
        let x: Vec<f64> = (0..n).map(|j| hash01(seed ^ 7, j, 1) - 0.5).collect();
        let mut y1 = vec![0.25; m];
        let mut y2 = vec![0.25; m];
        gemv_ref(m, n, 1.5, a.as_slice(), m, &x, 1, 0.5, &mut y1, 1).unwrap();
        gemv_parallel(threads, m, n, 1.5, a.as_slice(), m, &x, 1, 0.5, &mut y2, 1).unwrap();
        for i in 0..m {
            assert!((y1[i] - y2[i]).abs() < 1e-10);
        }
    });
}

/// dot is symmetric and bilinear against axpy: dot(x, y+αz) == dot(x,y) + α·dot(x,z).
#[test]
fn dot_bilinear() {
    forall(Config::default().cases(64), |g| {
        let n = g.usize_in(1, 127);
        let alpha = g.f64_in(-2.0, 2.0);
        let seed = g.u64();
        let x: Vec<f64> = (0..n).map(|i| hash01(seed, i, 0) - 0.5).collect();
        let y: Vec<f64> = (0..n).map(|i| hash01(seed ^ 8, i, 0) - 0.5).collect();
        let z: Vec<f64> = (0..n).map(|i| hash01(seed ^ 9, i, 0) - 0.5).collect();
        let mut y_plus = y.clone();
        level1::axpy(n, alpha, &z, 1, &mut y_plus, 1).unwrap();
        let lhs = level1::dot(n, &x, 1, &y_plus, 1).unwrap();
        let rhs =
            level1::dot(n, &x, 1, &y, 1).unwrap() + alpha * level1::dot(n, &x, 1, &z, 1).unwrap();
        assert!((lhs - rhs).abs() < 1e-9 * (n as f64));
        let xy = level1::dot(n, &x, 1, &y, 1).unwrap();
        let yx = level1::dot(n, &y, 1, &x, 1).unwrap();
        assert!((xy - yx).abs() < 1e-12);
    });
}

/// nrm2² ≈ dot(x, x) and scaling homogeneity ‖αx‖ = |α|·‖x‖.
#[test]
fn nrm2_properties() {
    forall(Config::default().cases(64), |g| {
        let n = g.usize_in(1, 127);
        let alpha = g.f64_in(-3.0, 3.0);
        let seed = g.u64();
        let x: Vec<f64> = (0..n).map(|i| hash01(seed, i, 2) - 0.5).collect();
        let nn = level1::nrm2(n, &x, 1).unwrap();
        let dd = level1::dot(n, &x, 1, &x, 1).unwrap();
        assert!((nn * nn - dd).abs() < 1e-9 * (n as f64));
        let mut ax = x.clone();
        level1::scal(n, alpha, &mut ax, 1).unwrap();
        let na = level1::nrm2(n, &ax, 1).unwrap();
        assert!((na - alpha.abs() * nn).abs() < 1e-9 * (1.0 + nn));
    });
}

/// iamax really is the max |x_i|, and asum bounds it.
#[test]
fn iamax_asum_consistency() {
    forall(Config::default().cases(64), |g| {
        let n = g.usize_in(1, 127);
        let seed = g.u64();
        let x: Vec<f64> = (0..n).map(|i| hash01(seed, i, 3) - 0.5).collect();
        let idx = level1::iamax(n, &x, 1).unwrap().unwrap();
        let maxv = x[idx].abs();
        for v in &x {
            assert!(v.abs() <= maxv + 1e-15);
        }
        assert!(level1::asum(n, &x, 1).unwrap() + 1e-15 >= maxv);
    });
}

/// Deterministic value in [0, 1) from (seed, i, j).
fn hash01(seed: u64, i: usize, j: usize) -> f64 {
    let mut h = seed ^ 0x9e3779b97f4a7c15;
    h = h.wrapping_add((i as u64).wrapping_mul(0xbf58476d1ce4e5b9));
    h = h.wrapping_add((j as u64).wrapping_mul(0x94d049bb133111eb));
    h ^= h >> 31;
    h = h.wrapping_mul(0xd6e8feb86659fd93);
    h ^= h >> 32;
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Re-embeds a tight matrix with `pad` extra ld rows.
fn pad_mat(m: &Matrix<f64>, pad: usize) -> Matrix<f64> {
    let mut out = Matrix::zeros_ld(m.rows(), m.cols(), m.rows() + pad);
    for j in 0..m.cols() {
        out.col_mut(j).copy_from_slice(m.col(j));
    }
    out
}
