//! Property-based tests for the BLAS kernels.
//!
//! Strategy: generate random shapes, leading dimensions, scalars and data,
//! then assert algebraic invariants that must hold regardless of the
//! blocking/threading path taken — agreement with the reference kernel,
//! linearity, and the BLAS α/β contracts.

use blob_blas::{gemm_blocked, gemm_blocked_with, gemm_parallel, gemm_ref, gemv_parallel, gemv_ref, level1, BlockConfig, Matrix};
use proptest::prelude::*;

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..48, 1usize..48, 1usize..48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_blocked_agrees_with_reference(
        (m, n, k) in dims(),
        pad_a in 0usize..4,
        pad_b in 0usize..4,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let a = Matrix::from_fn(m, k, |i, j| hash01(seed, i, j) - 0.5);
        let b = Matrix::from_fn(k, n, |i, j| hash01(seed ^ 0xabc, i, j) - 0.5);
        let c0 = Matrix::from_fn(m, n, |i, j| hash01(seed ^ 0xdef, i, j) - 0.5);
        // re-embed with padded lds
        let a = pad_mat(&a, pad_a);
        let b = pad_mat(&b, pad_b);

        let mut c_ref = c0.clone();
        gemm_ref(m, n, k, alpha, a.as_slice(), a.ld(), b.as_slice(), b.ld(), beta,
                 c_ref.as_mut_slice(), m);
        let mut c_blk = c0.clone();
        gemm_blocked(m, n, k, alpha, a.as_slice(), a.ld(), b.as_slice(), b.ld(), beta,
                     c_blk.as_mut_slice(), m);
        prop_assert!(c_ref.approx_eq(&c_blk, 1e-9),
            "max diff {}", c_ref.max_abs_diff(&c_blk));
    }

    #[test]
    fn gemm_parallel_agrees_with_reference(
        (m, n, k) in dims(),
        threads in 1usize..9,
        seed in any::<u64>(),
    ) {
        let a = Matrix::from_fn(m, k, |i, j| hash01(seed, i, j) - 0.5);
        let b = Matrix::from_fn(k, n, |i, j| hash01(seed ^ 1, i, j) - 0.5);
        let mut c_ref = Matrix::zeros(m, n);
        gemm_ref(m, n, k, 1.0, a.as_slice(), m, b.as_slice(), k, 0.0,
                 c_ref.as_mut_slice(), m);
        let mut c_par = Matrix::zeros(m, n);
        gemm_parallel(threads, m, n, k, 1.0, a.as_slice(), m, b.as_slice(), k, 0.0,
                      c_par.as_mut_slice(), m);
        prop_assert!(c_ref.approx_eq(&c_par, 1e-9));
    }

    /// Any valid blocking configuration computes the same product.
    #[test]
    fn gemm_blocking_config_invariant(
        (m, n, k) in dims(),
        mc in 1usize..64,
        kc in 1usize..64,
        nc in 1usize..64,
        seed in any::<u64>(),
    ) {
        let a = Matrix::from_fn(m, k, |i, j| hash01(seed, i, j) - 0.5);
        let b = Matrix::from_fn(k, n, |i, j| hash01(seed ^ 0x55, i, j) - 0.5);
        let mut c_ref = Matrix::zeros(m, n);
        gemm_ref(m, n, k, 1.0, a.as_slice(), m, b.as_slice(), k, 0.0, c_ref.as_mut_slice(), m);
        let mut c_cfg = Matrix::zeros(m, n);
        gemm_blocked_with(
            BlockConfig::new(mc, kc, nc),
            m, n, k, 1.0,
            a.as_slice(), m,
            b.as_slice(), k,
            0.0,
            c_cfg.as_mut_slice(), m,
        );
        prop_assert!(c_ref.approx_eq(&c_cfg, 1e-9));
    }

    /// GEMM is linear in alpha: gemm(2α) == 2 * gemm(α) when β = 0.
    #[test]
    fn gemm_linear_in_alpha((m, n, k) in dims(), alpha in -2.0f64..2.0, seed in any::<u64>()) {
        let a = Matrix::from_fn(m, k, |i, j| hash01(seed, i, j) - 0.5);
        let b = Matrix::from_fn(k, n, |i, j| hash01(seed ^ 2, i, j) - 0.5);
        let mut c1 = Matrix::zeros(m, n);
        gemm_blocked(m, n, k, alpha, a.as_slice(), m, b.as_slice(), k, 0.0, c1.as_mut_slice(), m);
        let mut c2 = Matrix::zeros(m, n);
        gemm_blocked(m, n, k, 2.0 * alpha, a.as_slice(), m, b.as_slice(), k, 0.0, c2.as_mut_slice(), m);
        for j in 0..n {
            for i in 0..m {
                prop_assert!((2.0 * c1[(i, j)] - c2[(i, j)]).abs() < 1e-9);
            }
        }
    }

    /// The β contract: gemm(α, β) == gemm(α, 0) + β·C₀.
    #[test]
    fn gemm_beta_contract((m, n, k) in dims(), beta in -2.0f64..2.0, seed in any::<u64>()) {
        let a = Matrix::from_fn(m, k, |i, j| hash01(seed, i, j) - 0.5);
        let b = Matrix::from_fn(k, n, |i, j| hash01(seed ^ 3, i, j) - 0.5);
        let c0 = Matrix::from_fn(m, n, |i, j| hash01(seed ^ 4, i, j) - 0.5);
        let mut with_beta = c0.clone();
        gemm_blocked(m, n, k, 1.0, a.as_slice(), m, b.as_slice(), k, beta,
                     with_beta.as_mut_slice(), m);
        let mut product = Matrix::zeros(m, n);
        gemm_blocked(m, n, k, 1.0, a.as_slice(), m, b.as_slice(), k, 0.0,
                     product.as_mut_slice(), m);
        for j in 0..n {
            for i in 0..m {
                let want = product[(i, j)] + beta * c0[(i, j)];
                prop_assert!((with_beta[(i, j)] - want).abs() < 1e-9);
            }
        }
    }

    /// GEMV agrees with a GEMM where B is a single column.
    #[test]
    fn gemv_is_single_column_gemm(
        m in 1usize..64,
        n in 1usize..64,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let a = Matrix::from_fn(m, n, |i, j| hash01(seed, i, j) - 0.5);
        let x: Vec<f64> = (0..n).map(|j| hash01(seed ^ 5, j, 0) - 0.5).collect();
        let y0: Vec<f64> = (0..m).map(|i| hash01(seed ^ 6, i, 0) - 0.5).collect();

        let mut y = y0.clone();
        gemv_ref(m, n, alpha, a.as_slice(), m, &x, 1, beta, &mut y, 1);

        let mut c = y0.clone();
        gemm_ref(m, 1, n, alpha, a.as_slice(), m, &x, n, beta, &mut c, m);
        for i in 0..m {
            prop_assert!((y[i] - c[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn gemv_parallel_agrees(
        m in 1usize..600,
        n in 1usize..32,
        threads in 1usize..9,
        seed in any::<u64>(),
    ) {
        let a = Matrix::from_fn(m, n, |i, j| hash01(seed, i, j) - 0.5);
        let x: Vec<f64> = (0..n).map(|j| hash01(seed ^ 7, j, 1) - 0.5).collect();
        let mut y1 = vec![0.25; m];
        let mut y2 = vec![0.25; m];
        gemv_ref(m, n, 1.5, a.as_slice(), m, &x, 1, 0.5, &mut y1, 1);
        gemv_parallel(threads, m, n, 1.5, a.as_slice(), m, &x, 1, 0.5, &mut y2, 1);
        for i in 0..m {
            prop_assert!((y1[i] - y2[i]).abs() < 1e-10);
        }
    }

    /// dot is symmetric and bilinear against axpy: dot(x, y+αz) == dot(x,y) + α·dot(x,z).
    #[test]
    fn dot_bilinear(n in 1usize..128, alpha in -2.0f64..2.0, seed in any::<u64>()) {
        let x: Vec<f64> = (0..n).map(|i| hash01(seed, i, 0) - 0.5).collect();
        let y: Vec<f64> = (0..n).map(|i| hash01(seed ^ 8, i, 0) - 0.5).collect();
        let z: Vec<f64> = (0..n).map(|i| hash01(seed ^ 9, i, 0) - 0.5).collect();
        let mut y_plus = y.clone();
        level1::axpy(n, alpha, &z, 1, &mut y_plus, 1);
        let lhs = level1::dot(n, &x, 1, &y_plus, 1);
        let rhs = level1::dot(n, &x, 1, &y, 1) + alpha * level1::dot(n, &x, 1, &z, 1);
        prop_assert!((lhs - rhs).abs() < 1e-9 * (n as f64));
        prop_assert!((level1::dot(n, &x, 1, &y, 1) - level1::dot(n, &y, 1, &x, 1)).abs() < 1e-12);
    }

    /// nrm2² ≈ dot(x, x) and scaling homogeneity ‖αx‖ = |α|·‖x‖.
    #[test]
    fn nrm2_properties(n in 1usize..128, alpha in -3.0f64..3.0, seed in any::<u64>()) {
        let x: Vec<f64> = (0..n).map(|i| hash01(seed, i, 2) - 0.5).collect();
        let nn = level1::nrm2(n, &x, 1);
        let dd = level1::dot(n, &x, 1, &x, 1);
        prop_assert!((nn * nn - dd).abs() < 1e-9 * (n as f64));
        let mut ax = x.clone();
        level1::scal(n, alpha, &mut ax, 1);
        let na = level1::nrm2(n, &ax, 1);
        prop_assert!((na - alpha.abs() * nn).abs() < 1e-9 * (1.0 + nn));
    }

    /// iamax really is the max |x_i|, and asum bounds it.
    #[test]
    fn iamax_asum_consistency(n in 1usize..128, seed in any::<u64>()) {
        let x: Vec<f64> = (0..n).map(|i| hash01(seed, i, 3) - 0.5).collect();
        let idx = level1::iamax(n, &x, 1).unwrap();
        let maxv = x[idx].abs();
        for v in &x {
            prop_assert!(v.abs() <= maxv + 1e-15);
        }
        prop_assert!(level1::asum(n, &x, 1) + 1e-15 >= maxv);
    }
}

/// Deterministic value in [0, 1) from (seed, i, j).
fn hash01(seed: u64, i: usize, j: usize) -> f64 {
    let mut h = seed ^ 0x9e3779b97f4a7c15;
    h = h.wrapping_add((i as u64).wrapping_mul(0xbf58476d1ce4e5b9));
    h = h.wrapping_add((j as u64).wrapping_mul(0x94d049bb133111eb));
    h ^= h >> 31;
    h = h.wrapping_mul(0xd6e8feb86659fd93);
    h ^= h >> 32;
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Re-embeds a tight matrix with `pad` extra ld rows.
fn pad_mat(m: &Matrix<f64>, pad: usize) -> Matrix<f64> {
    let mut out = Matrix::zeros_ld(m.rows(), m.cols(), m.rows() + pad);
    for j in 0..m.cols() {
        out.col_mut(j).copy_from_slice(m.col(j));
    }
    out
}
