//! Seeded schedule-perturbation stress tests — the workspace's `loom`
//! substitute.
//!
//! [`blob_blas::perturb`] injects seeded yields/spins/sleeps at the
//! interleaving-sensitive points inside the thread pool and the parallel
//! kernels. Each test sweeps ≥ 100 seeds, so `cargo test` explores ≥ 100
//! distinct schedules per run and fails on corruption (wrong results,
//! lost jobs) or deadlock (the test would hang and trip the harness
//! timeout).
//!
//! The OS still owns true scheduling — this is perturbation, not replay —
//! but a reported seed reproduces the same perturbation decisions.

use blob_blas::{gemm_parallel, gemm_ref, gemv_parallel, gemv_ref, perturb, ThreadPool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Runs `f` with perturbation enabled under the global stress lock, so
/// concurrent tests in this binary cannot interfere with each other's
/// seeds.
fn with_perturbation(seed: u64, f: impl FnOnce()) {
    let _guard = perturb::STRESS_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    perturb::enable(seed);
    f();
    perturb::disable();
}

fn det(seed: u64, i: usize) -> f64 {
    let mut h = seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^= h >> 29;
    (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5
}

#[test]
fn parallel_gemm_correct_under_100_perturbed_schedules() {
    let (m, n, k) = (31, 37, 23);
    let a: Vec<f64> = (0..m * k).map(|i| det(1, i)).collect();
    let b: Vec<f64> = (0..k * n).map(|i| det(2, i)).collect();
    let mut want = vec![0.0; m * n];
    gemm_ref(m, n, k, 1.5, &a, m, &b, k, 0.0, &mut want, m).unwrap();

    for seed in 0..100u64 {
        with_perturbation(seed, || {
            let mut c = vec![0.0; m * n];
            gemm_parallel(4, m, n, k, 1.5, &a, m, &b, k, 0.0, &mut c, m).unwrap();
            for i in 0..m * n {
                assert!(
                    (c[i] - want[i]).abs() < 1e-12,
                    "seed {seed}: element {i}: {} vs {}",
                    c[i],
                    want[i]
                );
            }
        });
    }
}

#[test]
fn parallel_gemv_correct_under_100_perturbed_schedules() {
    let (m, n) = (257, 19);
    let a: Vec<f64> = (0..m * n).map(|i| det(3, i)).collect();
    let x: Vec<f64> = (0..n).map(|i| det(4, i)).collect();
    let mut want = vec![0.25; m];
    gemv_ref(m, n, 2.0, &a, m, &x, 1, -0.5, &mut want, 1).unwrap();

    for seed in 100..200u64 {
        with_perturbation(seed, || {
            let mut y = vec![0.25; m];
            gemv_parallel(4, m, n, 2.0, &a, m, &x, 1, -0.5, &mut y, 1).unwrap();
            for i in 0..m {
                assert!(
                    (y[i] - want[i]).abs() < 1e-12,
                    "seed {seed}: element {i}: {} vs {}",
                    y[i],
                    want[i]
                );
            }
        });
    }
}

#[test]
fn thread_pool_loses_no_jobs_under_100_perturbed_schedules() {
    for seed in 200..300u64 {
        with_perturbation(seed, || {
            let pool = ThreadPool::new(3);
            let counter = Arc::new(AtomicUsize::new(0));
            for j in 0..40 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(j, Ordering::Relaxed);
                });
            }
            pool.join();
            assert_eq!(
                counter.load(Ordering::Relaxed),
                (0..40).sum::<usize>(),
                "seed {seed}: jobs lost or duplicated"
            );
        });
    }
}

#[test]
fn thread_pool_drop_drains_under_perturbed_schedules() {
    // Drop-without-join must still run every submitted job under hostile
    // schedules (the shutdown/pop_front race).
    for seed in 300..350u64 {
        with_perturbation(seed, || {
            let counter = Arc::new(AtomicUsize::new(0));
            {
                let pool = ThreadPool::new(2);
                for _ in 0..25 {
                    let c = Arc::clone(&counter);
                    pool.execute(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }
            assert_eq!(counter.load(Ordering::Relaxed), 25, "seed {seed}");
        });
    }
}
