//! Seeded schedule-perturbation stress tests — the workspace's `loom`
//! substitute.
//!
//! [`blob_blas::perturb`] injects seeded yields/spins/sleeps at the
//! interleaving-sensitive points inside the thread pool, the scoped
//! dispatcher and the parallel kernels. Each test sweeps many seeds, so
//! `cargo test` explores many distinct schedules per run and fails on
//! corruption (wrong results, lost jobs) or deadlock (the test would hang
//! and trip the harness timeout).
//!
//! The kernels now run *inline* below the work-based crossover
//! ([`blob_blas::pool::effective_workers`]), so the kernel-level tests
//! here use shapes **above** it — otherwise they would only stress the
//! serial path.
//!
//! The OS still owns true scheduling — this is perturbation, not replay —
//! but a reported seed reproduces the same perturbation decisions.

use blob_blas::pool::{effective_workers, run_scoped, MIN_ELEMS_PER_THREAD, MIN_FLOPS_PER_THREAD};
use blob_blas::{gemm_parallel, gemm_ref, gemv_parallel, gemv_ref, perturb, ThreadPool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Runs `f` with perturbation enabled under the global stress lock, so
/// concurrent tests in this binary cannot interfere with each other's
/// seeds.
fn with_perturbation(seed: u64, f: impl FnOnce()) {
    let _guard = perturb::STRESS_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    perturb::enable(seed);
    f();
    perturb::disable();
}

fn det(seed: u64, i: usize) -> f64 {
    let mut h = seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^= h >> 29;
    (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5
}

#[test]
fn parallel_gemm_correct_under_perturbed_schedules() {
    // Above the compute crossover so the scoped dispatcher really splits:
    // 2·m·n·k must exceed 2×MIN_FLOPS_PER_THREAD.
    let (m, n, k) = (96, 512, 384);
    assert!(
        effective_workers(4, 2 * m * n * k, MIN_FLOPS_PER_THREAD) >= 2,
        "shape fell below the dispatch crossover; enlarge it"
    );
    let a: Vec<f64> = (0..m * k).map(|i| det(1, i)).collect();
    let b: Vec<f64> = (0..k * n).map(|i| det(2, i)).collect();
    let mut want = vec![0.0; m * n];
    gemm_ref(m, n, k, 1.5, &a, m, &b, k, 0.0, &mut want, m).unwrap();

    for seed in 0..25u64 {
        with_perturbation(seed, || {
            let mut c = vec![0.0; m * n];
            gemm_parallel(4, m, n, k, 1.5, &a, m, &b, k, 0.0, &mut c, m).unwrap();
            for i in 0..m * n {
                assert!(
                    (c[i] - want[i]).abs() < 1e-10,
                    "seed {seed}: element {i}: {} vs {}",
                    c[i],
                    want[i]
                );
            }
        });
    }
}

#[test]
fn parallel_gemv_correct_under_perturbed_schedules() {
    // Above the bandwidth crossover: m·n must exceed 2×MIN_ELEMS_PER_THREAD.
    let (m, n) = (65536, 17);
    assert!(
        effective_workers(4, m * n, MIN_ELEMS_PER_THREAD) >= 2,
        "shape fell below the dispatch crossover; enlarge it"
    );
    let a: Vec<f64> = (0..m * n).map(|i| det(3, i)).collect();
    let x: Vec<f64> = (0..n).map(|i| det(4, i)).collect();
    let mut want = vec![0.25; m];
    gemv_ref(m, n, 2.0, &a, m, &x, 1, -0.5, &mut want, 1).unwrap();

    for seed in 100..150u64 {
        with_perturbation(seed, || {
            let mut y = vec![0.25; m];
            gemv_parallel(4, m, n, 2.0, &a, m, &x, 1, -0.5, &mut y, 1).unwrap();
            for i in 0..m {
                assert!(
                    (y[i] - want[i]).abs() < 1e-12,
                    "seed {seed}: element {i}: {} vs {}",
                    y[i],
                    want[i]
                );
            }
        });
    }
}

#[test]
fn thread_pool_loses_no_jobs_under_100_perturbed_schedules() {
    for seed in 200..300u64 {
        with_perturbation(seed, || {
            let pool = ThreadPool::new(3);
            let counter = Arc::new(AtomicUsize::new(0));
            let mut batch = pool.batch();
            for j in 0..40 {
                let c = Arc::clone(&counter);
                batch.submit(move || {
                    c.fetch_add(j, Ordering::Relaxed);
                });
            }
            batch.wait();
            assert_eq!(
                counter.load(Ordering::Relaxed),
                (0..40).sum::<usize>(),
                "seed {seed}: jobs lost or duplicated"
            );
        });
    }
}

#[test]
fn thread_pool_drop_drains_under_perturbed_schedules() {
    // Drop-without-wait must still run every submitted job under hostile
    // schedules (the shutdown/pop_front race).
    for seed in 300..350u64 {
        with_perturbation(seed, || {
            let counter = Arc::new(AtomicUsize::new(0));
            {
                let pool = ThreadPool::new(2);
                for _ in 0..25 {
                    let c = Arc::clone(&counter);
                    pool.execute(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }
            assert_eq!(counter.load(Ordering::Relaxed), 25, "seed {seed}");
        });
    }
}

#[test]
fn concurrent_callers_get_isolated_batches_under_perturbed_schedules() {
    // Two OS threads issue batches against one shared pool simultaneously.
    // Each batch's wait() must return only after *its own* jobs ran, and
    // never observe the other caller's count.
    for seed in 400..450u64 {
        with_perturbation(seed, || {
            let pool = Arc::new(ThreadPool::new(3));
            let totals: Vec<_> = (0..2)
                .map(|caller| {
                    let pool = Arc::clone(&pool);
                    std::thread::spawn(move || {
                        let counter = Arc::new(AtomicUsize::new(0));
                        for round in 0..5 {
                            let mut batch = pool.batch();
                            for j in 0..8 {
                                let c = Arc::clone(&counter);
                                batch.submit(move || {
                                    c.fetch_add(j + 1, Ordering::Relaxed);
                                });
                            }
                            batch.wait();
                            // after wait, exactly (round+1) full batches
                            // of this caller's jobs have landed
                            assert_eq!(
                                counter.load(Ordering::Relaxed),
                                (round + 1) * (1..=8).sum::<usize>(),
                                "caller {caller} round {round}"
                            );
                        }
                        counter.load(Ordering::Relaxed)
                    })
                })
                .collect();
            for t in totals {
                assert_eq!(t.join().expect("caller thread"), 5 * 36, "seed {seed}");
            }
        });
    }
}

#[test]
fn nested_dispatch_does_not_deadlock_under_perturbed_schedules() {
    // A pool job that opens its own batch on the same single-worker pool:
    // the nested submission must run inline (a queued job would deadlock
    // the lone worker against itself; a hang here trips the test timeout).
    for seed in 500..550u64 {
        with_perturbation(seed, || {
            let pool = Arc::new(ThreadPool::new(1));
            let p = Arc::clone(&pool);
            let counter = Arc::new(AtomicUsize::new(0));
            let c = Arc::clone(&counter);
            let mut outer = pool.batch();
            outer.submit(move || {
                let mut inner = p.batch();
                for _ in 0..4 {
                    let c2 = Arc::clone(&c);
                    inner.submit(move || {
                        c2.fetch_add(1, Ordering::Relaxed);
                    });
                }
                inner.wait();
                c.fetch_add(10, Ordering::Relaxed);
            });
            outer.wait();
            assert_eq!(counter.load(Ordering::Relaxed), 14, "seed {seed}");
        });
    }
}

#[test]
fn panic_propagation_survives_perturbed_schedules() {
    // A panicking job must reach the batch barrier — not get lost in a
    // worker — under every explored schedule, and the pool must stay
    // usable afterwards.
    for seed in 600..650u64 {
        with_perturbation(seed, || {
            let pool = ThreadPool::new(2);
            let mut batch = pool.batch();
            batch.submit(|| {});
            batch.submit(|| panic!("stress panic"));
            batch.submit(|| {});
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| batch.wait()));
            assert!(err.is_err(), "seed {seed}: panic swallowed");
            let ok = Arc::new(AtomicUsize::new(0));
            let o = Arc::clone(&ok);
            let mut next = pool.batch();
            next.submit(move || {
                o.store(1, Ordering::Relaxed);
            });
            next.wait();
            assert_eq!(ok.load(Ordering::Relaxed), 1, "seed {seed}: pool wedged");
        });
    }
}

#[test]
fn run_scoped_covers_all_jobs_under_perturbed_schedules() {
    for seed in 700..750u64 {
        with_perturbation(seed, || {
            let hits: Vec<AtomicUsize> = (0..7).map(|_| AtomicUsize::new(0)).collect();
            let jobs: Vec<_> = (0..7)
                .map(|i| {
                    let hits = &hits;
                    move || {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                })
                .collect();
            run_scoped(jobs);
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "seed {seed}: job {i}");
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Worker-death injection (the `pool.worker` fault point)
// ---------------------------------------------------------------------------

use blob_blas::faultpoint::{self, Directive};

/// Runs `f` with a faultpoint hook installed, under the stress lock (the
/// hook and its activation flag are process-global, like perturbation).
fn with_fault_hook(
    hook: impl Fn(&'static str) -> Directive + Send + Sync + 'static,
    f: impl FnOnce(),
) {
    let _guard = perturb::STRESS_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    faultpoint::set_hook(hook);
    faultpoint::set_active(true);
    f();
    faultpoint::set_active(false);
}

#[test]
fn batch_completes_after_every_worker_dies_mid_batch() {
    // Kill each of the 3 workers the first time it reaches the fault
    // point; the batch barrier must detect the deaths, respawn workers,
    // and still run all 60 jobs exactly once.
    let deaths = AtomicUsize::new(3);
    with_fault_hook(
        move |site| {
            if site == "pool.worker"
                && deaths
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| d.checked_sub(1))
                    .is_ok()
            {
                return Directive::Die;
            }
            Directive::Proceed
        },
        || {
            let pool = ThreadPool::new(3);
            let counter = Arc::new(AtomicUsize::new(0));
            let mut batch = pool.batch();
            for _ in 0..60 {
                let c = Arc::clone(&counter);
                batch.submit(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_micros(200));
                });
            }
            batch.wait();
            assert_eq!(counter.load(Ordering::Relaxed), 60, "no job may be lost");
            assert!(
                pool.replaced_workers() >= 1,
                "dead workers must be replaced (got {})",
                pool.replaced_workers()
            );
        },
    );
}

#[test]
fn batch_completes_when_a_worker_panics_between_jobs() {
    // An injected *panic* (not a clean exit) unwinds the worker thread;
    // the barrier must still heal the pool and finish the batch without
    // re-throwing the injected panic to the waiter (it belongs to no job).
    let panics = AtomicUsize::new(1);
    with_fault_hook(
        move |site| {
            if site == "pool.worker"
                && panics
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| d.checked_sub(1))
                    .is_ok()
            {
                return Directive::Panic;
            }
            Directive::Proceed
        },
        || {
            let pool = ThreadPool::new(2);
            let counter = Arc::new(AtomicUsize::new(0));
            let mut batch = pool.batch();
            for _ in 0..40 {
                let c = Arc::clone(&counter);
                batch.submit(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            batch.wait();
            assert_eq!(counter.load(Ordering::Relaxed), 40);
        },
    );
}

#[test]
fn pool_survives_repeated_probabilistic_worker_death() {
    // A 30% death rate across many batches: every batch must still
    // complete and the pool must keep healing itself.
    let mut mix = 0x1234_5678_u64;
    let draws = std::sync::Mutex::new(move || {
        mix ^= mix << 13;
        mix ^= mix >> 7;
        mix ^= mix << 17;
        mix % 100 < 30
    });
    with_fault_hook(
        move |site| {
            if site == "pool.worker" {
                let mut d = draws.lock().unwrap_or_else(|p| p.into_inner());
                if d() {
                    return Directive::Die;
                }
            }
            Directive::Proceed
        },
        || {
            let pool = ThreadPool::new(4);
            let counter = Arc::new(AtomicUsize::new(0));
            for _round in 0..10 {
                let mut batch = pool.batch();
                for _ in 0..25 {
                    let c = Arc::clone(&counter);
                    batch.submit(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
                batch.wait();
            }
            assert_eq!(counter.load(Ordering::Relaxed), 250);
        },
    );
}

#[test]
fn run_scoped_joins_every_job_when_one_panics() {
    // Scoped dispatch's "worker death" is a panicking job: the scope
    // must still join (and therefore run) every other job before the
    // panic propagates to the caller.
    let hits: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
    let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..8)
        .map(|i| {
            let hits = &hits;
            let job: Box<dyn FnOnce() + Send> = Box::new(move || {
                if i == 3 {
                    panic!("injected scoped death");
                }
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            job
        })
        .collect();
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_scoped(jobs)))
        .expect_err("the panic must reach the caller");
    assert_eq!(
        err.downcast_ref::<&str>().copied(),
        Some("injected scoped death")
    );
    for (i, h) in hits.iter().enumerate() {
        if i != 3 {
            assert_eq!(h.load(Ordering::Relaxed), 1, "job {i} must have run");
        }
    }
}
