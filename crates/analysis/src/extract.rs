//! Offload-threshold extraction from raw CSV data — the Rust equivalent of
//! the artifact's `calculateOffloadThreshold.py`.
//!
//! LUMI's builds collect CPU and GPU data in separate runs (incompatible
//! compilers), so the artifact derives thresholds *post hoc* by pairing the
//! CPU CSV with the GPU CSV of the same problem type. This module does the
//! same for any CSV produced by `blob_core::csv`: group rows into
//! (system, routine, problem, iterations) series, align CPU and GPU rows by
//! problem size, and run the §III-D detector.

use blob_core::csv::CsvRow;
use blob_core::threshold::{offload_threshold_index, ThresholdPoint};
use blob_sim::{Kernel, Offload};
use std::collections::BTreeMap;

/// Key identifying one threshold series.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// System name from the CSV rows.
    pub system: String,
    /// BLAS routine label (`sgemm`, `dgemv`, …).
    pub routine: String,
    /// Problem-type identifier.
    pub problem: String,
    /// Iteration count of the timed loop.
    pub iterations: u32,
    /// Offload strategy of the GPU rows in the pair.
    pub offload: Offload,
}

/// An extracted threshold: the concrete dimensions, or `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractedThreshold {
    /// The series this threshold belongs to.
    pub key: SeriesKey,
    /// Dimensions of the first durably GPU-favoured size, or `None`.
    pub threshold: Option<Kernel>,
}

/// Extracts every threshold present in a set of CSV rows.
///
/// CPU and GPU rows may come from different files (the LUMI workflow —
/// concatenate both CSVs before calling, as the artifact's instructions
/// describe). Sizes present on only one device are ignored; sizes are
/// ordered by their dimension tuple, which matches sweep order for every
/// problem type.
pub fn extract_thresholds(rows: &[CsvRow]) -> Vec<ExtractedThreshold> {
    // (system, routine, problem, iters) -> size -> (cpu_s, offload -> gpu_s)
    type SizeMap = BTreeMap<(usize, usize, usize), (Option<f64>, BTreeMap<Offload, f64>)>;
    let mut groups: BTreeMap<(String, String, String, u32), SizeMap> = BTreeMap::new();
    for row in rows {
        let g = groups
            .entry((
                row.system.clone(),
                row.routine.clone(),
                row.problem.clone(),
                row.iterations,
            ))
            .or_default();
        let entry = g
            .entry((row.m, row.n, row.k))
            .or_insert((None, BTreeMap::new()));
        match row.offload {
            None => entry.0 = Some(row.seconds),
            Some(o) => {
                entry.1.insert(o, row.seconds);
            }
        }
    }

    let mut out = Vec::new();
    for ((system, routine, problem, iterations), sizes) in groups {
        // which offloads appear anywhere in this group
        let mut offloads: Vec<Offload> = Vec::new();
        for (_, (_c, g)) in sizes.iter() {
            for o in g.keys() {
                if !offloads.contains(o) {
                    offloads.push(*o);
                }
            }
        }
        offloads.sort();
        for offload in offloads {
            let mut points = Vec::new();
            let mut kernels = Vec::new();
            for (&(m, n, k), (cpu, gpu)) in sizes.iter() {
                if let (Some(c), Some(&g)) = (cpu, gpu.get(&offload)) {
                    points.push(ThresholdPoint {
                        cpu_seconds: *c,
                        gpu_seconds: g,
                    });
                    kernels.push(if routine.ends_with("gemv") {
                        Kernel::Gemv { m, n }
                    } else {
                        Kernel::Gemm { m, n, k }
                    });
                }
            }
            let threshold = offload_threshold_index(&points).map(|i| kernels[i]);
            out.push(ExtractedThreshold {
                key: SeriesKey {
                    system: system.clone(),
                    routine: routine.clone(),
                    problem: problem.clone(),
                    iterations,
                    offload,
                },
                threshold,
            });
        }
    }
    out
}

/// A GFLOP/s series extracted for plotting: `(size-label, gflops)` pairs in
/// sweep order for one device/offload.
pub fn gflops_series(rows: &[CsvRow], device: &str, offload: Option<Offload>) -> Vec<(usize, f64)> {
    let mut pts: Vec<((usize, usize, usize), f64)> = rows
        .iter()
        .filter(|r| r.device == device && r.offload == offload)
        .map(|r| ((r.m, r.n, r.k), r.gflops))
        .collect();
    pts.sort_by_key(|&(dims, _)| dims);
    pts.into_iter()
        // x-axis label: the dominant dimension of each size
        .map(|((m, n, k), g)| (m.max(n).max(k), g))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blob_core::csv::{parse_csv, to_csv_string};
    use blob_core::problem::{GemmProblem, Problem};
    use blob_core::runner::{run_sweep, SweepConfig};
    use blob_sim::{presets, Precision};

    #[test]
    fn extraction_matches_sweep_thresholds() {
        // Thresholds computed directly from the sweep must equal those
        // recovered from its CSV serialisation.
        let sweep = run_sweep(
            &presets::isambard_ai(),
            Problem::Gemm(GemmProblem::Square),
            Precision::F32,
            &SweepConfig::new(1, 200, 8),
        );
        let rows = parse_csv(&to_csv_string(&sweep)).unwrap();
        let extracted = extract_thresholds(&rows);
        assert_eq!(extracted.len(), 3, "one per offload");
        for e in &extracted {
            let direct = sweep.threshold(e.key.offload);
            assert_eq!(e.threshold, direct, "offload {:?}", e.key.offload);
        }
    }

    #[test]
    fn split_cpu_gpu_files_concatenated_like_lumi() {
        // Simulate the LUMI workflow: CPU rows and GPU rows from separate
        // "files", concatenated before extraction.
        let sweep = run_sweep(
            &presets::lumi(),
            Problem::Gemm(GemmProblem::Square),
            Precision::F64,
            &SweepConfig::new(1, 128, 32),
        );
        let all = parse_csv(&to_csv_string(&sweep)).unwrap();
        let cpu_rows: Vec<CsvRow> = all.iter().filter(|r| r.device == "cpu").cloned().collect();
        let gpu_rows: Vec<CsvRow> = all.iter().filter(|r| r.device == "gpu").cloned().collect();
        let mut concat = cpu_rows;
        concat.extend(gpu_rows);
        let ex = extract_thresholds(&concat);
        let direct = sweep.threshold(Offload::TransferOnce);
        let found = ex
            .iter()
            .find(|e| e.key.offload == Offload::TransferOnce)
            .unwrap();
        assert_eq!(found.threshold, direct);
    }

    #[test]
    fn missing_device_rows_yield_no_thresholds() {
        let sweep = run_sweep(
            &presets::isambard_ai_armpl(), // CPU-only
            Problem::Gemm(GemmProblem::Square),
            Precision::F32,
            &SweepConfig::new(1, 32, 1),
        );
        let rows = parse_csv(&to_csv_string(&sweep)).unwrap();
        assert!(extract_thresholds(&rows).is_empty());
    }

    #[test]
    fn series_extraction_sorted_by_size() {
        let sweep = run_sweep(
            &presets::dawn(),
            Problem::Gemm(GemmProblem::Square),
            Precision::F32,
            &SweepConfig::new(1, 50, 1),
        );
        let rows = parse_csv(&to_csv_string(&sweep)).unwrap();
        let cpu = gflops_series(&rows, "cpu", None);
        assert_eq!(cpu.len(), 50);
        assert!(cpu.windows(2).all(|w| w[0].0 <= w[1].0));
        let gpu = gflops_series(&rows, "gpu", Some(Offload::Unified));
        assert_eq!(gpu.len(), 50);
    }
}
