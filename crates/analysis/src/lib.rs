//! # blob-analysis — result post-processing for GPU-BLOB
//!
//! The Rust counterparts of the artifact's analysis scripts:
//!
//! - [`extract`] — offload-threshold extraction from raw CSV rows
//!   (`calculateOffloadThreshold.py`), including the LUMI workflow of
//!   pairing separately-collected CPU and GPU files;
//! - [`plot`] — GFLOP/s-vs-size charts as ASCII (terminal) and SVG
//!   (`createGflopsGraphs.py`);
//! - [`table`] — the paper-style stdout tables, including the `S:D`
//!   threshold-pair convention of Tables III–VI;
//! - [`roofline`], [`timeline`], [`stats`], [`report`] — roofline plots,
//!   trace Gantt charts, measurement statistics and markdown reports.
//!
//! ```
//! use blob_analysis::{ascii_chart, Series};
//!
//! let series = [Series::from_usize("cpu", &[(1, 10.0), (2, 40.0), (3, 90.0)])];
//! let chart = ascii_chart("GFLOP/s", &series, 40, 8);
//! assert!(chart.contains("cpu"));
//! ```

pub mod extract;
pub mod plot;
pub mod report;
pub mod roofline;
pub mod stats;
pub mod table;
pub mod timeline;

pub use extract::{extract_thresholds, gflops_series, ExtractedThreshold, SeriesKey};
pub use plot::{ascii_chart, svg_chart, write_svg, Series};
pub use report::markdown_report;
pub use roofline::{roofline_svg, KernelPoint, Roofline};
pub use stats::{summarize, Summary, ThresholdStability};
pub use table::{sd_pair_cell, threshold_cell, Table};
pub use timeline::{timeline_svg, trace_timeline_svg};
