//! Fixed-width text tables in the paper's style.
//!
//! The benchmark prints offload thresholds "in a table to stdout" (AD
//! appendix); these helpers render the same structures: a generic aligned
//! table plus the paper's `S:D` threshold-pair cell convention, where a
//! missing threshold prints as `—`.

use blob_sim::Kernel;

/// A simple fixed-width table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must have one cell per header.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate().take(cols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = width - cell.chars().count();
                line.push(' ');
                line.push_str(cell);
                line.push_str(&" ".repeat(pad + 1));
                if i + 1 < cols {
                    line.push('|');
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats one threshold as the paper writes it: `{m, n, k}` for GEMM,
/// `{m, n}` for GEMV, `—` for none.
pub fn threshold_cell(t: Option<Kernel>) -> String {
    match t {
        None => "—".to_string(),
        Some(Kernel::Gemm { m, n, k }) => format!("{{{m}, {n}, {k}}}"),
        Some(Kernel::Gemv { m, n }) => format!("{{{m}, {n}}}"),
    }
}

/// Formats an `S:D` threshold pair using the dominant dimension only, the
/// compact form of Tables III/IV (e.g. `629 : 582`, `— : —`). For square
/// problems the dominant dimension is the (equal) size parameter; for
/// non-square entries the varying dimension is reported.
pub fn sd_pair_cell(s: Option<usize>, d: Option<usize>) -> String {
    let f = |v: Option<usize>| match v {
        Some(x) => x.to_string(),
        None => "—".to_string(),
    };
    format!("{} : {}", f(s), f(d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["Sys", "Value"]);
        t.push_row(vec!["DAWN".into(), "1".into()]);
        t.push_row(vec!["Isambard-AI".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "Demo");
        // all data lines have the same width
        assert_eq!(lines[1].chars().count(), lines[3].chars().count());
        assert!(lines[3].contains("DAWN"));
        assert!(lines[4].contains("Isambard-AI"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn threshold_cells() {
        assert_eq!(threshold_cell(None), "—");
        assert_eq!(
            threshold_cell(Some(Kernel::Gemm {
                m: 26,
                n: 26,
                k: 26
            })),
            "{26, 26, 26}"
        );
        assert_eq!(
            threshold_cell(Some(Kernel::Gemv { m: 256, n: 256 })),
            "{256, 256}"
        );
    }

    #[test]
    fn sd_pairs() {
        assert_eq!(sd_pair_cell(Some(629), Some(582)), "629 : 582");
        assert_eq!(sd_pair_cell(None, None), "— : —");
        assert_eq!(sd_pair_cell(Some(2), None), "2 : —");
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = Table::new("", &["h1", "h2"]);
        let s = t.render();
        assert!(s.contains("h1"));
        assert_eq!(s.lines().count(), 2); // header + separator
    }
}
