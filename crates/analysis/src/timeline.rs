//! Timeline (Gantt) rendering for execution traces: one lane per offload
//! strategy, one coloured block per trace phase — the picture that makes
//! "Transfer-Always pays the sandwich every iteration" self-evident.
//!
//! [`trace_timeline_svg`] renders the *measured* side of the same picture:
//! spans recorded by the [`blob_core::trace`] plane, one lane per thread,
//! one colour per span category, nesting shown by inset.

use blob_core::trace::Span;
use blob_sim::{Phase, TraceEvent};

fn phase_colour(p: Phase) -> &'static str {
    match p {
        Phase::HostToDevice => "#ff7f0e",
        Phase::Kernel => "#1f77b4",
        Phase::DeviceToHost => "#d62728",
        Phase::UsmSetup => "#7f7f7f",
        Phase::UsmMigration => "#9467bd",
        Phase::UsmWriteback => "#8c564b",
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders labelled trace lanes as an SVG Gantt chart. Lanes share one time
/// axis scaled to the slowest lane.
pub fn timeline_svg(title: &str, lanes: &[(String, Vec<TraceEvent>)]) -> String {
    let (w, lane_h, gap) = (900.0, 42.0, 18.0);
    let (ml, mr, mt, mb) = (150.0, 30.0, 50.0, 55.0);
    let h = mt + lanes.len() as f64 * (lane_h + gap) + mb;
    let pw = w - ml - mr;
    let t_max = lanes
        .iter()
        .filter_map(|(_, ev)| ev.last().map(|e| e.end))
        .fold(1e-12f64, f64::max);
    let sx = |t: f64| ml + t / t_max * pw;

    let mut svg = format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    );
    svg.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);
    svg.push_str(&format!(
        r#"<text x="{}" y="26" font-size="15" text-anchor="middle" font-family="sans-serif">{}</text>"#,
        w / 2.0,
        xml_escape(title)
    ));

    for (li, (name, events)) in lanes.iter().enumerate() {
        let y = mt + li as f64 * (lane_h + gap);
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" font-size="12" text-anchor="end" font-family="sans-serif">{}</text>"#,
            ml - 8.0,
            y + lane_h / 2.0 + 4.0,
            xml_escape(name)
        ));
        for e in events {
            let x0 = sx(e.start);
            let width = (sx(e.end) - x0).max(0.4);
            svg.push_str(&format!(
                r#"<rect x="{x0:.2}" y="{y:.1}" width="{width:.2}" height="{lane_h}" fill="{}" stroke="white" stroke-width="0.4"><title>{} {:.1} us</title></rect>"#,
                phase_colour(e.phase),
                e.phase.label(),
                e.duration() * 1e6
            ));
        }
    }

    // time axis
    let axis_y = h - mb + 12.0;
    svg.push_str(&format!(
        r#"<line x1="{ml}" y1="{axis_y}" x2="{}" y2="{axis_y}" stroke="black"/>"#,
        ml + pw
    ));
    for i in 0..=5 {
        let t = t_max * i as f64 / 5.0;
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" font-size="11" text-anchor="middle" font-family="sans-serif">{:.1} us</text>"#,
            sx(t),
            axis_y + 16.0,
            t * 1e6
        ));
    }
    // legend
    let phases = [
        Phase::HostToDevice,
        Phase::Kernel,
        Phase::DeviceToHost,
        Phase::UsmSetup,
        Phase::UsmMigration,
        Phase::UsmWriteback,
    ];
    for (i, p) in phases.iter().enumerate() {
        let x = ml + i as f64 * 120.0;
        svg.push_str(&format!(
            r#"<rect x="{x}" y="{}" width="12" height="12" fill="{}"/>"#,
            h - 22.0,
            phase_colour(*p)
        ));
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" font-size="11" font-family="sans-serif">{}</text>"#,
            x + 16.0,
            h - 12.0,
            p.label()
        ));
    }
    svg.push_str("</svg>");
    svg
}

/// Colour for a trace-span category: the fixed palette covers the
/// categories the workspace emits; anything else renders grey.
fn cat_colour(cat: &str) -> &'static str {
    match cat {
        "runner" => "#1f77b4",
        "pool" => "#ff7f0e",
        "gemm" => "#2ca02c",
        "checkpoint" => "#9467bd",
        "serve" => "#d62728",
        _ => "#7f7f7f",
    }
}

/// Renders recorded [`blob_core::trace`] spans as an SVG timeline: one lane
/// per thread id, one block per span coloured by category, with nested
/// spans inset inside their parents. Times are relative to the earliest
/// span's start.
pub fn trace_timeline_svg(title: &str, spans: &[Span]) -> String {
    let (w, lane_h, gap) = (900.0, 46.0, 16.0);
    let (ml, mr, mt, mb) = (110.0, 30.0, 50.0, 55.0);
    let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    let h = mt + (tids.len().max(1)) as f64 * (lane_h + gap) + mb;
    let pw = w - ml - mr;
    let t0 = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    let t_max = spans
        .iter()
        .map(|s| (s.start_ns - t0).saturating_add(s.dur_ns))
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let sx = |ns: u64| ml + ns as f64 / t_max * pw;

    // nesting depth via the parent chain, for the inset
    let parents: std::collections::HashMap<u64, u64> = spans
        .iter()
        .filter(|s| s.parent != 0)
        .map(|s| (s.id, s.parent))
        .collect();
    let depth_of = |mut id: u64| {
        let mut d = 0u32;
        while let Some(&p) = parents.get(&id) {
            d += 1;
            id = p;
            if d > 32 {
                break; // cycle guard: a corrupt parent chain must not hang rendering
            }
        }
        d
    };

    let mut svg = format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    );
    svg.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);
    svg.push_str(&format!(
        r#"<text x="{}" y="26" font-size="15" text-anchor="middle" font-family="sans-serif">{}</text>"#,
        w / 2.0,
        xml_escape(title)
    ));
    for (li, tid) in tids.iter().enumerate() {
        let y = mt + li as f64 * (lane_h + gap);
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" font-size="12" text-anchor="end" font-family="sans-serif">tid {}</text>"#,
            ml - 8.0,
            y + lane_h / 2.0 + 4.0,
            tid
        ));
        for s in spans.iter().filter(|s| s.tid == *tid) {
            let inset = f64::from(depth_of(s.id).min(4)) * 5.0;
            let x0 = sx(s.start_ns - t0);
            let width = (sx((s.start_ns - t0).saturating_add(s.dur_ns)) - x0).max(0.4);
            svg.push_str(&format!(
                r#"<rect x="{x0:.2}" y="{:.1}" width="{width:.2}" height="{:.1}" fill="{}" stroke="white" stroke-width="0.4"><title>{} {:.1} us</title></rect>"#,
                y + inset,
                (lane_h - 2.0 * inset).max(4.0),
                cat_colour(s.cat),
                xml_escape(s.name),
                s.dur_ns as f64 / 1e3
            ));
        }
    }
    // time axis
    let axis_y = h - mb + 12.0;
    svg.push_str(&format!(
        r#"<line x1="{ml}" y1="{axis_y}" x2="{}" y2="{axis_y}" stroke="black"/>"#,
        ml + pw
    ));
    for i in 0..=5 {
        let t = t_max * f64::from(i) / 5.0;
        svg.push_str(&format!(
            r#"<text x="{:.1}" y="{}" font-size="11" text-anchor="middle" font-family="sans-serif">{:.1} us</text>"#,
            ml + t / t_max * pw,
            axis_y + 16.0,
            t / 1e3
        ));
    }
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use blob_sim::{gpu_trace, presets, BlasCall, Offload, Precision};

    #[test]
    fn svg_renders_all_lanes_and_blocks() {
        let sys = presets::dawn();
        let call = BlasCall::gemm(Precision::F32, 256, 256, 256);
        let lanes: Vec<(String, Vec<TraceEvent>)> = Offload::ALL
            .iter()
            .map(|&o| (o.label().to_string(), gpu_trace(&sys, &call, 4, o).unwrap()))
            .collect();
        let svg = timeline_svg("demo", &lanes);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("Once"));
        assert!(svg.contains("USM"));
        // Transfer-Always contributes 4 sandwiches = 12 blocks at least
        assert!(svg.matches("<rect").count() > 15);
        assert!(svg.contains("migrate"));
    }

    #[test]
    fn empty_lane_is_tolerated() {
        let svg = timeline_svg("empty", &[("nothing".into(), vec![])]);
        assert!(svg.contains("nothing"));
    }

    fn span(id: u64, parent: u64, tid: u64, cat: &'static str, start: u64, dur: u64) -> Span {
        Span {
            id,
            parent,
            name: "t",
            cat,
            start_ns: start,
            dur_ns: dur,
            tid,
            args: Vec::new(),
        }
    }

    #[test]
    fn trace_svg_lanes_per_tid_and_colour_per_cat() {
        let spans = vec![
            span(1, 0, 7, "runner", 1_000, 10_000),
            span(2, 1, 7, "gemm", 2_000, 4_000),
            span(3, 0, 9, "pool", 3_000, 2_000),
        ];
        let svg = trace_timeline_svg("trace", &spans);
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        assert!(svg.contains("tid 7") && svg.contains("tid 9"));
        assert!(svg.contains(cat_colour("runner")));
        assert!(svg.contains(cat_colour("gemm")));
        assert!(svg.contains(cat_colour("pool")));
    }

    #[test]
    fn trace_svg_tolerates_no_spans() {
        let svg = trace_timeline_svg("empty trace", &[]);
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
    }
}
