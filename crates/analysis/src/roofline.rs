//! Roofline analysis: the visual form of the paper's *Arithmetic
//! Intensity* argument (§IV-C reasons about offload behaviour via
//! FLOPs/byte; a roofline makes the same argument quantitative).
//!
//! For a device with peak compute `P` (GFLOP/s) and stream bandwidth `B`
//! (GB/s), a kernel of arithmetic intensity `I` (FLOPs/byte) can at best
//! achieve `min(P, I·B)`. The *machine balance* `P/B` is the intensity
//! where the two rooflines meet — kernels below it are bandwidth-bound
//! (GEMV at I ≈ 0.25, SpMV lower still), kernels above it compute-bound
//! (large GEMM).

use crate::plot::{svg_chart, Series};

/// A device's roofline parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Peak compute in GFLOP/s.
    pub peak_gflops: f64,
    /// Stream bandwidth in GB/s.
    pub bandwidth_gbs: f64,
}

impl Roofline {
    /// Attainable GFLOP/s at arithmetic intensity `i` (FLOPs/byte).
    pub fn attainable(&self, i: f64) -> f64 {
        (i * self.bandwidth_gbs).min(self.peak_gflops)
    }

    /// The machine balance: the intensity where bandwidth stops binding.
    pub fn balance(&self) -> f64 {
        self.peak_gflops / self.bandwidth_gbs
    }

    /// True when a kernel of intensity `i` is bandwidth-bound here.
    pub fn bandwidth_bound(&self, i: f64) -> bool {
        i < self.balance()
    }
}

/// A kernel pinned onto the roofline plot.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPoint {
    /// Marker label.
    pub name: String,
    /// Arithmetic intensity in FLOPs/byte.
    pub intensity: f64,
}

/// Renders a log-log-ish roofline SVG: one roofline polyline per device
/// plus a vertical marker series per kernel (drawn as a two-point spike).
pub fn roofline_svg(
    title: &str,
    devices: &[(String, Roofline)],
    kernels: &[KernelPoint],
) -> String {
    // sample intensities log-spaced over a range that covers everything
    let max_balance = devices
        .iter()
        .map(|(_, r)| r.balance())
        .fold(1.0f64, f64::max);
    let i_max = (max_balance * 8.0).max(64.0);
    let n = 64;
    let xs: Vec<f64> = (0..=n)
        .map(|k| 0.01 * (i_max / 0.01f64).powf(k as f64 / n as f64))
        .collect();
    let mut series: Vec<Series> = devices
        .iter()
        .map(|(name, r)| Series {
            name: name.clone(),
            points: xs
                .iter()
                .map(|&i| (i.log10(), r.attainable(i).log10()))
                .collect(),
        })
        .collect();
    let y_top = devices
        .iter()
        .map(|(_, r)| r.peak_gflops)
        .fold(1.0f64, f64::max)
        .log10();
    for k in kernels {
        let x = k.intensity.log10();
        series.push(Series {
            name: format!("{} (AI {:.2})", k.name, k.intensity),
            points: vec![(x, -1.0), (x, y_top)],
        });
    }
    svg_chart(
        title,
        "log10 arithmetic intensity (FLOPs/byte)",
        "log10 attainable GFLOP/s",
        &series,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attainable_is_min_of_rooflines() {
        let r = Roofline {
            peak_gflops: 1000.0,
            bandwidth_gbs: 100.0,
        };
        assert_eq!(r.balance(), 10.0);
        assert_eq!(r.attainable(1.0), 100.0); // bandwidth roof
        assert_eq!(r.attainable(10.0), 1000.0); // the ridge
        assert_eq!(r.attainable(100.0), 1000.0); // compute roof
        assert!(r.bandwidth_bound(0.25));
        assert!(!r.bandwidth_bound(50.0));
    }

    #[test]
    fn gemv_is_bandwidth_bound_everywhere_gemm_is_not() {
        // realistic device balances straddle GEMV's ~0.25 flops/byte and
        // large GEMM's hundreds
        for (p, b) in [(3000.0, 250.0), (21_000.0, 1300.0), (60_000.0, 3300.0)] {
            let r = Roofline {
                peak_gflops: p,
                bandwidth_gbs: b,
            };
            assert!(
                r.bandwidth_bound(0.25),
                "GEMV bound at balance {}",
                r.balance()
            );
            assert!(!r.bandwidth_bound(500.0), "large GEMM unbound");
        }
    }

    #[test]
    fn svg_contains_all_series() {
        let devices = vec![
            (
                "CPU".to_string(),
                Roofline {
                    peak_gflops: 3000.0,
                    bandwidth_gbs: 250.0,
                },
            ),
            (
                "GPU".to_string(),
                Roofline {
                    peak_gflops: 40_000.0,
                    bandwidth_gbs: 1200.0,
                },
            ),
        ];
        let kernels = vec![
            KernelPoint {
                name: "SGEMV".into(),
                intensity: 0.25,
            },
            KernelPoint {
                name: "SGEMM 4096".into(),
                intensity: 680.0,
            },
        ];
        let svg = roofline_svg("rooflines", &devices, &kernels);
        assert!(svg.contains("CPU"));
        assert!(svg.contains("GPU"));
        assert!(svg.contains("SGEMV"));
        assert_eq!(svg.matches("<polyline").count(), 4);
    }
}
