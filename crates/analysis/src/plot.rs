//! Performance-graph rendering — the Rust equivalent of the artifact's
//! `createGflopsGraphs.py`.
//!
//! Two output forms:
//! - [`ascii_chart`]: a quick terminal rendering for interactive use;
//! - [`svg_chart`]: a standalone SVG (polyline per series, axes, legend)
//!   written next to the CSV results, the counterpart of the paper's
//!   GFLOP/s-vs-size figures.

/// One named data series: `(x, y)` points in ascending `x`.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` samples in ascending `x`.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series from `(usize, f64)` pairs (the extractor's output).
    pub fn from_usize(name: impl Into<String>, pts: &[(usize, f64)]) -> Self {
        Self {
            name: name.into(),
            points: pts.iter().map(|&(x, y)| (x as f64, y)).collect(),
        }
    }
}

fn bounds(series: &[Series]) -> Option<(f64, f64, f64, f64)> {
    let mut it = series.iter().flat_map(|s| s.points.iter().copied());
    let first = it.next()?;
    let (mut x0, mut x1, mut y0, mut y1) = (first.0, first.0, first.1, first.1);
    for (x, y) in it {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    // avoid a degenerate range
    if x0 == x1 {
        x1 = x0 + 1.0;
    }
    if y0 == y1 {
        y1 = y0 + 1.0;
    }
    Some((x0, x1, y0.min(0.0), y1))
}

/// Renders series as a terminal chart of `width × height` characters.
/// Each series draws with its own glyph; a legend follows the plot.
pub fn ascii_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    const GLYPHS: [char; 8] = ['*', '+', 'o', 'x', '#', '@', '%', '&'];
    let width = width.clamp(16, 400);
    let height = height.clamp(4, 100);
    let Some((x0, x1, y0, y1)) = bounds(series) else {
        return format!("{title}\n(no data)\n");
    };
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let g = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
            let cy = ((y - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = g;
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{y1:>10.1} ┤"));
    out.push('\n');
    for row in &grid {
        out.push_str("           │");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{y0:>10.1} └"));
    out.push_str(&"─".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "            {x0:<10.0}{:>w$.0}\n",
        x1,
        w = width - 10
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.name));
    }
    out
}

/// Colour palette for SVG series.
const COLOURS: [&str; 8] = [
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b", "#e377c2", "#17becf",
];

/// Renders series as a standalone SVG line chart with axes and a legend.
pub fn svg_chart(title: &str, x_label: &str, y_label: &str, series: &[Series]) -> String {
    let (w, h) = (860.0, 520.0);
    let (ml, mr, mt, mb) = (70.0, 180.0, 40.0, 50.0);
    let (pw, ph) = (w - ml - mr, h - mt - mb);
    let mut svg = String::new();
    svg.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    ));
    svg.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);
    svg.push_str(&format!(
        r#"<text x="{}" y="24" font-size="16" text-anchor="middle" font-family="sans-serif">{}</text>"#,
        ml + pw / 2.0,
        xml_escape(title)
    ));
    let Some((x0, x1, y0, y1)) = bounds(series) else {
        svg.push_str("</svg>");
        return svg;
    };
    let sx = |x: f64| ml + (x - x0) / (x1 - x0) * pw;
    let sy = |y: f64| mt + ph - (y - y0) / (y1 - y0) * ph;
    // axes
    svg.push_str(&format!(
        r#"<line x1="{ml}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        mt + ph,
        ml + pw,
        mt + ph
    ));
    svg.push_str(&format!(
        r#"<line x1="{ml}" y1="{mt}" x2="{ml}" y2="{}" stroke="black"/>"#,
        mt + ph
    ));
    // ticks: 5 on each axis
    for i in 0..=5 {
        let fx = x0 + (x1 - x0) * i as f64 / 5.0;
        let fy = y0 + (y1 - y0) * i as f64 / 5.0;
        svg.push_str(&format!(
            r##"<line x1="{0}" y1="{1}" x2="{0}" y2="{2}" stroke="#ccc"/>"##,
            sx(fx),
            mt,
            mt + ph
        ));
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" font-size="11" text-anchor="middle" font-family="sans-serif">{:.0}</text>"#,
            sx(fx),
            mt + ph + 16.0,
            fx
        ));
        svg.push_str(&format!(
            r##"<line x1="{1}" y1="{0}" x2="{2}" y2="{0}" stroke="#eee"/>"##,
            sy(fy),
            ml,
            ml + pw
        ));
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" font-size="11" text-anchor="end" font-family="sans-serif">{:.1}</text>"#,
            ml - 6.0,
            sy(fy) + 4.0,
            fy
        ));
    }
    svg.push_str(&format!(
        r#"<text x="{}" y="{}" font-size="13" text-anchor="middle" font-family="sans-serif">{}</text>"#,
        ml + pw / 2.0,
        h - 12.0,
        xml_escape(x_label)
    ));
    svg.push_str(&format!(
        r#"<text x="16" y="{}" font-size="13" text-anchor="middle" font-family="sans-serif" transform="rotate(-90 16 {})">{}</text>"#,
        mt + ph / 2.0,
        mt + ph / 2.0,
        xml_escape(y_label)
    ));
    // series + legend
    for (si, s) in series.iter().enumerate() {
        let colour = COLOURS[si % COLOURS.len()];
        let pts: Vec<String> = s
            .points
            .iter()
            .map(|&(x, y)| format!("{:.2},{:.2}", sx(x), sy(y)))
            .collect();
        svg.push_str(&format!(
            r#"<polyline fill="none" stroke="{colour}" stroke-width="1.8" points="{}"/>"#,
            pts.join(" ")
        ));
        let ly = mt + 14.0 + 20.0 * si as f64;
        svg.push_str(&format!(
            r#"<line x1="{0}" y1="{ly}" x2="{1}" y2="{ly}" stroke="{colour}" stroke-width="3"/>"#,
            ml + pw + 10.0,
            ml + pw + 34.0
        ));
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" font-size="12" font-family="sans-serif">{}</text>"#,
            ml + pw + 40.0,
            ly + 4.0,
            xml_escape(&s.name)
        ));
    }
    svg.push_str("</svg>");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Writes an SVG chart to disk, creating parent directories as needed.
pub fn write_svg(
    path: &std::path::Path,
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, svg_chart(title, x_label, y_label, series))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series {
                name: "cpu".into(),
                points: (1..=50).map(|i| (i as f64, (i as f64).sqrt())).collect(),
            },
            Series {
                name: "gpu".into(),
                points: (1..=50).map(|i| (i as f64, i as f64 / 10.0)).collect(),
            },
        ]
    }

    #[test]
    fn ascii_chart_contains_legend_and_data() {
        let s = ascii_chart("Demo chart", &demo_series(), 60, 15);
        assert!(s.contains("Demo chart"));
        assert!(s.contains("* cpu"));
        assert!(s.contains("+ gpu"));
        assert!(s.contains('*'));
    }

    #[test]
    fn ascii_chart_empty_series() {
        let s = ascii_chart("Empty", &[], 40, 10);
        assert!(s.contains("no data"));
    }

    #[test]
    fn svg_is_well_formed_and_has_polylines() {
        let svg = svg_chart("T", "size", "GFLOP/s", &demo_series());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("cpu"));
        assert!(svg.contains("GFLOP/s"));
    }

    #[test]
    fn svg_escapes_xml_characters() {
        let series = vec![Series {
            name: "a<b & \"c\"".into(),
            points: vec![(0.0, 0.0), (1.0, 1.0)],
        }];
        let svg = svg_chart("x>y", "x", "y", &series);
        assert!(svg.contains("a&lt;b &amp; &quot;c&quot;"));
        assert!(svg.contains("x&gt;y"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn degenerate_single_point() {
        let series = vec![Series {
            name: "dot".into(),
            points: vec![(5.0, 5.0)],
        }];
        // must not divide by zero
        let svg = svg_chart("one point", "x", "y", &series);
        assert!(svg.contains("<polyline"));
        let txt = ascii_chart("one point", &series, 30, 8);
        assert!(txt.contains('*'));
    }

    #[test]
    fn write_svg_creates_dirs() {
        let dir = std::env::temp_dir().join("blob_plot_test/nested");
        let path = dir.join("c.svg");
        write_svg(&path, "t", "x", "y", &demo_series()).unwrap();
        assert!(path.exists());
        std::fs::remove_dir_all(dir.parent().unwrap()).ok();
    }

    #[test]
    fn series_from_usize() {
        let s = Series::from_usize("s", &[(1, 2.0), (3, 4.0)]);
        assert_eq!(s.points, vec![(1.0, 2.0), (3.0, 4.0)]);
    }
}
