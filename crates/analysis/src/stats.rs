//! Summary statistics for repeated measurements and threshold stability.
//!
//! The artifact averages every run-time over three runs (Table I's
//! caption); real measurement pipelines need the usual summaries plus a
//! robustness question this module answers directly: *how stable is a
//! detected offload threshold under measurement noise?*

/// Summary of a sample of measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (midpoint of the two central values for even `n`).
    pub median: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Sample standard deviation (n−1 denominator); 0 for n < 2.
    pub stddev: f64,
}

impl Summary {
    /// Coefficient of variation (stddev / mean); 0 for a zero mean.
    pub fn cv(&self) -> f64 {
        if self.mean.abs() < f64::MIN_POSITIVE {
            0.0
        } else {
            self.stddev / self.mean.abs()
        }
    }
}

/// Summarises a non-empty sample. Returns `None` on empty input or any
/// non-finite value.
pub fn summarize(values: &[f64]) -> Option<Summary> {
    if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
        return None;
    }
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    };
    let stddev = if n < 2 {
        0.0
    } else {
        (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
    };
    Some(Summary {
        n,
        mean,
        median,
        min: sorted[0],
        max: sorted[n - 1],
        stddev,
    })
}

/// Stability of an offload threshold across noisy re-runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdStability {
    /// Thresholds observed per seed (`None` = not produced).
    pub observed: Vec<Option<usize>>,
    /// How many runs produced a threshold at all.
    pub produced: usize,
    /// Summary over the produced values.
    pub summary: Option<Summary>,
}

impl ThresholdStability {
    /// Builds stability statistics from per-seed threshold observations.
    pub fn from_observations(observed: Vec<Option<usize>>) -> Self {
        let values: Vec<f64> = observed.iter().flatten().map(|&v| v as f64).collect();
        Self {
            produced: values.len(),
            summary: summarize(&values),
            observed,
        }
    }

    /// True when every run agrees on producing (or not producing) a
    /// threshold and the spread of produced values is within `rel_spread`
    /// of the median.
    pub fn stable(&self, rel_spread: f64) -> bool {
        if self.produced != 0 && self.produced != self.observed.len() {
            return false; // some runs produced a threshold, some did not
        }
        match &self.summary {
            None => true, // consistently no threshold
            Some(s) => (s.max - s.min) <= rel_spread * s.median.max(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_basics() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.stddev - 1.2909944487).abs() < 1e-9);
        assert!((s.cv() - s.stddev / 2.5).abs() < 1e-12);
    }

    #[test]
    fn odd_median_and_single_value() {
        assert_eq!(summarize(&[3.0, 1.0, 2.0]).unwrap().median, 2.0);
        let one = summarize(&[7.0]).unwrap();
        assert_eq!(one.median, 7.0);
        assert_eq!(one.stddev, 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(summarize(&[]).is_none());
        assert!(summarize(&[1.0, f64::NAN]).is_none());
        assert!(summarize(&[1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn stability_consistent_values() {
        let st = ThresholdStability::from_observations(vec![Some(629), Some(631), Some(628)]);
        assert_eq!(st.produced, 3);
        assert!(st.stable(0.05));
        assert!(!st.stable(0.001));
    }

    #[test]
    fn stability_mixed_presence_is_unstable() {
        let st = ThresholdStability::from_observations(vec![Some(100), None, Some(101)]);
        assert!(!st.stable(1.0));
    }

    #[test]
    fn stability_consistent_absence_is_stable() {
        let st = ThresholdStability::from_observations(vec![None, None, None]);
        assert_eq!(st.produced, 0);
        assert!(st.stable(0.0));
    }

    #[test]
    fn threshold_stability_against_the_real_detector() {
        // the end-to-end use: noisy re-runs of a sweep, one seed each
        use blob_core::problem::{GemmProblem, Problem};
        use blob_core::runner::{run_sweep, SweepConfig};
        use blob_sim::{presets, Offload, Precision};
        let observed: Vec<Option<usize>> = (0..5u64)
            .map(|seed| {
                let sys = presets::isambard_ai().with_noise(seed, 0.04);
                let sweep = run_sweep(
                    &sys,
                    Problem::Gemm(GemmProblem::Square),
                    Precision::F32,
                    &SweepConfig::new(1, 256, 32),
                );
                let t = sweep.threshold(Offload::TransferOnce)?;
                let kernel = t;
                sweep
                    .records
                    .iter()
                    .find(|r| r.kernel == kernel)
                    .map(|r| r.param)
            })
            .collect();
        let st = ThresholdStability::from_observations(observed);
        assert_eq!(st.produced, 5, "±2% noise must not delete the threshold");
        assert!(
            st.stable(1.0),
            "threshold spread under noise stays within ~2x: {:?}",
            st.observed
        );
    }
}
